//! Pegasos: primal estimated sub-gradient solver for the SVM objective
//! (Shalev-Shwartz, Singer, Srebro, ICML 2007).
//!
//! Minimizes exactly the objective of paper eq. 3,
//! `λ/2 ||w||² + (1/n) Σ max(0, 1 - yᵢ w·xᵢ)`, by stochastic sub-gradient
//! steps with learning rate `1/(λ t)` followed by projection onto the ball
//! of radius `1/√λ`. It converges more slowly than [`crate::dcd`] but
//! costs O(dim) memory and is used in the training-cost ablation bench.

use rtped_core::rng::{Rng, SeedRng};

use crate::model::{Label, LinearSvm};

/// Hyper-parameters for [`train_pegasos`].
#[derive(Debug, Clone, PartialEq)]
pub struct PegasosParams {
    /// Regularization strength λ of eq. 3.
    pub lambda: f64,
    /// Total number of stochastic steps.
    pub iterations: usize,
    /// Value of the augmented bias feature.
    pub bias_scale: f64,
    /// RNG seed for sample selection.
    pub seed: u64,
}

impl Default for PegasosParams {
    fn default() -> Self {
        Self {
            lambda: 1e-3,
            iterations: 50_000,
            bias_scale: 1.0,
            seed: 0x5EED,
        }
    }
}

/// Trains a linear SVM with the Pegasos algorithm.
///
/// Deterministic for a fixed [`PegasosParams::seed`].
///
/// # Panics
///
/// Panics if `samples` is empty, dimensions are inconsistent, λ is not
/// positive, or both classes are not present.
#[must_use]
pub fn train_pegasos(samples: &[(Vec<f32>, Label)], params: &PegasosParams) -> LinearSvm {
    assert!(!samples.is_empty(), "need at least one training sample");
    assert!(params.lambda > 0.0, "lambda must be positive");
    let dim = samples[0].0.len();
    assert!(dim > 0, "samples must have at least one feature");
    assert!(
        samples.iter().all(|(x, _)| x.len() == dim),
        "inconsistent feature dimensions"
    );
    assert!(
        samples.iter().any(|(_, y)| *y == Label::Positive)
            && samples.iter().any(|(_, y)| *y == Label::Negative),
        "training set must contain both classes"
    );

    let aug = dim + 1;
    let mut w = vec![0.0f64; aug];
    let mut rng = SeedRng::seed_from_u64(params.seed);
    let radius = 1.0 / params.lambda.sqrt();

    for t in 1..=params.iterations {
        let i = rng.gen_range(0..samples.len());
        let (x, y) = &samples[i];
        let yi = y.sign();
        let eta = 1.0 / (params.lambda * t as f64);

        let mut dot = w[dim] * params.bias_scale;
        for (wj, &xj) in w[..dim].iter().zip(x.iter()) {
            dot += wj * f64::from(xj);
        }

        // w <- (1 - eta * lambda) w  [+ eta * y * x if margin violated]
        let shrink = 1.0 - eta * params.lambda;
        for wj in w.iter_mut() {
            *wj *= shrink;
        }
        if yi * dot < 1.0 {
            for (wj, &xj) in w[..dim].iter_mut().zip(x.iter()) {
                *wj += eta * yi * f64::from(xj);
            }
            w[dim] += eta * yi * params.bias_scale;
        }

        // Project onto the ball of radius 1/sqrt(lambda).
        let norm = w.iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm > radius {
            let scale = radius / norm;
            for wj in w.iter_mut() {
                *wj *= scale;
            }
        }
    }

    let bias = w[dim] * params.bias_scale;
    w.truncate(dim);
    LinearSvm::new(w, bias)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dcd::{train_dcd, DcdParams};

    fn separable_2d() -> Vec<(Vec<f32>, Label)> {
        vec![
            (vec![2.0, 1.0], Label::Positive),
            (vec![3.0, 2.0], Label::Positive),
            (vec![2.5, -0.5], Label::Positive),
            (vec![-2.0, -1.0], Label::Negative),
            (vec![-3.0, 0.5], Label::Negative),
            (vec![-2.5, -2.0], Label::Negative),
        ]
    }

    #[test]
    fn separates_linearly_separable_data() {
        let model = train_pegasos(&separable_2d(), &PegasosParams::default());
        for (x, y) in separable_2d() {
            assert_eq!(model.classify(&x), y, "misclassified {x:?}");
        }
    }

    #[test]
    fn training_is_deterministic() {
        let a = train_pegasos(&separable_2d(), &PegasosParams::default());
        let b = train_pegasos(&separable_2d(), &PegasosParams::default());
        assert_eq!(a, b);
    }

    #[test]
    fn weight_norm_respects_projection_radius() {
        let params = PegasosParams::default();
        let model = train_pegasos(&separable_2d(), &params);
        let full_norm =
            (model.weight_norm().powi(2) + (model.bias() / params.bias_scale).powi(2)).sqrt();
        assert!(full_norm <= 1.0 / params.lambda.sqrt() + 1e-9);
    }

    #[test]
    fn approaches_dcd_objective() {
        // Pegasos should land within a modest factor of the DCD optimum
        // on the same objective.
        let samples = separable_2d();
        let lambda = 1e-2;
        let pegasos = train_pegasos(
            &samples,
            &PegasosParams {
                lambda,
                iterations: 200_000,
                ..PegasosParams::default()
            },
        );
        let dcd = train_dcd(
            &samples,
            &DcdParams {
                c: 1.0 / (lambda * samples.len() as f64),
                max_iterations: 2000,
                ..DcdParams::default()
            },
        );
        let obj_p = pegasos.objective(&samples, lambda);
        let obj_d = dcd.objective(&samples, lambda);
        assert!(
            obj_p <= obj_d * 1.5 + 0.05,
            "pegasos objective {obj_p} far above dcd {obj_d}"
        );
    }

    #[test]
    #[should_panic(expected = "lambda must be positive")]
    fn rejects_zero_lambda() {
        let params = PegasosParams {
            lambda: 0.0,
            ..PegasosParams::default()
        };
        let _ = train_pegasos(&separable_2d(), &params);
    }

    #[test]
    #[should_panic(expected = "both classes")]
    fn rejects_single_class() {
        let samples = vec![(vec![1.0f32], Label::Positive)];
        let _ = train_pegasos(&samples, &PegasosParams::default());
    }
}
