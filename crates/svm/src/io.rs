//! Model persistence.
//!
//! The paper's flow trains the pedestrian model offline and loads the
//! weight vector into a dedicated model memory on the FPGA ("Pedestrian
//! model is the weight vector resulted from off-line training process ...
//! stored in a separate memory", §5). This module provides the offline
//! half: serializing trained models (and their Platt calibrations) to a
//! versioned JSON schema and loading them back with explicit errors.
//!
//! # On-disk schema (format 1)
//!
//! ```json
//! {"format":1,"kind":"linear_svm","weights":[...],"bias":-0.05}
//! {"format":1,"kind":"platt_calibration","slope":-5.72,"offset":-0.87}
//! ```
//!
//! The `format` field is checked on load; unknown versions and missing
//! fields are [`Error::Format`] — never panics, never silent coercion.
//! Serialization is canonical (insertion-ordered keys, shortest
//! round-trip floats, trailing newline), so `write(read(file)) == file`
//! byte-for-byte — `tests/model_persistence.rs` pins this against the
//! checked-in `models/` artifacts.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use rtped_core::json::{obj, required_field, Json};
use rtped_core::{Error, FromJson, ToJson};

use crate::model::LinearSvm;
use crate::platt::PlattCalibration;

/// The schema version this build writes and accepts.
pub const FORMAT_VERSION: u64 = 1;

fn check_header(json: &Json, expected_kind: &str) -> Result<(), Error> {
    // Pre-1 model files had no header at all; give those a pointed
    // message before the shared checker's generic missing-field error.
    if json.get("format").is_none() {
        return Err(Error::format(
            "missing required field \"format\" — not a versioned rtped \
             model file (legacy files predate the schema; regenerate with \
             the train_model binary)",
        ));
    }
    rtped_core::json::check_schema_header(json, expected_kind, "model", FORMAT_VERSION)
}

impl ToJson for LinearSvm {
    fn to_json(&self) -> Json {
        obj([
            ("format", FORMAT_VERSION.into()),
            ("kind", "linear_svm".into()),
            ("weights", self.weights().to_vec().to_json()),
            ("bias", self.bias().into()),
        ])
    }
}

impl FromJson for LinearSvm {
    fn from_json(json: &Json) -> Result<Self, Error> {
        check_header(json, "linear_svm")?;
        let weights = Vec::<f64>::from_json(required_field(json, "weights")?)?;
        if weights.is_empty() {
            return Err(Error::format("model has an empty weight vector"));
        }
        if weights.iter().any(|w| !w.is_finite()) {
            return Err(Error::format("model weights must be finite"));
        }
        let bias = f64::from_json(required_field(json, "bias")?)?;
        if !bias.is_finite() {
            return Err(Error::format("model bias must be finite"));
        }
        Ok(LinearSvm::new(weights, bias))
    }
}

impl ToJson for PlattCalibration {
    fn to_json(&self) -> Json {
        obj([
            ("format", FORMAT_VERSION.into()),
            ("kind", "platt_calibration".into()),
            ("slope", self.slope().into()),
            ("offset", self.offset().into()),
        ])
    }
}

impl FromJson for PlattCalibration {
    fn from_json(json: &Json) -> Result<Self, Error> {
        check_header(json, "platt_calibration")?;
        let slope = f64::from_json(required_field(json, "slope")?)?;
        let offset = f64::from_json(required_field(json, "offset")?)?;
        if !slope.is_finite() || !offset.is_finite() {
            return Err(Error::format("calibration parameters must be finite"));
        }
        Ok(PlattCalibration::from_parts(slope, offset))
    }
}

/// The canonical serialized bytes of any persistable value (compact JSON
/// plus a trailing newline). Writing the result of a load reproduces the
/// input byte-for-byte.
#[must_use]
pub fn to_canonical_bytes<T: ToJson>(value: &T) -> Vec<u8> {
    let mut text = value.to_json().to_string();
    text.push('\n');
    text.into_bytes()
}

/// Serializes `model` as format-1 JSON to `writer` (a `&mut` reference is
/// fine).
///
/// # Errors
///
/// Returns [`Error::Io`] on write failure.
pub fn write_model<W: Write>(mut writer: W, model: &LinearSvm) -> Result<(), Error> {
    writer.write_all(&to_canonical_bytes(model))?;
    Ok(())
}

/// Deserializes a model from `reader` (a `&mut` reference is fine).
///
/// # Errors
///
/// Returns [`Error::Json`] if the stream is not JSON, [`Error::Format`]
/// if it is JSON but not a format-1 model, or [`Error::Io`] on read
/// failure.
pub fn read_model<R: Read>(mut reader: R) -> Result<LinearSvm, Error> {
    let mut bytes = Vec::new();
    reader.read_to_end(&mut bytes)?;
    LinearSvm::from_json(&Json::parse_bytes(&bytes)?)
}

/// Saves `model` to a JSON file.
///
/// # Errors
///
/// Propagates [`write_model`] errors plus file-create failures.
pub fn save_model(path: impl AsRef<Path>, model: &LinearSvm) -> Result<(), Error> {
    write_model(BufWriter::new(File::create(path)?), model)
}

/// Loads a model from a JSON file.
///
/// # Errors
///
/// Propagates [`read_model`] errors plus file-open failures.
pub fn load_model(path: impl AsRef<Path>) -> Result<LinearSvm, Error> {
    read_model(BufReader::new(File::open(path)?))
}

/// Saves a fitted Platt calibration next to its model.
///
/// # Errors
///
/// Returns [`Error::Io`] on write failure.
pub fn save_calibration(
    path: impl AsRef<Path>,
    calibration: &PlattCalibration,
) -> Result<(), Error> {
    std::fs::write(path, to_canonical_bytes(calibration))?;
    Ok(())
}

/// Loads a Platt calibration saved by [`save_calibration`].
///
/// # Errors
///
/// As [`load_model`]: [`Error::Io`] / [`Error::Json`] / [`Error::Format`].
pub fn load_calibration(path: impl AsRef<Path>) -> Result<PlattCalibration, Error> {
    let bytes = std::fs::read(path)?;
    PlattCalibration::from_json(&Json::parse_bytes(&bytes)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_roundtrip() {
        let model = LinearSvm::new(vec![1.5, -2.25, 0.0], 0.75);
        let mut buf = Vec::new();
        write_model(&mut buf, &model).unwrap();
        let back = read_model(buf.as_slice()).unwrap();
        assert_eq!(back, model);
    }

    #[test]
    fn serialization_is_canonical_and_versioned() {
        let model = LinearSvm::new(vec![0.5, -0.25], -1.0);
        let bytes = to_canonical_bytes(&model);
        assert_eq!(
            String::from_utf8(bytes.clone()).unwrap(),
            "{\"format\":1,\"kind\":\"linear_svm\",\"weights\":[0.5,-0.25],\"bias\":-1}\n"
        );
        // Byte-level round trip: load then re-serialize reproduces input.
        let back = read_model(bytes.as_slice()).unwrap();
        assert_eq!(to_canonical_bytes(&back), bytes);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("rtped_svm_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        let model = LinearSvm::new(vec![0.125; 3780], -1.0);
        save_model(&path, &model).unwrap();
        let back = load_model(&path).unwrap();
        assert_eq!(back, model);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn calibration_roundtrip() {
        let cal = PlattCalibration::from_parts(-5.25, -0.875);
        let dir = std::env::temp_dir().join("rtped_svm_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("calibration.json");
        save_calibration(&path, &cal).unwrap();
        assert_eq!(load_calibration(&path).unwrap(), cal);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_stream_is_a_json_error() {
        let err = read_model(&b"not json"[..]).unwrap_err();
        assert!(matches!(err, Error::Json(_)), "{err}");
        assert!(err.to_string().contains("malformed JSON"));
    }

    #[test]
    fn unversioned_legacy_file_is_a_format_error_with_guidance() {
        let legacy = br#"{"weights":[1.0,2.0],"bias":-0.5}"#;
        let err = read_model(&legacy[..]).unwrap_err();
        assert!(matches!(err, Error::Format(_)), "{err}");
        assert!(err.to_string().contains("legacy"), "{err}");
    }

    #[test]
    fn future_format_version_is_rejected() {
        let future = br#"{"format":99,"kind":"linear_svm","weights":[1.0],"bias":0.0}"#;
        let err = read_model(&future[..]).unwrap_err();
        assert!(err.to_string().contains("unsupported model format 99"));
    }

    #[test]
    fn wrong_kind_is_rejected() {
        let cal = br#"{"format":1,"kind":"platt_calibration","slope":-1.0,"offset":0.0}"#;
        let err = read_model(&cal[..]).unwrap_err();
        assert!(err.to_string().contains("expected kind \"linear_svm\""));
    }

    #[test]
    fn schema_violations_are_format_errors() {
        for bad in [
            &br#"{"format":1,"kind":"linear_svm","weights":"x","bias":0.0}"#[..],
            &br#"{"format":1,"kind":"linear_svm","weights":[],"bias":0.0}"#[..],
            &br#"{"format":1,"kind":"linear_svm","weights":[1.0]}"#[..],
            &br#"{"format":1,"kind":"linear_svm","weights":[null],"bias":0.0}"#[..],
            &br#"{"format":"1","kind":"linear_svm","weights":[1.0],"bias":0.0}"#[..],
        ] {
            let err = read_model(bad).unwrap_err();
            assert!(
                matches!(err, Error::Format(_)),
                "expected Format error for {}: got {err}",
                String::from_utf8_lossy(bad)
            );
        }
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = load_model("/nonexistent/rtped/model.json").unwrap_err();
        assert!(matches!(err, Error::Io(_)));
    }
}
