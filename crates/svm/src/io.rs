//! Model persistence.
//!
//! The paper's flow trains the pedestrian model offline and loads the
//! weight vector into a dedicated model memory on the FPGA ("Pedestrian
//! model is the weight vector resulted from off-line training process ...
//! stored in a separate memory", §5). This module provides the offline
//! half: serializing trained models to JSON and back.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::model::LinearSvm;

/// Errors from model persistence.
#[derive(Debug)]
pub enum ModelIoError {
    /// Underlying file/stream failure.
    Io(std::io::Error),
    /// The stream is not a valid serialized model.
    Format(serde_json::Error),
}

impl std::fmt::Display for ModelIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelIoError::Io(e) => write!(f, "model i/o error: {e}"),
            ModelIoError::Format(e) => write!(f, "malformed model file: {e}"),
        }
    }
}

impl std::error::Error for ModelIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ModelIoError::Io(e) => Some(e),
            ModelIoError::Format(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for ModelIoError {
    fn from(e: std::io::Error) -> Self {
        ModelIoError::Io(e)
    }
}

impl From<serde_json::Error> for ModelIoError {
    fn from(e: serde_json::Error) -> Self {
        ModelIoError::Format(e)
    }
}

/// Serializes `model` as JSON to `writer` (a `&mut` reference is fine).
///
/// # Errors
///
/// Returns [`ModelIoError::Io`] on write failure.
pub fn write_model<W: Write>(writer: W, model: &LinearSvm) -> Result<(), ModelIoError> {
    serde_json::to_writer(writer, model)?;
    Ok(())
}

/// Deserializes a model from `reader` (a `&mut` reference is fine).
///
/// # Errors
///
/// Returns [`ModelIoError::Format`] if the stream is not a valid model, or
/// [`ModelIoError::Io`] on read failure.
pub fn read_model<R: Read>(reader: R) -> Result<LinearSvm, ModelIoError> {
    Ok(serde_json::from_reader(reader)?)
}

/// Saves `model` to a JSON file.
///
/// # Errors
///
/// Propagates [`write_model`] errors plus file-create failures.
pub fn save_model(path: impl AsRef<Path>, model: &LinearSvm) -> Result<(), ModelIoError> {
    write_model(BufWriter::new(File::create(path)?), model)
}

/// Loads a model from a JSON file.
///
/// # Errors
///
/// Propagates [`read_model`] errors plus file-open failures.
pub fn load_model(path: impl AsRef<Path>) -> Result<LinearSvm, ModelIoError> {
    read_model(BufReader::new(File::open(path)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_roundtrip() {
        let model = LinearSvm::new(vec![1.5, -2.25, 0.0], 0.75);
        let mut buf = Vec::new();
        write_model(&mut buf, &model).unwrap();
        let back = read_model(buf.as_slice()).unwrap();
        assert_eq!(back, model);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("rtped_svm_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        let model = LinearSvm::new(vec![0.125; 3780], -1.0);
        save_model(&path, &model).unwrap();
        let back = load_model(&path).unwrap();
        assert_eq!(back, model);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_stream_is_a_format_error() {
        let err = read_model(&b"not json"[..]).unwrap_err();
        assert!(matches!(err, ModelIoError::Format(_)));
        assert!(err.to_string().contains("malformed model file"));
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = load_model("/nonexistent/rtped/model.json").unwrap_err();
        assert!(matches!(err, ModelIoError::Io(_)));
    }
}
