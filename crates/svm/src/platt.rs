//! Platt scaling: calibrating SVM decision values into probabilities.
//!
//! The paper notes that "the trade-off between the false positives and
//! false negatives could be handled by varying the threshold in the
//! classifier" (§4). Thresholds on raw margins are hard to interpret;
//! Platt's method (Platt, 1999) fits a sigmoid
//! `P(y=+1 | x) = 1 / (1 + exp(A·f(x) + B))` over held-out decision
//! values so the threshold becomes a probability. Implemented with the
//! Lin–Weng–Keerthi (2007) robust Newton iteration.

use crate::model::{Label, LinearSvm};

/// A fitted sigmoid calibration `P = 1 / (1 + exp(A·score + B))`.
#[derive(Debug, Clone, PartialEq)]
pub struct PlattCalibration {
    a: f64,
    b: f64,
}

impl PlattCalibration {
    /// Fits the sigmoid on `(decision_value, is_positive)` pairs by
    /// regularized maximum likelihood (Newton with backtracking, after
    /// Lin, Weng & Keerthi 2007).
    ///
    /// # Panics
    ///
    /// Panics if `scored` lacks positives or negatives.
    #[must_use]
    pub fn fit(scored: &[(f64, bool)]) -> Self {
        let n_pos = scored.iter().filter(|(_, p)| *p).count() as f64;
        let n_neg = scored.len() as f64 - n_pos;
        assert!(n_pos > 0.0 && n_neg > 0.0, "calibration needs both classes");

        // Regularized targets.
        let hi = (n_pos + 1.0) / (n_pos + 2.0);
        let lo = 1.0 / (n_neg + 2.0);
        let targets: Vec<f64> = scored
            .iter()
            .map(|(_, p)| if *p { hi } else { lo })
            .collect();

        let mut a = 0.0f64;
        let mut b = ((n_neg + 1.0) / (n_pos + 1.0)).ln();
        let min_step = 1e-10;
        let sigma = 1e-12;

        let fval = |a: f64, b: f64| -> f64 {
            scored
                .iter()
                .zip(&targets)
                .map(|(&(s, _), &t)| {
                    let fapb = s * a + b;
                    if fapb >= 0.0 {
                        t * fapb + (1.0 + (-fapb).exp()).ln()
                    } else {
                        (t - 1.0) * fapb + (1.0 + fapb.exp()).ln()
                    }
                })
                .sum()
        };

        let mut f = fval(a, b);
        for _ in 0..100 {
            // Gradient and Hessian.
            let (mut h11, mut h22, mut h21) = (sigma, sigma, 0.0);
            let (mut g1, mut g2) = (0.0, 0.0);
            for (&(s, _), &t) in scored.iter().zip(&targets) {
                let fapb = s * a + b;
                let (p, q) = if fapb >= 0.0 {
                    let e = (-fapb).exp();
                    (e / (1.0 + e), 1.0 / (1.0 + e))
                } else {
                    let e = fapb.exp();
                    (1.0 / (1.0 + e), e / (1.0 + e))
                };
                let d2 = p * q;
                h11 += s * s * d2;
                h22 += d2;
                h21 += s * d2;
                let d1 = t - p;
                g1 += s * d1;
                g2 += d1;
            }
            if g1.abs() < 1e-5 && g2.abs() < 1e-5 {
                break;
            }
            // Newton direction.
            let det = h11 * h22 - h21 * h21;
            let da = -(h22 * g1 - h21 * g2) / det;
            let db = -(-h21 * g1 + h11 * g2) / det;
            let gd = g1 * da + g2 * db;
            // Backtracking line search.
            let mut step = 1.0;
            loop {
                let na = a + step * da;
                let nb = b + step * db;
                let nf = fval(na, nb);
                if nf < f + 1e-4 * step * gd {
                    a = na;
                    b = nb;
                    f = nf;
                    break;
                }
                step /= 2.0;
                if step < min_step {
                    return Self { a, b };
                }
            }
        }
        Self { a, b }
    }

    /// Reconstructs a calibration from its two fitted parameters, e.g.
    /// when loading a persisted calibration file (see `crate::io`).
    #[must_use]
    pub fn from_parts(slope: f64, offset: f64) -> Self {
        Self {
            a: slope,
            b: offset,
        }
    }

    /// The sigmoid slope `A` (negative for a well-oriented classifier).
    #[must_use]
    pub fn slope(&self) -> f64 {
        self.a
    }

    /// The sigmoid offset `B`.
    #[must_use]
    pub fn offset(&self) -> f64 {
        self.b
    }

    /// Maps a raw decision value to `P(pedestrian)`.
    #[must_use]
    pub fn probability(&self, decision: f64) -> f64 {
        let fapb = decision * self.a + self.b;
        if fapb >= 0.0 {
            (-fapb).exp() / (1.0 + (-fapb).exp())
        } else {
            1.0 / (1.0 + fapb.exp())
        }
    }

    /// The raw-decision threshold corresponding to probability `p` —
    /// lets callers express the paper's FP/FN trade-off as "fire above
    /// 90% confidence".
    ///
    /// # Panics
    ///
    /// Panics unless `0 < p < 1` and the slope is non-zero.
    #[must_use]
    pub fn threshold_for_probability(&self, p: f64) -> f64 {
        assert!((0.0..1.0).contains(&p) && p > 0.0, "need 0 < p < 1");
        assert!(self.a.abs() > 1e-15, "degenerate calibration slope");
        // p = 1/(1+exp(A t + B))  =>  t = (ln((1-p)/p) - B) / A
        (((1.0 - p) / p).ln() - self.b) / self.a
    }
}

/// A classifier with calibrated probabilistic output.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibratedSvm {
    model: LinearSvm,
    calibration: PlattCalibration,
}

impl CalibratedSvm {
    /// Wraps a trained model with a calibration fitted on held-out
    /// `(sample, label)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if the held-out set lacks a class or dimensions mismatch.
    #[must_use]
    pub fn fit(model: LinearSvm, holdout: &[(Vec<f32>, Label)]) -> Self {
        let scored: Vec<(f64, bool)> = holdout
            .iter()
            .map(|(x, y)| (model.decision(x), *y == Label::Positive))
            .collect();
        let calibration = PlattCalibration::fit(&scored);
        Self { model, calibration }
    }

    /// The underlying margin classifier.
    #[must_use]
    pub fn model(&self) -> &LinearSvm {
        &self.model
    }

    /// The fitted sigmoid.
    #[must_use]
    pub fn calibration(&self) -> &PlattCalibration {
        &self.calibration
    }

    /// `P(pedestrian | x)`.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong dimensionality.
    #[must_use]
    pub fn probability(&self, x: &[f32]) -> f64 {
        self.calibration.probability(self.model.decision(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn separable_scores() -> Vec<(f64, bool)> {
        (0..50)
            .map(|i| {
                let pos = i % 2 == 0;
                let s = if pos {
                    1.0 + (i as f64) * 0.05
                } else {
                    -1.0 - (i as f64) * 0.05
                };
                (s, pos)
            })
            .collect()
    }

    #[test]
    fn calibration_orients_correctly() {
        let cal = PlattCalibration::fit(&separable_scores());
        assert!(
            cal.slope() < 0.0,
            "slope should be negative: {}",
            cal.slope()
        );
        assert!(cal.probability(3.0) > 0.9);
        assert!(cal.probability(-3.0) < 0.1);
    }

    #[test]
    fn probability_is_monotone_in_decision() {
        let cal = PlattCalibration::fit(&separable_scores());
        let mut prev = cal.probability(-5.0);
        for i in -49..=50 {
            let p = cal.probability(f64::from(i) * 0.1);
            assert!(p >= prev - 1e-12, "non-monotone at {i}");
            prev = p;
        }
    }

    #[test]
    fn probabilities_are_probabilities() {
        let cal = PlattCalibration::fit(&separable_scores());
        for i in -100..=100 {
            let p = cal.probability(f64::from(i) * 0.3);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn threshold_for_probability_inverts_sigmoid() {
        let cal = PlattCalibration::fit(&separable_scores());
        for p in [0.1, 0.5, 0.9] {
            let t = cal.threshold_for_probability(p);
            assert!((cal.probability(t) - p).abs() < 1e-9, "p = {p}");
        }
    }

    #[test]
    fn higher_probability_threshold_means_higher_margin() {
        let cal = PlattCalibration::fit(&separable_scores());
        assert!(cal.threshold_for_probability(0.9) > cal.threshold_for_probability(0.5));
    }

    #[test]
    fn noisy_overlap_gives_soft_probabilities() {
        // Overlapping scores: mid-range decisions get mid probabilities.
        let scored: Vec<(f64, bool)> = (0..200)
            .map(|i| {
                let pos = i % 2 == 0;
                let jitter = ((i * 37) % 100) as f64 / 50.0 - 1.0;
                (if pos { 0.5 } else { -0.5 } + jitter, pos)
            })
            .collect();
        let cal = PlattCalibration::fit(&scored);
        let mid = cal.probability(0.0);
        assert!((0.3..0.7).contains(&mid), "P at margin 0 was {mid}");
    }

    #[test]
    fn calibrated_svm_end_to_end() {
        use crate::dcd::{train_dcd, DcdParams};
        let train: Vec<(Vec<f32>, Label)> = (0..40)
            .map(|i| {
                let pos = i % 2 == 0;
                let x = if pos {
                    1.0 + (i as f32) * 0.01
                } else {
                    -1.0 - (i as f32) * 0.01
                };
                (
                    vec![x, -x * 0.5],
                    if pos {
                        Label::Positive
                    } else {
                        Label::Negative
                    },
                )
            })
            .collect();
        let model = train_dcd(&train, &DcdParams::default());
        let calibrated = CalibratedSvm::fit(model, &train);
        assert!(calibrated.probability(&[2.0, -1.0]) > 0.8);
        assert!(calibrated.probability(&[-2.0, 1.0]) < 0.2);
    }

    #[test]
    #[should_panic(expected = "calibration needs both classes")]
    fn rejects_single_class() {
        let _ = PlattCalibration::fit(&[(1.0, true), (2.0, true)]);
    }
}
