//! Feature standardization (zero mean, unit variance per dimension).
//!
//! HOG features are already normalized per block, but standardization
//! still speeds up SVM convergence and is exposed for users training on
//! other feature families.

/// Per-dimension affine feature transform `x' = (x - mean) / std`.
///
/// # Example
///
/// ```
/// use rtped_svm::scale::Standardizer;
///
/// let data = vec![vec![0.0f32, 10.0], vec![2.0, 30.0]];
/// let std = Standardizer::fit(&data);
/// let t = std.transform(&data[0]);
/// let u = std.transform(&data[1]);
/// assert!((t[0] + u[0]).abs() < 1e-5); // symmetric around 0
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Standardizer {
    mean: Vec<f64>,
    std: Vec<f64>,
}

impl Standardizer {
    /// Fits means and standard deviations over `data`.
    ///
    /// Dimensions with zero variance get `std = 1` so the transform stays
    /// finite.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or rows have inconsistent lengths.
    #[must_use]
    pub fn fit(data: &[Vec<f32>]) -> Self {
        assert!(!data.is_empty(), "need at least one sample to fit");
        let dim = data[0].len();
        assert!(
            data.iter().all(|row| row.len() == dim),
            "inconsistent feature dimensions"
        );
        let n = data.len() as f64;
        let mut mean = vec![0.0f64; dim];
        for row in data {
            for (m, &v) in mean.iter_mut().zip(row) {
                *m += f64::from(v);
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut var = vec![0.0f64; dim];
        for row in data {
            for ((s, &v), m) in var.iter_mut().zip(row).zip(&mean) {
                let d = f64::from(v) - m;
                *s += d * d;
            }
        }
        let std = var
            .into_iter()
            .map(|s| {
                let sd = (s / n).sqrt();
                if sd > 1e-12 {
                    sd
                } else {
                    1.0
                }
            })
            .collect();
        Self { mean, std }
    }

    /// Feature dimensionality.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    /// Transforms one feature vector.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    #[must_use]
    pub fn transform(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.dim(), "feature dimensionality mismatch");
        x.iter()
            .zip(self.mean.iter().zip(&self.std))
            .map(|(&v, (m, s))| ((f64::from(v) - m) / s) as f32)
            .collect()
    }

    /// Transforms a batch of feature vectors.
    ///
    /// # Panics
    ///
    /// Panics if any row has the wrong dimensionality.
    #[must_use]
    pub fn transform_batch(&self, data: &[Vec<f32>]) -> Vec<Vec<f32>> {
        data.iter().map(|row| self.transform(row)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transformed_data_has_zero_mean_unit_variance() {
        let data: Vec<Vec<f32>> = (0..50)
            .map(|i| vec![i as f32, (i * i) as f32 * 0.1, 5.0])
            .collect();
        let std = Standardizer::fit(&data);
        let t = std.transform_batch(&data);
        for d in 0..2 {
            let mean: f64 = t.iter().map(|r| f64::from(r[d])).sum::<f64>() / t.len() as f64;
            let var: f64 = t
                .iter()
                .map(|r| (f64::from(r[d]) - mean).powi(2))
                .sum::<f64>()
                / t.len() as f64;
            assert!(mean.abs() < 1e-4, "dim {d} mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "dim {d} var {var}");
        }
    }

    #[test]
    fn constant_dimension_is_left_finite() {
        let data = vec![vec![7.0f32], vec![7.0], vec![7.0]];
        let std = Standardizer::fit(&data);
        let t = std.transform(&[7.0]);
        assert_eq!(t[0], 0.0);
        let t = std.transform(&[8.0]);
        assert!(t[0].is_finite());
    }

    #[test]
    #[should_panic(expected = "need at least one sample")]
    fn fit_rejects_empty() {
        let _ = Standardizer::fit(&[]);
    }

    #[test]
    #[should_panic(expected = "inconsistent feature dimensions")]
    fn fit_rejects_ragged() {
        let _ = Standardizer::fit(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    #[should_panic(expected = "feature dimensionality mismatch")]
    fn transform_checks_dim() {
        let std = Standardizer::fit(&[vec![1.0f32, 2.0]]);
        let _ = std.transform(&[1.0]);
    }
}
