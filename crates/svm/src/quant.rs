//! Weight quantization for the i16 datapath.
//!
//! The float → integer conversion boundary on the classifier side: a
//! [`LinearSvm`]'s `f64` weights become an `i16` vector whose scale is
//! chosen dynamically so one window row's dot product against
//! Q[`FEATURE_FRAC_BITS`](rtped_hog-style) features provably fits an
//! `i32`. Decision values come back to `f64` only at the very end, via a
//! single exact multiply-add — so the integer pipeline between the two
//! boundaries is bit-reproducible across hosts and thread counts.

use crate::model::LinearSvm;

/// Fixed-point twin of [`LinearSvm`] for the i16 scoring kernel.
///
/// `weights[i] = round(w[i] * 2^weight_frac_bits)`, with
/// `weight_frac_bits` the largest shift such that every quantized weight
/// stays within the overflow-safe magnitude bound (see
/// [`QuantModel::from_svm`]).
#[derive(Debug, Clone, PartialEq)]
pub struct QuantModel {
    weights: Vec<i16>,
    weight_frac_bits: u32,
    bias: f64,
    inv_scale: f64,
}

impl QuantModel {
    /// Quantizes `model` for scoring against features carrying
    /// `feature_frac_bits` fraction bits, where one contiguous
    /// accumulation row holds `row_terms` products.
    ///
    /// The weight magnitude bound is
    /// `limit = min(i16::MAX, (2^31 - 1) / (2^feature_frac_bits * row_terms))`,
    /// which guarantees `|Σ_row w·v| ≤ limit * 2^feature_frac_bits *
    /// row_terms < 2^31`: a whole row accumulates in `i32` without
    /// wrapping, for *any* feature values the quantizer can emit. The
    /// fraction shift is then the largest `s` with
    /// `round(max|w| * 2^s) ≤ limit` — maximal precision under the bound.
    ///
    /// For the canonical geometry (`row_terms = 288`, Q12 features) the
    /// bound is 1820, giving Q10 weights for models with `max|w| ≤ 1` —
    /// two bits above the precision floor found by the PR-4 quantization
    /// ablation.
    ///
    /// # Panics
    ///
    /// Panics if `row_terms` is zero or so large that no positive weight
    /// scale exists, or if the model's weights are not finite.
    #[must_use]
    pub fn from_svm(model: &LinearSvm, feature_frac_bits: u32, row_terms: usize) -> Self {
        assert!(row_terms > 0, "row_terms must be non-zero");
        let limit = i64::from(i16::MAX)
            .min((i64::from(i32::MAX)) / ((1i64 << feature_frac_bits) * row_terms as i64));
        assert!(limit >= 1, "no overflow-safe weight scale exists");
        let max_w = model
            .weights()
            .iter()
            .map(|w| w.abs())
            .fold(0.0f64, f64::max);
        assert!(max_w.is_finite(), "model weights must be finite");
        // Largest shift keeping every rounded weight within `limit`.
        // (All-zero weights get an arbitrary valid shift.)
        let mut shift = 0u32;
        while shift < 15 && (max_w * f64::from(1u32 << (shift + 1))).round() <= limit as f64 {
            shift += 1;
        }
        let scale = f64::from(1u32 << shift);
        let weights: Vec<i16> = model
            .weights()
            .iter()
            .map(|&w| (w * scale).round().clamp(-(limit as f64), limit as f64) as i16)
            .collect();
        Self {
            weights,
            weight_frac_bits: shift,
            bias: model.bias(),
            inv_scale: 1.0 / f64::from(1u32 << (feature_frac_bits + shift)),
        }
    }

    /// The quantized weight vector (same layout as the float model's).
    #[must_use]
    pub fn weights(&self) -> &[i16] {
        &self.weights
    }

    /// Fraction bits carried by the quantized weights.
    #[must_use]
    pub fn weight_frac_bits(&self) -> u32 {
        self.weight_frac_bits
    }

    /// Converts a raw integer window accumulation (feature Q-bits ×
    /// weight Q-bits) into a decision value comparable against the same
    /// thresholds as the float path's `w·x + b`.
    #[must_use]
    pub fn decision(&self, acc: i64) -> f64 {
        (acc as f64) * self.inv_scale + self.bias
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_geometry_gets_q10_weights() {
        // max|w| = 1.0, Q12 features, 288-term rows: limit = 1820 → Q10.
        let model = LinearSvm::new(vec![1.0, -0.5, 0.25], 0.125);
        let q = QuantModel::from_svm(&model, 12, 288);
        assert_eq!(q.weight_frac_bits(), 10);
        assert_eq!(q.weights(), &[1024, -512, 256]);
    }

    #[test]
    fn row_dot_cannot_overflow_i32() {
        let model = LinearSvm::new(vec![3.7; 288], -0.25);
        let q = QuantModel::from_svm(&model, 12, 288);
        let max_row: i64 = q.weights().iter().map(|&w| i64::from(w).abs() * 4096).sum();
        assert!(max_row < i64::from(i32::MAX), "row sum {max_row} overflows");
    }

    #[test]
    fn decision_recovers_float_scale() {
        let model = LinearSvm::new(vec![0.5], 0.75);
        let q = QuantModel::from_svm(&model, 12, 1);
        // A unit feature (4096 in Q12) against the quantized 0.5 weight.
        let acc = i64::from(q.weights()[0]) * 4096;
        let d = q.decision(acc);
        assert!((d - (0.5 + 0.75)).abs() < 1e-9, "decision {d}");
    }

    #[test]
    fn zero_model_quantizes_cleanly() {
        let model = LinearSvm::new(vec![0.0; 8], 0.0);
        let q = QuantModel::from_svm(&model, 12, 8);
        assert!(q.weights().iter().all(|&w| w == 0));
        assert_eq!(q.decision(0), 0.0);
    }
}
