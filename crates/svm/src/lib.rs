//! Linear support vector machines for the rtped workspace.
//!
//! The paper trains its pedestrian model offline with LibLinear (§4:
//! "training a linear SVM with the extracted HOG features in LibLinear")
//! and evaluates `y(x) = w·x + b` in hardware (§3.2, eq. 4). This crate
//! provides both sides from scratch:
//!
//! - [`model::LinearSvm`]: the weight vector + bias with the decision rule
//!   of eqs. 4–6.
//! - [`dcd`]: dual coordinate descent for the L2-regularized L1-loss SVM —
//!   the same optimizer family LibLinear uses for `-s 3`.
//! - [`pegasos`]: primal stochastic sub-gradient training (Pegasos), a
//!   cheaper alternative exercised by the ablation benches.
//! - [`scale`]: feature standardization helpers.
//! - [`io`]: JSON persistence mirroring the paper's offline-trained model
//!   memory.
//!
//! # Example
//!
//! ```
//! use rtped_svm::dcd::{DcdParams, train_dcd};
//! use rtped_svm::model::Label;
//!
//! // A linearly separable toy problem in 2-D.
//! let samples = vec![
//!     (vec![2.0, 0.5], Label::Positive),
//!     (vec![1.5, 1.0], Label::Positive),
//!     (vec![-1.0, -0.5], Label::Negative),
//!     (vec![-2.0, -1.5], Label::Negative),
//! ];
//! let model = train_dcd(&samples, &DcdParams::default());
//! assert!(model.decision(&[2.0, 1.0]) > 0.0);
//! assert!(model.decision(&[-2.0, -1.0]) < 0.0);
//! ```

pub mod cv;
pub mod dcd;
pub mod io;
pub mod model;
pub mod pegasos;
pub mod platt;
pub mod quant;
pub mod scale;

pub use model::{Label, LinearSvm};
pub use quant::QuantModel;
