//! K-fold cross-validation for hyper-parameter selection.
//!
//! The paper trains its model offline with LibLinear; selecting `C` (and
//! the class weight) is part of that offline flow. This module provides
//! deterministic k-fold CV over labelled samples and a grid search that
//! picks the best `C` by mean validation accuracy.

use rtped_core::rng::{Rng, SeedRng};

use crate::dcd::{train_dcd, DcdParams};
use crate::model::Label;

/// The outcome of one cross-validation run.
#[derive(Debug, Clone, PartialEq)]
pub struct CvResult {
    /// Per-fold validation accuracy.
    pub fold_accuracies: Vec<f64>,
}

impl CvResult {
    /// Mean accuracy over folds.
    ///
    /// # Panics
    ///
    /// Panics if there are no folds.
    #[must_use]
    pub fn mean_accuracy(&self) -> f64 {
        assert!(!self.fold_accuracies.is_empty(), "no folds");
        self.fold_accuracies.iter().sum::<f64>() / self.fold_accuracies.len() as f64
    }

    /// Sample standard deviation over folds (0 for a single fold).
    #[must_use]
    pub fn std_accuracy(&self) -> f64 {
        let n = self.fold_accuracies.len();
        if n < 2 {
            return 0.0;
        }
        let mean = self.mean_accuracy();
        let var = self
            .fold_accuracies
            .iter()
            .map(|a| (a - mean).powi(2))
            .sum::<f64>()
            / (n - 1) as f64;
        var.sqrt()
    }
}

/// Runs stratified k-fold cross-validation of [`train_dcd`] under
/// `params`.
///
/// Folds are stratified per class so each holds both labels, and the
/// shuffle is seeded by `seed` for reproducibility.
///
/// # Panics
///
/// Panics if `folds < 2`, a class has fewer samples than `folds`, or the
/// samples are otherwise untrainable.
#[must_use]
pub fn cross_validate(
    samples: &[(Vec<f32>, Label)],
    params: &DcdParams,
    folds: usize,
    seed: u64,
) -> CvResult {
    assert!(folds >= 2, "need at least two folds");
    let mut positives: Vec<usize> = Vec::new();
    let mut negatives: Vec<usize> = Vec::new();
    for (i, (_, y)) in samples.iter().enumerate() {
        match y {
            Label::Positive => positives.push(i),
            Label::Negative => negatives.push(i),
        }
    }
    assert!(
        positives.len() >= folds && negatives.len() >= folds,
        "each class needs at least `folds` samples"
    );
    let mut rng = SeedRng::seed_from_u64(seed);
    rng.shuffle(&mut positives);
    rng.shuffle(&mut negatives);

    // Round-robin assignment keeps folds balanced.
    let fold_of = |rank: usize| rank % folds;
    let mut fold_assignment = vec![0usize; samples.len()];
    for (rank, &i) in positives.iter().enumerate() {
        fold_assignment[i] = fold_of(rank);
    }
    for (rank, &i) in negatives.iter().enumerate() {
        fold_assignment[i] = fold_of(rank);
    }

    let mut fold_accuracies = Vec::with_capacity(folds);
    for fold in 0..folds {
        let train: Vec<(Vec<f32>, Label)> = samples
            .iter()
            .enumerate()
            .filter(|(i, _)| fold_assignment[*i] != fold)
            .map(|(_, s)| s.clone())
            .collect();
        let validate: Vec<&(Vec<f32>, Label)> = samples
            .iter()
            .enumerate()
            .filter(|(i, _)| fold_assignment[*i] == fold)
            .map(|(_, s)| s)
            .collect();
        let model = train_dcd(&train, params);
        let correct = validate
            .iter()
            .filter(|(x, y)| model.classify(x) == *y)
            .count();
        fold_accuracies.push(correct as f64 / validate.len() as f64);
    }
    CvResult { fold_accuracies }
}

/// Grid-searches `C` by k-fold CV, returning `(best_c, best_result)`.
///
/// Ties go to the smaller `C` (stronger regularization).
///
/// # Panics
///
/// Panics if `c_grid` is empty or any CV run panics.
#[must_use]
pub fn select_c(
    samples: &[(Vec<f32>, Label)],
    base: &DcdParams,
    c_grid: &[f64],
    folds: usize,
    seed: u64,
) -> (f64, CvResult) {
    assert!(!c_grid.is_empty(), "need at least one C candidate");
    let mut best: Option<(f64, CvResult)> = None;
    for &c in c_grid {
        let params = DcdParams { c, ..base.clone() };
        let result = cross_validate(samples, &params, folds, seed);
        let better = match &best {
            None => true,
            Some((best_c, best_result)) => {
                let acc = result.mean_accuracy();
                let best_acc = best_result.mean_accuracy();
                acc > best_acc + 1e-12 || ((acc - best_acc).abs() <= 1e-12 && c < *best_c)
            }
        };
        if better {
            best = Some((c, result));
        }
    }
    // rtped-lint: allow(unwrap-in-library, "the assert at function entry guarantees at least one C candidate, so the loop always sets `best`")
    best.expect("grid was non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobbed(n_per_class: usize, separation: f32) -> Vec<(Vec<f32>, Label)> {
        let mut out = Vec::new();
        for i in 0..n_per_class {
            let jitter = ((i * 37) % 100) as f32 / 100.0 - 0.5;
            out.push((vec![separation + jitter, jitter * 0.5], Label::Positive));
            out.push((vec![-separation + jitter, -jitter * 0.5], Label::Negative));
        }
        out
    }

    #[test]
    fn cv_on_separable_data_is_accurate() {
        let samples = blobbed(30, 2.0);
        let result = cross_validate(&samples, &DcdParams::default(), 5, 1);
        assert_eq!(result.fold_accuracies.len(), 5);
        assert!(result.mean_accuracy() > 0.95, "{}", result.mean_accuracy());
    }

    #[test]
    fn cv_is_deterministic_in_seed() {
        let samples = blobbed(20, 0.6);
        let a = cross_validate(&samples, &DcdParams::default(), 4, 7);
        let b = cross_validate(&samples, &DcdParams::default(), 4, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn std_is_zero_for_constant_folds() {
        let r = CvResult {
            fold_accuracies: vec![0.9, 0.9, 0.9],
        };
        assert_eq!(r.std_accuracy(), 0.0);
        assert!((r.mean_accuracy() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn select_c_prefers_better_mean_accuracy() {
        // A boundary far from the origin needs a trained bias; with a
        // degenerate C the dual variables cannot push the bias out and
        // everything lands on one side.
        let samples: Vec<(Vec<f32>, Label)> = (0..60)
            .map(|i| {
                let x = i as f32 * 0.2;
                (
                    vec![x],
                    if x > 6.0 {
                        Label::Positive
                    } else {
                        Label::Negative
                    },
                )
            })
            .collect();
        let base = DcdParams {
            bias_scale: 10.0,
            max_iterations: 2000,
            ..DcdParams::default()
        };
        let degenerate = cross_validate(
            &samples,
            &DcdParams {
                c: 1e-9,
                ..base.clone()
            },
            4,
            3,
        );
        let (best_c, result) = select_c(&samples, &base, &[1e-9, 0.5, 5.0], 4, 3);
        assert!(best_c > 1e-9, "picked the degenerate C");
        assert!(result.mean_accuracy() > degenerate.mean_accuracy());
    }

    #[test]
    fn select_c_breaks_ties_toward_regularization() {
        // Fully separable: all reasonable C values reach 100%; the
        // smallest such C must win.
        let samples = blobbed(30, 3.0);
        let (best_c, result) = select_c(&samples, &DcdParams::default(), &[10.0, 1.0, 0.1], 3, 5);
        assert!((result.mean_accuracy() - 1.0).abs() < 1e-9);
        assert!((best_c - 0.1).abs() < 1e-12, "picked {best_c}");
    }

    #[test]
    #[should_panic(expected = "need at least two folds")]
    fn single_fold_rejected() {
        let samples = blobbed(10, 1.0);
        let _ = cross_validate(&samples, &DcdParams::default(), 1, 0);
    }

    #[test]
    #[should_panic(expected = "each class needs at least")]
    fn too_few_samples_per_class_rejected() {
        let samples = vec![
            (vec![1.0f32], Label::Positive),
            (vec![-1.0], Label::Negative),
            (vec![-1.1], Label::Negative),
        ];
        let _ = cross_validate(&samples, &DcdParams::default(), 2, 0);
    }
}
