//! Per-frame deadline budgets and the virtual cost model that enforces
//! them deterministically.
//!
//! # Deadline derivation
//!
//! The paper's §1 derives the whole detection requirement from
//! perception-reaction arithmetic: the driver needs a nominal PRT of
//! 1.5 s ([`DasParams::reaction_time_s`]), and detection latency eats
//! directly into that budget. §4's hardware keeps latency near 1% of the
//! PRT (16.6 ms HDTV stream time against 1.5 s), so the software runtime
//! adopts the same contract: a frame's compute budget is
//! [`PRT_FRACTION`] (1%) of the PRT — **15 ms** with default
//! [`DasParams`]. Operators can override it with the `RTPED_DEADLINE_MS`
//! environment variable ([`DEADLINE_ENV`]).
//!
//! # Why a *modeled* cost, not the wall clock
//!
//! The degradation controller must make bit-identical decisions across
//! runs, hosts, and `RTPED_THREADS` values — otherwise a robustness
//! report is unreproducible noise. Wall-clock time cannot do that, so
//! latency is *modeled*: a [`CostModel`] charges fixed rates per
//! megapixel extracted and per thousand windows scanned (calibrated to
//! the same order of magnitude as the committed `BENCH_detect.json`
//! single-core numbers), and injected delivery delays add on top. The
//! model is the runtime's scheduling clock; the real wall clock is
//! reported by the benchmarks, not consumed by control decisions.

use rtped_detect::das::DasParams;
use rtped_detect::detector::{DetectorConfig, ScanProfile};

/// Environment variable overriding the per-frame deadline (milliseconds,
/// parsed as `f64`; non-positive or unparsable values are ignored).
pub const DEADLINE_ENV: &str = "RTPED_DEADLINE_MS";

/// Fraction of the perception-reaction time a single frame may consume.
pub const PRT_FRACTION: f64 = 0.01;

/// The per-frame compute budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeadlineBudget {
    /// Budget per frame in milliseconds.
    pub frame_budget_ms: f64,
}

impl DeadlineBudget {
    /// An explicit budget in milliseconds.
    ///
    /// # Panics
    ///
    /// Panics unless `ms` is finite and positive.
    #[must_use]
    pub fn from_ms(ms: f64) -> Self {
        assert!(ms.is_finite() && ms > 0.0, "budget must be positive");
        Self {
            frame_budget_ms: ms,
        }
    }

    /// The budget derived from driver-assistance arithmetic:
    /// `PRT × PRT_FRACTION` — 15 ms for the paper's nominal 1.5 s PRT.
    #[must_use]
    pub fn from_das(das: &DasParams) -> Self {
        Self::from_ms(das.reaction_time_s * 1000.0 * PRT_FRACTION)
    }

    /// [`DeadlineBudget::from_das`] unless `RTPED_DEADLINE_MS` holds a
    /// positive number, which then wins. An unparsable or non-positive
    /// value is ignored with a once-per-process stderr warning, so a
    /// typo'd override degrades loudly to the derived default instead of
    /// silently changing the deadline.
    #[must_use]
    pub fn from_env_or_das(das: &DasParams) -> Self {
        let fallback = Self::from_das(das);
        match rtped_core::env::typed::<f64>(DEADLINE_ENV) {
            rtped_core::env::EnvValue::Valid { value, .. } if value.is_finite() && value > 0.0 => {
                Self::from_ms(value)
            }
            rtped_core::env::EnvValue::Valid { raw, .. }
            | rtped_core::env::EnvValue::Invalid { raw } => {
                rtped_core::env::warn_once(
                    DEADLINE_ENV,
                    &raw,
                    &format!("{} ms", fallback.frame_budget_ms),
                );
                fallback
            }
            rtped_core::env::EnvValue::Unset => fallback,
        }
    }
}

impl Default for DeadlineBudget {
    fn default() -> Self {
        Self::from_das(&DasParams::default())
    }
}

/// Virtual per-frame compute cost: deterministic stand-in for the wall
/// clock (see the module docs for why).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Cost of HOG extraction per megapixel of input, in milliseconds.
    pub extract_ms_per_megapixel: f64,
    /// Cost of classification per thousand scanned windows, in
    /// milliseconds.
    pub scan_ms_per_kilowindow: f64,
}

impl Default for CostModel {
    /// Rates on the order of the committed single-core software
    /// benchmarks: ~25 ms/MP extraction, ~1 ms per 1000 windows scanned.
    fn default() -> Self {
        Self {
            extract_ms_per_megapixel: 25.0,
            scan_ms_per_kilowindow: 1.0,
        }
    }
}

impl CostModel {
    /// Number of windows a scan visits for a `width × height` frame under
    /// `config` as shed by `profile`. Mirrors `scan_level`'s geometry
    /// (cells = scaled dimension / cell size, floor; windows per axis =
    /// `(cells - window_cells) / stride + 1` when it fits).
    #[must_use]
    pub fn scan_windows(
        &self,
        width: usize,
        height: usize,
        config: &DetectorConfig,
        profile: &ScanProfile,
    ) -> usize {
        let effective = profile.effective(config);
        let cell = effective.params.cell_size();
        let (wc, hc) = effective.params.window_cells();
        let stride = effective.stride_cells;
        let mut windows = 0usize;
        for &scale in &effective.scales {
            let gx = ((width as f64 / scale) as usize) / cell;
            let gy = ((height as f64 / scale) as usize) / cell;
            if gx < wc || gy < hc {
                continue;
            }
            let cols = (gx - wc) / stride + 1;
            let rows = (gy - hc) / stride + 1;
            windows += cols * rows;
        }
        windows
    }

    /// Modeled compute time for one frame in milliseconds: extraction on
    /// the full frame plus scanning every surviving window.
    #[must_use]
    pub fn frame_cost_ms(
        &self,
        width: usize,
        height: usize,
        config: &DetectorConfig,
        profile: &ScanProfile,
    ) -> f64 {
        let megapixels = (width * height) as f64 / 1.0e6;
        let kilowindows = self.scan_windows(width, height, config, profile) as f64 / 1000.0;
        megapixels * self.extract_ms_per_megapixel + kilowindows * self.scan_ms_per_kilowindow
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_budget_is_one_percent_of_prt() {
        let budget = DeadlineBudget::from_das(&DasParams::default());
        assert!((budget.frame_budget_ms - 15.0).abs() < 1e-12);
    }

    #[test]
    fn env_override_wins_when_positive() {
        // Serialized env mutation: RTPED_DEADLINE_MS is shared with the
        // config module's test, so both take the crate-wide lock.
        let _guard = crate::test_env::lock();
        std::env::set_var(DEADLINE_ENV, "42.5");
        let budget = DeadlineBudget::from_env_or_das(&DasParams::default());
        assert!((budget.frame_budget_ms - 42.5).abs() < 1e-12);
        std::env::set_var(DEADLINE_ENV, "not-a-number");
        let fallback = DeadlineBudget::from_env_or_das(&DasParams::default());
        assert!((fallback.frame_budget_ms - 15.0).abs() < 1e-12);
        std::env::set_var(DEADLINE_ENV, "-3");
        let negative = DeadlineBudget::from_env_or_das(&DasParams::default());
        assert!((negative.frame_budget_ms - 15.0).abs() < 1e-12);
        std::env::remove_var(DEADLINE_ENV);
    }

    #[test]
    #[should_panic(expected = "budget must be positive")]
    fn zero_budget_rejected() {
        let _ = DeadlineBudget::from_ms(0.0);
    }

    #[test]
    fn shedding_reduces_modeled_cost_monotonically() {
        let model = CostModel::default();
        let config = DetectorConfig::two_scale();
        let full = model.frame_cost_ms(480, 360, &config, &ScanProfile::full());
        let two = model.frame_cost_ms(
            480,
            360,
            &config,
            &ScanProfile {
                max_scales: Some(1),
                stride_factor: 1,
            },
        );
        let coarse = model.frame_cost_ms(
            480,
            360,
            &config,
            &ScanProfile {
                max_scales: Some(1),
                stride_factor: 2,
            },
        );
        assert!(full > two, "{full} vs {two}");
        assert!(two > coarse, "{two} vs {coarse}");
        // The worked example from the design: a 480x360 two-scale scan
        // fits the 15 ms default budget with room to spare...
        assert!(full < 15.0, "full cost {full} must fit the budget");
        // ...but a 12 ms injected delay on top blows it.
        assert!(full + 12.0 > 15.0);
    }

    #[test]
    fn scan_windows_matches_hand_count() {
        let model = CostModel::default();
        let mut config = DetectorConfig::two_scale();
        config.scales = vec![1.0];
        // 128x192 -> 16x24 cells, 8x16-cell window, stride 1:
        // (16-8)/1+1 = 9 cols, (24-16)/1+1 = 9 rows.
        let n = model.scan_windows(128, 192, &config, &ScanProfile::full());
        assert_eq!(n, 81);
        // Stride factor 2: ceil(9/2) = 5 per axis.
        let coarse = model.scan_windows(
            128,
            192,
            &config,
            &ScanProfile {
                max_scales: None,
                stride_factor: 2,
            },
        );
        assert_eq!(coarse, 25);
    }
}
