//! The fault-tolerant frame-serving engine.
//!
//! [`Runtime::run`] drives a frame sequence through a [`Detect`]
//! implementation under a [`FaultPlan`], with the degradation
//! [`Controller`] choosing each frame's [`ScanProfile`] and the tracker
//! carrying confirmed pedestrians through `SafeFallback`. The loop over
//! frames is sequential by design — the controller and tracker are
//! stateful — while each frame's scan parallelizes internally (and stays
//! bit-identical across thread counts, so the emitted [`RunReport`] is
//! too).
//!
//! Guarantees, under any plan:
//!
//! - **zero panics escape**: worker panics are caught by
//!   `rtped_core::par::try_map` and surface as
//!   [`FrameError::WorkerPanic`];
//! - **every frame accounted**: each input frame yields detections,
//!   coasted tracks, or a typed [`FrameError`] — never silence;
//! - **empty plan ⇒ bit-identity**: with [`FaultPlan::none`] and frames
//!   whose modeled cost fits the budget, the runtime stays `Healthy`,
//!   every profile is full, and published detections equal
//!   [`Detect::detect`] exactly.

use rtped_core::par;
use rtped_detect::detector::{Detect, Detection};
use rtped_detect::tracker::{Tracker, TrackerParams};
use rtped_hw::stream::StreamSimulator;
use rtped_image::GrayImage;

use crate::control::{Controller, DegradationPolicy, HealthState};
use crate::deadline::{CostModel, DeadlineBudget};
use crate::fault::{Delivery, FaultPlan};
use crate::report::{FrameError, FrameOutcome, FrameRecord, RunReport, TransitionRecord};

/// Everything the engine needs besides the detector.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Per-frame deadline.
    pub budget: DeadlineBudget,
    /// Escalation/recovery hysteresis.
    pub policy: DegradationPolicy,
    /// The deterministic latency model.
    pub cost_model: CostModel,
    /// Tracker used for `SafeFallback` coasting.
    pub tracker: TrackerParams,
}

impl Default for RuntimeConfig {
    /// Budget from `RTPED_DEADLINE_MS` or the DAS derivation (15 ms),
    /// default hysteresis, default cost model and tracker.
    fn default() -> Self {
        Self {
            budget: DeadlineBudget::from_env_or_das(&rtped_detect::das::DasParams::default()),
            policy: DegradationPolicy::default(),
            cost_model: CostModel::default(),
            tracker: TrackerParams::default(),
        }
    }
}

/// The fault-tolerant, deadline-aware frame server.
#[derive(Debug, Clone)]
pub struct Runtime<D> {
    detector: D,
    config: RuntimeConfig,
}

impl<D: Detect + Sync> Runtime<D> {
    /// Wraps a detector with the default [`RuntimeConfig`].
    #[must_use]
    pub fn new(detector: D) -> Self {
        Self::with_config(detector, RuntimeConfig::default())
    }

    /// Wraps a detector with an explicit configuration.
    #[must_use]
    pub fn with_config(detector: D, config: RuntimeConfig) -> Self {
        Self { detector, config }
    }

    /// The wrapped detector.
    #[must_use]
    pub fn detector(&self) -> &D {
        &self.detector
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// Serves `frames` under `plan`, returning the full run record.
    ///
    /// Controller and tracker start fresh, so equal inputs produce equal
    /// reports.
    #[must_use]
    pub fn run(&self, frames: &[GrayImage], plan: &FaultPlan) -> RunReport {
        let mut controller = Controller::new(self.config.budget, self.config.policy);
        let mut tracker = Tracker::new(self.config.tracker.clone());
        let mut records = Vec::with_capacity(frames.len());
        let mut transitions = Vec::new();

        for (index, frame) in frames.iter().enumerate() {
            let state = controller.state();
            let (record, transition) =
                self.serve_frame(index, frame, plan, state, &mut controller, &mut tracker);
            if let Some(t) = transition {
                transitions.push(TransitionRecord {
                    frame: index,
                    transition: t,
                });
            }
            records.push(record);
        }

        RunReport {
            seed: plan.seed,
            frames: records,
            transitions,
            final_state: controller.state(),
            stream: None,
            integrity: None,
        }
    }

    /// [`Runtime::run`], additionally feeding every *delivered* frame
    /// through the hardware [`StreamSimulator`] for drop accounting
    /// (frames the faults swallowed never reach the camera link). The
    /// stream stats land in [`RunReport::stream`].
    #[must_use]
    pub fn run_with_stream(
        &self,
        frames: &[GrayImage],
        plan: &FaultPlan,
        simulator: &StreamSimulator,
        camera_period_cycles: u64,
    ) -> RunReport {
        let mut report = self.run(frames, plan);
        let delivered: Vec<GrayImage> = frames
            .iter()
            .enumerate()
            .filter_map(|(i, frame)| match plan.deliver(i, frame) {
                Delivery::Frame { image, .. } => Some(image),
                Delivery::Dropped | Delivery::Truncated { .. } => None,
            })
            .collect();
        if !delivered.is_empty() {
            report.stream = Some(
                simulator
                    .process_stream(&delivered, camera_period_cycles)
                    .stats(),
            );
        }
        report
    }

    /// Serves one frame: fault delivery, profile selection, isolated
    /// detection, tracking, and the controller observation.
    fn serve_frame(
        &self,
        index: usize,
        frame: &GrayImage,
        plan: &FaultPlan,
        state: HealthState,
        controller: &mut Controller,
        tracker: &mut Tracker,
    ) -> (FrameRecord, Option<crate::control::Transition>) {
        let delivery = plan.deliver(index, frame);
        let (image, faults, delay_ms, worker_panic) = match delivery {
            Delivery::Dropped => {
                let transition = controller.observe_error();
                return (
                    self.error_record(
                        index,
                        state,
                        vec!["sensor_dropout".into()],
                        FrameError::SensorDropout,
                    ),
                    transition,
                );
            }
            Delivery::Truncated { error } => {
                let transition = controller.observe_error();
                return (
                    self.error_record(
                        index,
                        state,
                        vec!["truncation".into()],
                        FrameError::TruncatedFrame(error),
                    ),
                    transition,
                );
            }
            Delivery::Frame {
                image,
                faults,
                delay_ms,
                worker_panic,
            } => (image, faults, delay_ms, worker_panic),
        };
        let fault_labels: Vec<String> = faults.iter().map(crate::fault::Fault::label).collect();

        // SafeFallback scans with the deepest shed profile as a probe;
        // any other state scans with its own profile.
        let profile = state.profile();
        let (width, height) = image.dimensions();
        let modeled_ms =
            self.config
                .cost_model
                .frame_cost_ms(width, height, self.detector.config(), &profile)
                + delay_ms;

        // Panic isolation: the scan runs inside `try_map`, so an injected
        // (or genuine) worker panic becomes a typed error instead of
        // unwinding through the frame loop.
        let scanned = par::try_map(std::slice::from_ref(&image), |img| {
            if worker_panic {
                // rtped-lint: allow(unwrap-in-library, "deliberate fault injection: this panic exists to exercise try_map's panic isolation and is caught below")
                panic!("injected worker panic at frame {index}");
            }
            self.detector.detect_with_profile(img, &profile)
        });
        match scanned {
            Err(panic) => {
                let transition = controller.observe_error();
                (
                    self.error_record(
                        index,
                        state,
                        fault_labels,
                        FrameError::WorkerPanic(panic.message),
                    ),
                    transition,
                )
            }
            Ok(mut results) => {
                // rtped-lint: allow(unwrap-in-library, "try_map over a one-element slice returns exactly one result on the Ok path")
                let detections = results.pop().expect("one input yields one output");
                tracker.step(&detections);
                let transition = controller.observe_ok(modeled_ms);
                let outcome = if state == HealthState::SafeFallback {
                    // Publish the coasted confirmed tracks; the probe scan
                    // above only fed the tracker and the controller.
                    FrameOutcome::Coasted(self.coasted_tracks(tracker))
                } else {
                    FrameOutcome::Detections(detections)
                };
                (
                    FrameRecord {
                        index,
                        state,
                        faults: fault_labels,
                        modeled_latency_ms: modeled_ms,
                        outcome,
                    },
                    transition,
                )
            }
        }
    }

    /// Confirmed tracks rendered as detections (the coast output).
    fn coasted_tracks(&self, tracker: &Tracker) -> Vec<Detection> {
        let window_h = self.detector.config().params.window_size().1 as f64;
        tracker
            .confirmed()
            .map(|t| Detection {
                bbox: t.bbox,
                score: t.score,
                scale: if window_h > 0.0 {
                    t.bbox.height as f64 / window_h
                } else {
                    1.0
                },
            })
            .collect()
    }

    fn error_record(
        &self,
        index: usize,
        state: HealthState,
        faults: Vec<String>,
        error: FrameError,
    ) -> FrameRecord {
        FrameRecord {
            index,
            state,
            faults,
            // No compute happened; the frame period was still consumed,
            // but the controller tracks errors separately from latency.
            modeled_latency_ms: 0.0,
            outcome: FrameOutcome::Error(error),
        }
    }
}
