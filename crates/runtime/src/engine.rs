//! The unified engine API and the software frame-serving engine.
//!
//! # The [`Engine`] trait
//!
//! PRs 4–5 grew two parallel frame servers — the software
//! [`Runtime`] and the hardware [`IntegrityRuntime`](crate::IntegrityRuntime)
//! — with duplicated entry points. This module unifies them behind one
//! **object-safe** trait so hosts (the `rtped-serve` daemon, tests,
//! examples) can drive heterogeneous engines as `Box<dyn Engine>`:
//!
//! - [`Engine::serve_frame`] serves **one** frame incrementally and
//!   returns its [`FrameRecord`] — the daemon's request-at-a-time entry
//!   point;
//! - [`Engine::run`] (provided) resets, serves a whole sequence, and
//!   drains the [`RunReport`] — the batch entry point every existing
//!   caller migrates to;
//! - [`Engine::take_report`] drains the accumulated log without
//!   disturbing controller/tracker state, so a long-lived serving
//!   session can emit periodic reports.
//!
//! Guarantees, under any plan, for every engine:
//!
//! - **zero panics escape**: worker panics are caught
//!   (`rtped_core::par::try_map`) and surface as
//!   [`FrameError::WorkerPanic`];
//! - **every frame accounted**: each input frame yields detections,
//!   coasted tracks, or a typed [`FrameError`] — never silence;
//! - **bit-identical replay**: latency is modeled, never wall-clock, so
//!   equal observation sequences produce byte-identical reports across
//!   runs, hosts, and `RTPED_THREADS` values.
//!
//! The frame loop is sequential by design — the controller and tracker
//! are stateful — while each frame's scan parallelizes internally.

use rtped_core::par;
use rtped_detect::detector::Detect;
use rtped_hw::stream::StreamSimulator;
use rtped_image::GrayImage;

use crate::config::RuntimeConfig;
use crate::control::HealthState;
use crate::deadline::DeadlineBudget;
use crate::fault::{Delivery, FaultPlan};
use crate::report::{FrameError, FrameOutcome, FrameRecord, RunReport};
use crate::session::{Admitted, Session};

/// A fault-tolerant, deadline-aware frame server, object-safe so daemons
/// can host heterogeneous engines as `Box<dyn Engine>`.
///
/// Implementations are stateful: the degradation controller, the coasting
/// tracker, and the run log live inside the engine and persist across
/// [`Engine::serve_frame`] calls until [`Engine::reset`].
pub trait Engine: Send {
    /// Serves the next frame under `plan` and returns its record. The
    /// frame's index is the engine's internal counter (frames served
    /// since the last reset), which is also the index the plan's seeded
    /// fault schedule keys on.
    fn serve_frame(&mut self, frame: &GrayImage, plan: &FaultPlan) -> FrameRecord;

    /// Health state the next frame will be served under.
    fn state(&self) -> HealthState;

    /// Frames served since the last reset.
    fn frames_served(&self) -> usize;

    /// The per-frame deadline in force.
    fn budget(&self) -> DeadlineBudget;

    /// Stable engine-family label (`"software"` or `"integrity"`), used
    /// by serving layers to report what backs a tenant.
    fn kind(&self) -> &'static str;

    /// Returns the engine to its post-construction state: fresh
    /// controller, tracker, log, and frame counter.
    fn reset(&mut self);

    /// Drains the accumulated run log into a report stamped with `seed`.
    /// Controller, tracker, and the frame counter are left running, so a
    /// serving session can report periodically; use [`Engine::reset`]
    /// for a fresh run.
    fn take_report(&mut self, seed: u64) -> RunReport;

    /// Serves `frames` under `plan` from a fresh state, returning the
    /// full run record. Equal inputs produce equal reports.
    fn run(&mut self, frames: &[GrayImage], plan: &FaultPlan) -> RunReport {
        self.reset();
        for frame in frames {
            let _ = self.serve_frame(frame, plan);
        }
        self.take_report(plan.seed)
    }
}

/// The software frame server: a [`Detect`] implementation behind the
/// degradation controller and the coasting tracker.
#[derive(Debug, Clone)]
pub struct Runtime<D> {
    detector: D,
    config: RuntimeConfig,
    session: Session,
}

impl<D: Detect + Sync + Send> Runtime<D> {
    /// Wraps a detector with the (environment-free) default
    /// [`RuntimeConfig`]. Binaries that want `RTPED_*` overrides pass
    /// [`RuntimeConfig::from_env`] to [`Runtime::with_config`].
    #[must_use]
    pub fn new(detector: D) -> Self {
        Self::with_config(detector, RuntimeConfig::default())
    }

    /// Wraps a detector with an explicit configuration.
    #[must_use]
    pub fn with_config(detector: D, config: RuntimeConfig) -> Self {
        let session = Session::new(config.budget, config.policy, config.tracker.clone());
        Self {
            detector,
            config,
            session,
        }
    }

    /// The wrapped detector.
    #[must_use]
    pub fn detector(&self) -> &D {
        &self.detector
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// [`Engine::run`], additionally feeding every *delivered* frame
    /// through the hardware [`StreamSimulator`] for drop accounting
    /// (frames the faults swallowed never reach the camera link). The
    /// stream stats land in [`RunReport::stream`].
    #[must_use]
    pub fn run_with_stream(
        &mut self,
        frames: &[GrayImage],
        plan: &FaultPlan,
        simulator: &StreamSimulator,
        camera_period_cycles: u64,
    ) -> RunReport {
        let mut report = Engine::run(self, frames, plan);
        let delivered: Vec<GrayImage> = frames
            .iter()
            .enumerate()
            .filter_map(|(i, frame)| match plan.deliver(i, frame) {
                Delivery::Frame { image, .. } => Some(image),
                Delivery::Dropped | Delivery::Truncated { .. } => None,
            })
            .collect();
        if !delivered.is_empty() {
            report.stream = Some(
                simulator
                    .process_stream(&delivered, camera_period_cycles)
                    .stats(),
            );
        }
        report
    }
}

impl<D: Detect + Sync + Send> Engine for Runtime<D> {
    /// Serves one frame: fault delivery, profile selection, isolated
    /// detection, tracking, and the controller observation.
    fn serve_frame(&mut self, frame: &GrayImage, plan: &FaultPlan) -> FrameRecord {
        let index = self.session.next_index();
        let state = self.session.state();
        let (image, fault_labels, delay_ms, worker_panic) =
            match self.session.deliver(index, state, frame, plan) {
                Admitted::Rejected(record) => return record,
                Admitted::Frame {
                    image,
                    fault_labels,
                    delay_ms,
                    worker_panic,
                    ..
                } => (image, fault_labels, delay_ms, worker_panic),
            };

        // SafeFallback scans with the deepest shed profile as a probe;
        // any other state scans with its own profile.
        let profile = state.profile();
        let (width, height) = image.dimensions();
        let modeled_ms =
            self.config
                .cost_model
                .frame_cost_ms(width, height, self.detector.config(), &profile)
                + delay_ms;

        // Panic isolation: the scan runs inside `try_map`, so an injected
        // (or genuine) worker panic becomes a typed error instead of
        // unwinding through the frame loop.
        let detector = &self.detector;
        let scanned = par::try_map(std::slice::from_ref(&image), |img| {
            if worker_panic {
                // rtped-lint: allow(unwrap-in-library, "deliberate fault injection: this panic exists to exercise try_map's panic isolation and is caught below")
                panic!("injected worker panic at frame {index}");
            }
            detector.detect_with_profile(img, &profile)
        });
        match scanned {
            Err(panic) => self.session.fail(
                index,
                state,
                fault_labels,
                FrameError::WorkerPanic(panic.message),
            ),
            Ok(mut results) => {
                // try_map over a one-element slice returns exactly one
                // result on the Ok path; the empty fallback is unreachable.
                let detections = results.pop().unwrap_or_default();
                self.session.tracker.step(&detections);
                let transition = self.session.controller.observe_ok(modeled_ms);
                let outcome = if state == HealthState::SafeFallback {
                    // Publish the coasted confirmed tracks; the probe scan
                    // above only fed the tracker and the controller.
                    let window_h = self.detector.config().params.window_size().1 as f64;
                    FrameOutcome::Coasted(self.session.coasted_tracks(window_h))
                } else {
                    FrameOutcome::Detections(detections)
                };
                self.session.push(
                    FrameRecord {
                        index,
                        state,
                        faults: fault_labels,
                        modeled_latency_ms: modeled_ms,
                        outcome,
                    },
                    transition,
                )
            }
        }
    }

    fn state(&self) -> HealthState {
        self.session.state()
    }

    fn frames_served(&self) -> usize {
        self.session.served()
    }

    fn budget(&self) -> DeadlineBudget {
        self.config.budget
    }

    fn kind(&self) -> &'static str {
        "software"
    }

    fn reset(&mut self) {
        self.session = Session::new(
            self.config.budget,
            self.config.policy,
            self.config.tracker.clone(),
        );
    }

    fn take_report(&mut self, seed: u64) -> RunReport {
        self.session.take_report(seed)
    }
}
