//! Deterministic fault plans: every failure mode reproducible from a seed.
//!
//! A [`FaultPlan`] decides, per frame index, which faults strike the
//! frame on its way from the sensor to the detector. All randomness comes
//! from [`rtped_core::rng`] streams derived as `seed → split(frame)`, so
//! the decision for frame *k* depends only on the plan and *k* — not on
//! the order frames are processed in, the thread count, or wall-clock
//! time. Replaying a seed replays the exact fault schedule.
//!
//! The modeled faults are the stereotyped camera-link failures of
//! `rtped_image::corrupt` plus delivery-level ones:
//!
//! - **bit flips / dead row / dead column** — the frame arrives but is
//!   corrupted in place (the detector still runs);
//! - **sensor dropout** — no frame arrives at all;
//! - **truncation** — the frame arrives cut short and the decoder rejects
//!   it (the rejection message is taken from the real PNM decoder);
//! - **delay** — the frame arrives late, eating deadline budget;
//! - **worker panic** — the detection worker thread dies mid-frame
//!   (isolated by `rtped_core::par::try_map`).

use rtped_core::{Rng, SeedRng};
use rtped_image::corrupt::{dead_column, dead_row, flip_bits, truncated_pgm};
use rtped_image::pnm::read_pnm;
use rtped_image::GrayImage;

/// One fault applied to one frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Fault {
    /// Single-event upsets: `bits` random bit flips in the raster.
    BitFlips {
        /// Number of independent upsets.
        bits: usize,
    },
    /// A stuck horizontal readout line at row `y`.
    DeadRow {
        /// Row index (clamped to the frame by the injector).
        y: usize,
    },
    /// A stuck vertical readout line at column `x`.
    DeadColumn {
        /// Column index (clamped to the frame by the injector).
        x: usize,
    },
    /// The sensor delivered nothing this frame period.
    SensorDropout,
    /// The transfer was cut short; the decoder rejects the stream.
    Truncation,
    /// The frame arrived `millis` late.
    Delay {
        /// Added delivery latency in milliseconds.
        millis: f64,
    },
    /// The detection worker for this frame panics mid-scan.
    WorkerPanic,
    /// Soft errors strike the accelerator's internals this frame: bit
    /// flips in the feature memory and MAC accumulators plus pipeline
    /// stall cycles. Unlike the image faults this does not touch the
    /// delivered frame — the dose is injected inside the hardware model
    /// (see `rtped_hw::integrity`), seeded by [`FaultPlan::soft_seed`].
    SoftErrors {
        /// Single-bit upsets in the feature memory (ECC-correctable).
        mem_flips: u32,
        /// Double-bit upsets in the feature memory (detect-only).
        mem_double_flips: u32,
        /// Accumulator upsets in the MACBAR datapath.
        acc_flips: u32,
        /// Extra cycles stolen from one row strip's schedule.
        stall_cycles: u64,
    },
}

impl Fault {
    /// Short stable label for reports (`"bit_flips(8)"`, `"dead_row(12)"`,
    /// ...). Stable across releases: run artifacts diff on it.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            Fault::BitFlips { bits } => format!("bit_flips({bits})"),
            Fault::DeadRow { y } => format!("dead_row({y})"),
            Fault::DeadColumn { x } => format!("dead_column({x})"),
            Fault::SensorDropout => "sensor_dropout".to_string(),
            Fault::Truncation => "truncation".to_string(),
            Fault::Delay { millis } => format!("delay({millis}ms)"),
            Fault::WorkerPanic => "worker_panic".to_string(),
            Fault::SoftErrors {
                mem_flips,
                mem_double_flips,
                acc_flips,
                stall_cycles,
            } => format!(
                "soft_errors(mem={mem_flips},dbl={mem_double_flips},acc={acc_flips},stall={stall_cycles})"
            ),
        }
    }
}

/// What actually reached the detector for one frame.
#[derive(Debug, Clone)]
pub enum Delivery {
    /// A frame arrived (possibly corrupted, late, or doomed to kill its
    /// worker).
    Frame {
        /// The (possibly corrupted) image.
        image: GrayImage,
        /// Faults applied on the way (for the report).
        faults: Vec<Fault>,
        /// Added delivery latency in milliseconds.
        delay_ms: f64,
        /// Whether the detection worker must panic on this frame.
        worker_panic: bool,
    },
    /// Sensor dropout: nothing arrived.
    Dropped,
    /// Truncated transfer: `error` is the decoder's rejection message.
    Truncated {
        /// The PNM decoder's error text for the cut-short stream.
        error: String,
    },
}

/// A seeded, per-frame fault schedule.
///
/// Rates are independent per-frame probabilities in `[0, 1]`; a frame can
/// suffer several corruptions at once. `panic_period` is deterministic
/// rather than probabilistic so tests can place worker kills exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Root seed; equal seeds produce equal schedules.
    pub seed: u64,
    /// Probability of an in-place corruption (bit flips, dead row, or
    /// dead column — chosen uniformly when it strikes).
    pub corruption_rate: f64,
    /// Probability the sensor delivers nothing.
    pub dropout_rate: f64,
    /// Probability the transfer is cut short.
    pub truncation_rate: f64,
    /// Probability the frame arrives late.
    pub delay_rate: f64,
    /// Lateness applied when a delay strikes, in milliseconds.
    pub delay_ms: f64,
    /// Kill the detection worker on every `k`-th frame (frame indices
    /// `k-1, 2k-1, ...`); `None` disables worker kills.
    pub panic_period: Option<usize>,
    /// Probability a soft-error dose strikes the accelerator internals
    /// (memory/accumulator upsets + stall cycles) on a frame.
    pub soft_error_rate: f64,
}

impl FaultPlan {
    /// The empty plan: every frame is delivered clean and on time.
    #[must_use]
    pub fn none() -> Self {
        Self {
            seed: 0,
            corruption_rate: 0.0,
            dropout_rate: 0.0,
            truncation_rate: 0.0,
            delay_rate: 0.0,
            delay_ms: 0.0,
            panic_period: None,
            soft_error_rate: 0.0,
        }
    }

    /// A stress preset: ≥10% of frames corrupted or late, occasional
    /// dropouts, truncations, and a worker kill every 25 frames — the
    /// acceptance scenario for the degradation controller.
    #[must_use]
    pub fn stress(seed: u64) -> Self {
        Self {
            seed,
            corruption_rate: 0.10,
            dropout_rate: 0.04,
            truncation_rate: 0.04,
            delay_rate: 0.12,
            delay_ms: 12.0,
            panic_period: Some(25),
            soft_error_rate: 0.0,
        }
    }

    /// A soft-error campaign: no image faults, only in-accelerator upsets
    /// at the given per-frame `rate` — the acceptance scenario for the
    /// hardware-integrity layer.
    #[must_use]
    pub fn soft_errors(seed: u64, rate: f64) -> Self {
        Self {
            seed,
            soft_error_rate: rate,
            ..Self::none()
        }
    }

    /// Whether this plan can ever inject anything.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.corruption_rate <= 0.0
            && self.dropout_rate <= 0.0
            && self.truncation_rate <= 0.0
            && self.delay_rate <= 0.0
            && self.panic_period.is_none()
            && self.soft_error_rate <= 0.0
    }

    /// The RNG stream for one frame: depends only on the plan seed and
    /// the frame index.
    fn frame_rng(&self, index: usize) -> SeedRng {
        SeedRng::seed_from_u64(self.seed).split(index as u64)
    }

    /// The faults scheduled for frame `index`, in application order.
    /// Pure: calling it twice returns the same list.
    #[must_use]
    pub fn faults_for(&self, index: usize, frame_height: usize, frame_width: usize) -> Vec<Fault> {
        let mut rng = self.frame_rng(index);
        let mut faults = Vec::new();
        // Draw order is fixed; every branch consumes the same draws so a
        // rate change for one fault never shifts another fault's schedule.
        let dropout_draw = rng.next_f64();
        let truncation_draw = rng.next_f64();
        let corruption_draw = rng.next_f64();
        let kind_draw = rng.gen_range(0u32..3);
        let row = if frame_height > 0 {
            rng.gen_range(0..frame_height)
        } else {
            0
        };
        let col = if frame_width > 0 {
            rng.gen_range(0..frame_width)
        } else {
            0
        };
        let bits = rng.gen_range(4usize..=32);
        let delay_draw = rng.next_f64();
        // Soft-error draws are appended after every pre-existing draw so
        // enabling them never shifts the image-fault schedule of a seed.
        let soft_draw = rng.next_f64();
        let soft_mem = rng.gen_range(1u32..=3);
        let soft_double = rng.gen_range(0u32..=1);
        let soft_acc = rng.gen_range(0u32..=1);
        let soft_stall = rng.gen_range(0u64..=400);

        if dropout_draw < self.dropout_rate {
            faults.push(Fault::SensorDropout);
            return faults; // nothing arrived; no further faults apply
        }
        if truncation_draw < self.truncation_rate {
            faults.push(Fault::Truncation);
            return faults; // undecodable; corruption/delay are moot
        }
        if corruption_draw < self.corruption_rate {
            faults.push(match kind_draw {
                0 => Fault::BitFlips { bits },
                1 => Fault::DeadRow { y: row },
                _ => Fault::DeadColumn { x: col },
            });
        }
        if delay_draw < self.delay_rate {
            faults.push(Fault::Delay {
                millis: self.delay_ms,
            });
        }
        if let Some(period) = self.panic_period {
            if period > 0 && (index + 1).is_multiple_of(period) {
                faults.push(Fault::WorkerPanic);
            }
        }
        if soft_draw < self.soft_error_rate {
            faults.push(Fault::SoftErrors {
                mem_flips: soft_mem,
                mem_double_flips: soft_double,
                acc_flips: soft_acc,
                stall_cycles: soft_stall,
            });
        }
        faults
    }

    /// The seed for frame `index`'s in-accelerator soft-error placement.
    /// Drawn from its own split so the dose placement never perturbs the
    /// image-fault or corruption streams.
    #[must_use]
    pub fn soft_seed(&self, index: usize) -> u64 {
        self.frame_rng(index).split(2).next_u64()
    }

    /// Applies the schedule for frame `index` to `frame`, producing what
    /// the detector actually receives.
    #[must_use]
    pub fn deliver(&self, index: usize, frame: &GrayImage) -> Delivery {
        let (width, height) = frame.dimensions();
        let faults = self.faults_for(index, height, width);
        // Corruption draws come from a separate split so adding a fault
        // type never perturbs the corruption bytes of another frame.
        let mut corrupt_rng = self.frame_rng(index).split(1);

        let mut image = None;
        let mut delay_ms = 0.0;
        let mut worker_panic = false;
        for fault in &faults {
            match *fault {
                Fault::SensorDropout => return Delivery::Dropped,
                Fault::Truncation => {
                    // Cut the stream mid-raster and keep the real decoder's
                    // rejection text — the typed error reports exactly what
                    // a file-based pipeline would see.
                    let keep = corrupt_rng.gen_range(0.2..0.8);
                    let bytes = truncated_pgm(frame, keep);
                    let error = match read_pnm(bytes.as_slice()) {
                        Err(e) => e.to_string(),
                        Ok(_) => "truncated stream unexpectedly decoded".to_string(),
                    };
                    return Delivery::Truncated { error };
                }
                Fault::BitFlips { bits } => {
                    let img = image.get_or_insert_with(|| frame.clone());
                    flip_bits(img, bits, &mut corrupt_rng);
                }
                Fault::DeadRow { y } => {
                    let img = image.get_or_insert_with(|| frame.clone());
                    dead_row(img, y);
                }
                Fault::DeadColumn { x } => {
                    let img = image.get_or_insert_with(|| frame.clone());
                    dead_column(img, x);
                }
                Fault::Delay { millis } => delay_ms += millis,
                Fault::WorkerPanic => worker_panic = true,
                // Soft errors live inside the accelerator, not the image;
                // the integrity runtime turns this fault into a dose.
                Fault::SoftErrors { .. } => {}
            }
        }
        Delivery::Frame {
            image: image.unwrap_or_else(|| frame.clone()),
            faults,
            delay_ms,
            worker_panic,
        }
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame() -> GrayImage {
        GrayImage::from_fn(64, 48, |x, y| (x * 5 + y * 3) as u8)
    }

    #[test]
    fn empty_plan_delivers_clean_frames() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        for i in 0..50 {
            match plan.deliver(i, &frame()) {
                Delivery::Frame {
                    image,
                    faults,
                    delay_ms,
                    worker_panic,
                } => {
                    assert_eq!(image, frame());
                    assert!(faults.is_empty());
                    assert_eq!(delay_ms, 0.0);
                    assert!(!worker_panic);
                }
                other => panic!("frame {i}: unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn schedule_is_pure_in_seed_and_index() {
        let plan = FaultPlan::stress(42);
        for i in 0..100 {
            assert_eq!(plan.faults_for(i, 48, 64), plan.faults_for(i, 48, 64));
        }
        let again = FaultPlan::stress(42);
        let differs = FaultPlan::stress(43);
        let schedule = |p: &FaultPlan| {
            (0..100)
                .map(|i| p.faults_for(i, 48, 64))
                .collect::<Vec<_>>()
        };
        assert_eq!(schedule(&plan), schedule(&again));
        assert_ne!(schedule(&plan), schedule(&differs));
    }

    #[test]
    fn stress_plan_hits_at_least_ten_percent_of_frames() {
        let plan = FaultPlan::stress(7);
        let faulted = (0..100)
            .filter(|&i| !plan.faults_for(i, 48, 64).is_empty())
            .count();
        assert!(faulted >= 10, "only {faulted}/100 frames faulted");
    }

    #[test]
    fn panic_period_is_exact() {
        let plan = FaultPlan {
            panic_period: Some(10),
            ..FaultPlan::none()
        };
        for i in 0..40 {
            let has_panic = plan
                .faults_for(i, 48, 64)
                .iter()
                .any(|f| matches!(f, Fault::WorkerPanic));
            assert_eq!(has_panic, (i + 1) % 10 == 0, "frame {i}");
        }
    }

    #[test]
    fn delivery_is_deterministic() {
        let plan = FaultPlan::stress(11);
        for i in 0..60 {
            let a = plan.deliver(i, &frame());
            let b = plan.deliver(i, &frame());
            match (a, b) {
                (
                    Delivery::Frame {
                        image: ia,
                        faults: fa,
                        ..
                    },
                    Delivery::Frame {
                        image: ib,
                        faults: fb,
                        ..
                    },
                ) => {
                    assert_eq!(ia, ib);
                    assert_eq!(fa, fb);
                }
                (Delivery::Dropped, Delivery::Dropped) => {}
                (Delivery::Truncated { error: ea }, Delivery::Truncated { error: eb }) => {
                    assert_eq!(ea, eb)
                }
                (a, b) => panic!("frame {i}: deliveries diverged: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn truncation_error_comes_from_the_real_decoder() {
        let plan = FaultPlan {
            truncation_rate: 1.0,
            ..FaultPlan::none()
        };
        match plan.deliver(0, &frame()) {
            Delivery::Truncated { error } => {
                assert!(error.contains("truncated raster"), "got: {error}")
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn fault_labels_are_stable() {
        assert_eq!(Fault::BitFlips { bits: 8 }.label(), "bit_flips(8)");
        assert_eq!(Fault::SensorDropout.label(), "sensor_dropout");
        assert_eq!(Fault::Delay { millis: 12.0 }.label(), "delay(12ms)");
        assert_eq!(
            Fault::SoftErrors {
                mem_flips: 2,
                mem_double_flips: 1,
                acc_flips: 0,
                stall_cycles: 64,
            }
            .label(),
            "soft_errors(mem=2,dbl=1,acc=0,stall=64)"
        );
    }

    #[test]
    fn soft_error_plan_strikes_only_the_accelerator() {
        let plan = FaultPlan::soft_errors(2017, 1.0);
        assert!(!plan.is_empty());
        for i in 0..20 {
            let faults = plan.faults_for(i, 48, 64);
            assert_eq!(faults.len(), 1, "frame {i}: {faults:?}");
            assert!(matches!(faults[0], Fault::SoftErrors { .. }));
            // The delivered image is untouched.
            match plan.deliver(i, &frame()) {
                Delivery::Frame { image, .. } => assert_eq!(image, frame()),
                other => panic!("frame {i}: unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn enabling_soft_errors_never_shifts_the_image_fault_schedule() {
        let base = FaultPlan::stress(42);
        let with_soft = FaultPlan {
            soft_error_rate: 1.0,
            ..FaultPlan::stress(42)
        };
        for i in 0..100 {
            let image_faults: Vec<Fault> = with_soft
                .faults_for(i, 48, 64)
                .into_iter()
                .filter(|f| !matches!(f, Fault::SoftErrors { .. }))
                .collect();
            assert_eq!(image_faults, base.faults_for(i, 48, 64), "frame {i}");
        }
    }

    #[test]
    fn soft_seed_is_pure_and_distinct_per_frame() {
        let plan = FaultPlan::soft_errors(9, 1.0);
        assert_eq!(plan.soft_seed(3), plan.soft_seed(3));
        assert_ne!(plan.soft_seed(3), plan.soft_seed(4));
        assert_ne!(
            plan.soft_seed(0),
            FaultPlan::soft_errors(10, 1.0).soft_seed(0)
        );
    }
}
