//! Shared per-session state behind every [`Engine`](crate::Engine).
//!
//! Both engine families — the software [`Runtime`](crate::Runtime) and
//! the hardware [`IntegrityRuntime`](crate::IntegrityRuntime) — used to
//! duplicate the same frame-loop scaffolding: fault delivery, controller
//! observation, tracker bookkeeping, and the run log. This module owns
//! that scaffolding once, so `serve_frame` implementations only contain
//! what genuinely differs (how a delivered image becomes detections).

use rtped_detect::detector::Detection;
use rtped_detect::tracker::{Tracker, TrackerParams};
use rtped_image::GrayImage;

use crate::control::{Controller, DegradationPolicy, HealthState, Transition};
use crate::deadline::DeadlineBudget;
use crate::fault::{Delivery, Fault, FaultPlan};
use crate::report::{FrameError, FrameOutcome, FrameRecord, RunReport, TransitionRecord};

/// The outcome of the delivery phase for one frame.
#[derive(Debug)]
pub(crate) enum Admitted {
    /// The frame survived delivery; scan it.
    Frame {
        /// The (possibly corrupted) image.
        image: GrayImage,
        /// Faults injected into this frame.
        faults: Vec<Fault>,
        /// Their report labels.
        fault_labels: Vec<String>,
        /// Injected delivery delay in milliseconds.
        delay_ms: f64,
        /// Whether the plan kills the detection worker on this frame.
        worker_panic: bool,
    },
    /// Delivery failed; the error record is already logged.
    Rejected(FrameRecord),
}

/// Mutable state of one serving session: controller, tracker, run log,
/// and the frame counter. Equal observation sequences reproduce equal
/// session states, whatever the host or thread count.
#[derive(Debug, Clone)]
pub(crate) struct Session {
    pub controller: Controller,
    pub tracker: Tracker,
    records: Vec<FrameRecord>,
    transitions: Vec<TransitionRecord>,
    served: usize,
}

impl Session {
    pub fn new(budget: DeadlineBudget, policy: DegradationPolicy, tracker: TrackerParams) -> Self {
        Self {
            controller: Controller::new(budget, policy),
            tracker: Tracker::new(tracker),
            records: Vec::new(),
            transitions: Vec::new(),
            served: 0,
        }
    }

    /// Health state the next frame will be served under.
    pub fn state(&self) -> HealthState {
        self.controller.state()
    }

    /// Frames served since the last reset.
    pub fn served(&self) -> usize {
        self.served
    }

    /// Claims the next frame index.
    pub fn next_index(&mut self) -> usize {
        let index = self.served;
        self.served += 1;
        index
    }

    /// Runs the delivery phase for frame `index`: applies the plan's
    /// dropout/truncation verdicts (logging the error record and feeding
    /// the controller on rejection) and hands survivors back for the
    /// engine-specific scan.
    pub fn deliver(
        &mut self,
        index: usize,
        state: HealthState,
        frame: &GrayImage,
        plan: &FaultPlan,
    ) -> Admitted {
        match plan.deliver(index, frame) {
            Delivery::Dropped => Admitted::Rejected(self.fail(
                index,
                state,
                vec!["sensor_dropout".into()],
                FrameError::SensorDropout,
            )),
            Delivery::Truncated { error } => Admitted::Rejected(self.fail(
                index,
                state,
                vec!["truncation".into()],
                FrameError::TruncatedFrame(error),
            )),
            Delivery::Frame {
                image,
                faults,
                delay_ms,
                worker_panic,
            } => {
                let fault_labels = faults.iter().map(Fault::label).collect();
                Admitted::Frame {
                    image,
                    faults,
                    fault_labels,
                    delay_ms,
                    worker_panic,
                }
            }
        }
    }

    /// Logs a frame that failed with a typed error, feeding the
    /// controller's error path.
    pub fn fail(
        &mut self,
        index: usize,
        state: HealthState,
        faults: Vec<String>,
        error: FrameError,
    ) -> FrameRecord {
        let transition = self.controller.observe_error();
        self.push(
            FrameRecord {
                index,
                state,
                faults,
                // No compute happened; the frame period was still
                // consumed, but the controller tracks errors separately
                // from latency.
                modeled_latency_ms: 0.0,
                outcome: FrameOutcome::Error(error),
            },
            transition,
        )
    }

    /// Logs a completed frame record plus the transition its observation
    /// triggered (the caller already fed the controller), returning the
    /// record for the caller to hand out.
    pub fn push(&mut self, record: FrameRecord, transition: Option<Transition>) -> FrameRecord {
        if let Some(t) = transition {
            self.transitions.push(TransitionRecord {
                frame: record.index,
                transition: t,
            });
        }
        self.records.push(record.clone());
        record
    }

    /// The tracker's confirmed tracks rendered as detections — the
    /// `SafeFallback` coast output. `window_h` (the detection window
    /// height in pixels) anchors the scale estimate.
    pub fn coasted_tracks(&self, window_h: f64) -> Vec<Detection> {
        self.tracker
            .confirmed()
            .map(|t| Detection {
                bbox: t.bbox,
                score: t.score,
                scale: if window_h > 0.0 {
                    t.bbox.height as f64 / window_h
                } else {
                    1.0
                },
            })
            .collect()
    }

    /// Drains the run log into a report. Controller, tracker, and the
    /// frame counter keep going — a serving session can emit periodic
    /// reports without losing its state; use a reset for a fresh run.
    pub fn take_report(&mut self, seed: u64) -> RunReport {
        RunReport {
            seed,
            frames: std::mem::take(&mut self.records),
            transitions: std::mem::take(&mut self.transitions),
            final_state: self.controller.state(),
            stream: None,
            integrity: None,
        }
    }
}
