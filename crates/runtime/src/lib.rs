//! Fault-tolerant, deadline-aware frame serving for the detection chain.
//!
//! The paper's premise is a *safety* budget: §1 derives the 20–60 m
//! detection envelope from perception-reaction arithmetic, and §4's
//! hardware holds frame latency to ~1% of that budget. This crate gives
//! the software chain the part real driver-assistance deployments add on
//! top — a story for when the budget is threatened. Three pillars:
//!
//! - **Fault injection** ([`fault`]): a seeded [`FaultPlan`] corrupts
//!   frames (bit flips, dead rows/columns), swallows them (sensor
//!   dropout), truncates them, delays them, and kills detection workers
//!   on schedule — every failure mode replayable from one seed.
//! - **Graceful degradation** ([`control`], [`deadline`]): a per-frame
//!   deadline (default 15 ms = 1% of the 1.5 s PRT, overridable via
//!   `RTPED_DEADLINE_MS`) enforced by a `Healthy → Degraded →
//!   SafeFallback` state machine that sheds pyramid levels, coarsens the
//!   scan stride, and finally coasts on the tracker's confirmed tracks —
//!   with hysteresis on recovery. Latency is *modeled* (a deterministic
//!   [`CostModel`]), never wall-clock, so control decisions are
//!   bit-reproducible across hosts and `RTPED_THREADS` values.
//! - **Isolation & reporting** ([`engine`], [`report`]): worker panics
//!   are caught per frame (`rtped_core::par::try_map`) and surface as
//!   typed [`FrameError`]s; every fault, decision, and outcome lands in a
//!   [`RunReport`] serialized canonically via `rtped_core::json`.
//! - **Hardware integrity** ([`integrity`]): [`IntegrityRuntime`] drives
//!   frames through the accelerator's protected datapath (SECDED feature
//!   memory, checked MACBARs, lockstep golden channel, schedule watchdog)
//!   under seeded soft-error doses; integrity faults escalate the same
//!   degradation ladder and the run's ECC/lockstep accounting lands in
//!   [`RunReport::integrity`].
//!
//! # Example
//!
//! ```
//! use rtped_runtime::{Engine, FaultPlan, Runtime, RuntimeConfig};
//! use rtped_detect::detector::{DetectorConfig, FeaturePyramidDetector};
//! use rtped_image::GrayImage;
//! use rtped_svm::LinearSvm;
//!
//! let config = DetectorConfig::two_scale();
//! let model = LinearSvm::new(vec![0.0; config.params.cell_descriptor_len()], -1.0);
//! let detector = FeaturePyramidDetector::new(model, config);
//! let mut runtime = Runtime::with_config(detector, RuntimeConfig::default());
//!
//! let frames: Vec<GrayImage> = (0..8)
//!     .map(|k| GrayImage::from_fn(160, 192, move |x, y| ((x + y * 3 + k * 7) % 256) as u8))
//!     .collect();
//! let report = runtime.run(&frames, &FaultPlan::stress(42));
//! assert_eq!(report.frames.len(), 8);   // every frame accounted for
//! ```

pub mod config;
pub mod control;
pub mod deadline;
pub mod engine;
pub mod fault;
pub mod integrity;
pub mod report;
mod session;

pub use config::{RuntimeConfig, RuntimeConfigBuilder, DATAPATH_ENV, TEMPORAL_ENV};
pub use control::{Controller, DegradationPolicy, HealthState, Transition, TransitionCause};
pub use deadline::{CostModel, DeadlineBudget, DEADLINE_ENV, PRT_FRACTION};
pub use engine::{Engine, Runtime};
pub use fault::{Delivery, Fault, FaultPlan};
pub use integrity::IntegrityRuntime;
pub use report::{
    FrameError, FrameOutcome, FrameRecord, RunReport, TransitionRecord, REPORT_FORMAT_VERSION,
};

/// Serializes unit tests that mutate `RTPED_*` environment variables —
/// cargo runs `#[test]`s on parallel threads, and the process environment
/// is shared state.
#[cfg(test)]
pub(crate) mod test_env {
    use std::sync::{Mutex, MutexGuard, PoisonError};

    static LOCK: Mutex<()> = Mutex::new(());

    pub fn lock() -> MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }
}
