//! The integrity-instrumented frame server: the hardware accelerator's
//! protected datapath wired into the runtime safety monitor.
//!
//! [`IntegrityRuntime::run`] is [`crate::Runtime::run`]'s sibling for the
//! cycle-accurate hardware model: each delivered frame goes through
//! `rtped_hw::HogAccelerator::process_with_integrity` — SECDED-protected
//! feature memory, duplicate-and-compare MACBARs, the float-golden
//! lockstep channel, and the schedule watchdog — under a deterministic
//! [`SoftErrorDose`] drawn from the [`FaultPlan`]'s `soft_errors` fault.
//!
//! Integrity faults (uncorrectable memory words, MACBAR divergence,
//! lockstep mismatch, watchdog events) escalate the degradation
//! controller one rung via `observe_integrity_fault` — the new
//! `integrity_fault` transition cause — and every frame's ECC/lockstep
//! accounting folds into the run-level
//! [`IntegrityReport`](rtped_hw::IntegrityReport) published in
//! [`RunReport::integrity`].
//!
//! The loop is serial and every latency is modeled from cycle counts at
//! the accelerator's clock, so the emitted report is byte-identical
//! across runs, hosts, and `RTPED_THREADS` values.

use rtped_detect::detector::Detection;
use rtped_detect::tracker::{Tracker, TrackerParams};
use rtped_hw::integrity::{IntegrityConfig, IntegrityReport, SoftErrorDose};
use rtped_hw::{AcceleratorConfig, HogAccelerator};
use rtped_image::GrayImage;
use rtped_svm::LinearSvm;

use crate::control::{Controller, DegradationPolicy, HealthState};
use crate::deadline::DeadlineBudget;
use crate::fault::{Delivery, Fault, FaultPlan};
use crate::report::{FrameError, FrameOutcome, FrameRecord, RunReport, TransitionRecord};

/// Serves frames through the integrity-instrumented hardware model under
/// a fault plan, feeding integrity faults into the degradation ladder.
#[derive(Debug, Clone)]
pub struct IntegrityRuntime {
    accelerator: HogAccelerator,
    golden: LinearSvm,
    integrity: IntegrityConfig,
    budget: DeadlineBudget,
    policy: DegradationPolicy,
    tracker: TrackerParams,
}

impl IntegrityRuntime {
    /// Builds the runtime around a float model: the accelerator quantizes
    /// it, and the same float model serves as the lockstep golden
    /// channel. Budget, hysteresis, and tracker use their defaults.
    ///
    /// # Panics
    ///
    /// Panics if the model does not fit the accelerator's window (see
    /// [`HogAccelerator::new`]).
    #[must_use]
    pub fn new(model: LinearSvm, config: AcceleratorConfig, integrity: IntegrityConfig) -> Self {
        Self {
            accelerator: HogAccelerator::new(&model, config),
            golden: model,
            integrity,
            budget: DeadlineBudget::default(),
            policy: DegradationPolicy::default(),
            tracker: TrackerParams::default(),
        }
    }

    /// Replaces the per-frame deadline budget.
    #[must_use]
    pub fn with_budget(mut self, budget: DeadlineBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Replaces the degradation hysteresis policy.
    #[must_use]
    pub fn with_policy(mut self, policy: DegradationPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The integrity configuration in force.
    #[must_use]
    pub fn integrity_config(&self) -> &IntegrityConfig {
        &self.integrity
    }

    /// The wrapped accelerator.
    #[must_use]
    pub fn accelerator(&self) -> &HogAccelerator {
        &self.accelerator
    }

    /// Serves `frames` under `plan`, returning the full run record with
    /// [`RunReport::integrity`] populated.
    ///
    /// Controller, tracker, and the integrity aggregation start fresh, so
    /// equal inputs produce byte-identical reports.
    #[must_use]
    pub fn run(&self, frames: &[GrayImage], plan: &FaultPlan) -> RunReport {
        let mut controller = Controller::new(self.budget, self.policy);
        let mut tracker = Tracker::new(self.tracker.clone());
        let mut integrity = IntegrityReport::new(self.integrity.ecc);
        let mut records = Vec::with_capacity(frames.len());
        let mut transitions = Vec::new();
        let clock = self.accelerator.config().clock;

        for (index, frame) in frames.iter().enumerate() {
            let state = controller.state();
            let (image, faults, delay_ms, worker_panic) = match plan.deliver(index, frame) {
                Delivery::Dropped => {
                    let transition = controller.observe_error();
                    push_transition(&mut transitions, index, transition);
                    records.push(error_record(
                        index,
                        state,
                        vec!["sensor_dropout".into()],
                        FrameError::SensorDropout,
                    ));
                    continue;
                }
                Delivery::Truncated { error } => {
                    let transition = controller.observe_error();
                    push_transition(&mut transitions, index, transition);
                    records.push(error_record(
                        index,
                        state,
                        vec!["truncation".into()],
                        FrameError::TruncatedFrame(error),
                    ));
                    continue;
                }
                Delivery::Frame {
                    image,
                    faults,
                    delay_ms,
                    worker_panic,
                } => (image, faults, delay_ms, worker_panic),
            };
            let mut fault_labels: Vec<String> = faults.iter().map(Fault::label).collect();
            if worker_panic {
                let transition = controller.observe_error();
                push_transition(&mut transitions, index, transition);
                records.push(error_record(
                    index,
                    state,
                    fault_labels,
                    FrameError::WorkerPanic(format!("injected worker panic at frame {index}")),
                ));
                continue;
            }
            let dose = dose_from_faults(&faults, plan, index);

            let (hw_report, frame_integrity) = self.accelerator.process_with_integrity(
                &image,
                &self.golden,
                &self.integrity,
                &dose,
            );
            let latency_ms = clock.millis(hw_report.frame_cycles()) + delay_ms;
            let faults = integrity.record_frame(&frame_integrity);
            for fault in &faults {
                fault_labels.push(format!("integrity:{}", fault.label()));
            }

            tracker.step(&hw_report.detections);
            let transition = if faults.is_empty() {
                controller.observe_ok(latency_ms)
            } else {
                let t = controller.observe_integrity_fault();
                if t.is_some() {
                    integrity.record_escalation();
                }
                t
            };
            push_transition(&mut transitions, index, transition);

            let outcome = if state == HealthState::SafeFallback {
                FrameOutcome::Coasted(coasted_tracks(&tracker))
            } else {
                FrameOutcome::Detections(hw_report.detections)
            };
            records.push(FrameRecord {
                index,
                state,
                faults: fault_labels,
                modeled_latency_ms: latency_ms,
                outcome,
            });
        }

        RunReport {
            seed: plan.seed,
            frames: records,
            transitions,
            final_state: controller.state(),
            stream: None,
            integrity: Some(integrity),
        }
    }
}

/// The soft-error dose for one frame: the plan's `SoftErrors` fault (if
/// scheduled) seeded by [`FaultPlan::soft_seed`].
fn dose_from_faults(faults: &[Fault], plan: &FaultPlan, index: usize) -> SoftErrorDose {
    for fault in faults {
        if let Fault::SoftErrors {
            mem_flips,
            mem_double_flips,
            acc_flips,
            stall_cycles,
        } = *fault
        {
            return SoftErrorDose {
                seed: plan.soft_seed(index),
                mem_flips,
                mem_double_flips,
                acc_flips,
                stall_cycles,
            };
        }
    }
    SoftErrorDose::none()
}

fn push_transition(
    transitions: &mut Vec<TransitionRecord>,
    frame: usize,
    transition: Option<crate::control::Transition>,
) {
    if let Some(t) = transition {
        transitions.push(TransitionRecord {
            frame,
            transition: t,
        });
    }
}

fn error_record(
    index: usize,
    state: HealthState,
    faults: Vec<String>,
    error: FrameError,
) -> FrameRecord {
    FrameRecord {
        index,
        state,
        faults,
        modeled_latency_ms: 0.0,
        outcome: FrameOutcome::Error(error),
    }
}

/// Confirmed tracks rendered as detections — the `SafeFallback` coast
/// output. The 64×128 px detection window anchors the scale estimate.
fn coasted_tracks(tracker: &Tracker) -> Vec<Detection> {
    tracker
        .confirmed()
        .map(|t| Detection {
            bbox: t.bbox,
            score: t.score,
            scale: t.bbox.height as f64 / 128.0,
        })
        .collect()
}
