//! The integrity-instrumented frame server: the hardware accelerator's
//! protected datapath wired into the runtime safety monitor.
//!
//! [`IntegrityRuntime`] is the [`crate::Runtime`]'s sibling for the
//! cycle-accurate hardware model, implementing the same object-safe
//! [`Engine`] trait: each delivered frame goes through
//! `rtped_hw::HogAccelerator::process_with_integrity` — SECDED-protected
//! feature memory, duplicate-and-compare MACBARs, the float-golden
//! lockstep channel, and the schedule watchdog — under a deterministic
//! [`SoftErrorDose`] drawn from the [`FaultPlan`]'s `soft_errors` fault.
//!
//! Integrity faults (uncorrectable memory words, MACBAR divergence,
//! lockstep mismatch, watchdog events) escalate the degradation
//! controller one rung via `observe_integrity_fault` — the
//! `integrity_fault` transition cause — and every frame's ECC/lockstep
//! accounting folds into the run-level
//! [`IntegrityReport`](rtped_hw::IntegrityReport) published in
//! [`RunReport::integrity`].
//!
//! The loop is serial and every latency is modeled from cycle counts at
//! the accelerator's clock, so the emitted report is byte-identical
//! across runs, hosts, and `RTPED_THREADS` values.

use rtped_hw::integrity::{IntegrityConfig, IntegrityReport, SoftErrorDose};
use rtped_hw::{AcceleratorConfig, HogAccelerator, ShardConfig, ShardFleet};
use rtped_image::GrayImage;
use rtped_svm::LinearSvm;

use crate::config::RuntimeConfig;
use crate::control::{DegradationPolicy, HealthState};
use crate::deadline::DeadlineBudget;
use crate::engine::Engine;
use crate::fault::{Fault, FaultPlan};
use crate::report::{FrameError, FrameOutcome, FrameRecord, RunReport};
use crate::session::{Admitted, Session};

/// The 64×128 px detection window height anchoring coasted-track scale
/// estimates (the accelerator's window is fixed).
const WINDOW_HEIGHT_PX: f64 = 128.0;

/// Serves frames through the integrity-instrumented hardware model under
/// a fault plan, feeding integrity faults into the degradation ladder.
#[derive(Debug, Clone)]
pub struct IntegrityRuntime {
    accelerator: HogAccelerator,
    golden: LinearSvm,
    integrity: IntegrityConfig,
    budget: DeadlineBudget,
    policy: DegradationPolicy,
    tracker: rtped_detect::tracker::TrackerParams,
    session: Session,
    report: IntegrityReport,
    fleet: Option<ShardFleet>,
}

impl IntegrityRuntime {
    /// Builds the runtime around a float model: the accelerator quantizes
    /// it, and the same float model serves as the lockstep golden
    /// channel. Budget, hysteresis, and tracker use their
    /// (environment-free) defaults.
    ///
    /// # Panics
    ///
    /// Panics if the model does not fit the accelerator's window (see
    /// [`HogAccelerator::new`]).
    #[must_use]
    pub fn new(model: LinearSvm, config: AcceleratorConfig, integrity: IntegrityConfig) -> Self {
        let budget = DeadlineBudget::default();
        let policy = DegradationPolicy::default();
        let tracker = rtped_detect::tracker::TrackerParams::default();
        let session = Session::new(budget, policy, tracker.clone());
        let report = IntegrityReport::new(integrity.ecc);
        Self {
            accelerator: HogAccelerator::new(&model, config),
            golden: model,
            integrity,
            budget,
            policy,
            tracker,
            session,
            report,
            fleet: None,
        }
    }

    /// Bands every frame across a fleet of shard instances with
    /// quarantine and bit-identical failover
    /// (`HogAccelerator::process_with_integrity_sharded`). The
    /// accelerator is rebuilt at the fleet's per-shard geometry; resets
    /// the session.
    #[must_use]
    pub fn with_sharding(mut self, config: ShardConfig) -> Self {
        let mut accel_config = self.accelerator.config().clone();
        accel_config.geometry = config.geometry;
        self.accelerator = HogAccelerator::new(&self.golden, accel_config);
        self.fleet = Some(ShardFleet::new(&config));
        self.reset();
        self
    }

    /// Replaces the per-frame deadline budget (resets the session).
    #[must_use]
    pub fn with_budget(mut self, budget: DeadlineBudget) -> Self {
        self.budget = budget;
        self.reset();
        self
    }

    /// Replaces the degradation hysteresis policy (resets the session).
    #[must_use]
    pub fn with_policy(mut self, policy: DegradationPolicy) -> Self {
        self.policy = policy;
        self.reset();
        self
    }

    /// Adopts budget, hysteresis, tracker, and ECC mode from a validated
    /// [`RuntimeConfig`] — the daemon's single config path (resets the
    /// session).
    #[must_use]
    pub fn with_runtime_config(mut self, config: &RuntimeConfig) -> Self {
        self.budget = config.budget;
        self.policy = config.policy;
        self.tracker = config.tracker.clone();
        self.integrity.ecc = config.ecc;
        self.reset();
        self
    }

    /// The integrity configuration in force.
    #[must_use]
    pub fn integrity_config(&self) -> &IntegrityConfig {
        &self.integrity
    }

    /// The wrapped accelerator.
    #[must_use]
    pub fn accelerator(&self) -> &HogAccelerator {
        &self.accelerator
    }

    /// The shard fleet, when this runtime serves sharded.
    #[must_use]
    pub fn fleet(&self) -> Option<&ShardFleet> {
        self.fleet.as_ref()
    }
}

impl Engine for IntegrityRuntime {
    fn serve_frame(&mut self, frame: &GrayImage, plan: &FaultPlan) -> FrameRecord {
        let index = self.session.next_index();
        let state = self.session.state();
        let (image, faults, mut fault_labels, delay_ms, worker_panic) =
            match self.session.deliver(index, state, frame, plan) {
                Admitted::Rejected(record) => return record,
                Admitted::Frame {
                    image,
                    faults,
                    fault_labels,
                    delay_ms,
                    worker_panic,
                } => (image, faults, fault_labels, delay_ms, worker_panic),
            };
        if worker_panic {
            // The hardware path has no software worker to kill; the
            // scheduled panic surfaces as the same typed error the
            // software engine reports, keeping plans portable.
            return self.session.fail(
                index,
                state,
                fault_labels,
                FrameError::WorkerPanic(format!("injected worker panic at frame {index}")),
            );
        }
        let dose = dose_from_faults(&faults, plan, index);

        let (hw_report, frame_integrity) = match self.fleet.as_mut() {
            Some(fleet) => self.accelerator.process_with_integrity_sharded(
                &image,
                &self.golden,
                &self.integrity,
                &dose,
                fleet,
            ),
            None => self.accelerator.process_with_integrity(
                &image,
                &self.golden,
                &self.integrity,
                &dose,
            ),
        };
        let clock = self.accelerator.config().clock;
        let latency_ms = clock.millis(hw_report.frame_cycles()) + delay_ms;
        let integrity_faults = self.report.record_frame(&frame_integrity);
        for fault in &integrity_faults {
            fault_labels.push(format!("integrity:{}", fault.label()));
        }

        self.session.tracker.step(&hw_report.detections);
        let transition = if integrity_faults.is_empty() {
            self.session.controller.observe_ok(latency_ms)
        } else {
            let t = self.session.controller.observe_integrity_fault();
            if t.is_some() {
                self.report.record_escalation();
            }
            t
        };

        let outcome = if state == HealthState::SafeFallback {
            FrameOutcome::Coasted(self.session.coasted_tracks(WINDOW_HEIGHT_PX))
        } else {
            FrameOutcome::Detections(hw_report.detections)
        };
        self.session.push(
            FrameRecord {
                index,
                state,
                faults: fault_labels,
                modeled_latency_ms: latency_ms,
                outcome,
            },
            transition,
        )
    }

    fn state(&self) -> HealthState {
        self.session.state()
    }

    fn frames_served(&self) -> usize {
        self.session.served()
    }

    fn budget(&self) -> DeadlineBudget {
        self.budget
    }

    fn kind(&self) -> &'static str {
        "integrity"
    }

    fn reset(&mut self) {
        self.session = Session::new(self.budget, self.policy, self.tracker.clone());
        self.report = IntegrityReport::new(self.integrity.ecc);
        if let Some(fleet) = self.fleet.as_mut() {
            fleet.reset();
        }
    }

    fn take_report(&mut self, seed: u64) -> RunReport {
        let mut report = self.session.take_report(seed);
        report.integrity = Some(std::mem::replace(
            &mut self.report,
            IntegrityReport::new(self.integrity.ecc),
        ));
        report
    }
}

/// The soft-error dose for one frame: the plan's `SoftErrors` fault (if
/// scheduled) seeded by [`FaultPlan::soft_seed`].
fn dose_from_faults(faults: &[Fault], plan: &FaultPlan, index: usize) -> SoftErrorDose {
    for fault in faults {
        if let Fault::SoftErrors {
            mem_flips,
            mem_double_flips,
            acc_flips,
            stall_cycles,
        } = *fault
        {
            return SoftErrorDose {
                seed: plan.soft_seed(index),
                mem_flips,
                mem_double_flips,
                acc_flips,
                stall_cycles,
            };
        }
    }
    SoftErrorDose::none()
}
