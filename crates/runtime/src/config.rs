//! The single validated configuration path for every engine family.
//!
//! PRs 3–5 steered the runtime through three loose environment knobs —
//! `RTPED_DEADLINE_MS`, `RTPED_THREADS`, `RTPED_ECC` — each read at a
//! different layer. This module folds them into one place, mirroring
//! `DetectorBuilder` from the detect crate:
//!
//! - [`RuntimeConfig::default`] is **environment-free**: pure DAS-derived
//!   defaults (15 ms budget, default hysteresis/cost model/tracker,
//!   ambient worker pool, SECDED ECC), so library behavior never depends
//!   on ambient process state unless a caller asks for it.
//! - [`RuntimeConfigBuilder`] validates every field up front and returns
//!   [`Error::InvalidInput`] instead of panicking.
//! - [`RuntimeConfigBuilder::env_overrides`] resolves the three `RTPED_*`
//!   variables **once**, through [`rtped_core::env`]'s warn-once parsing,
//!   at construction time — library hot paths never read the
//!   environment. [`RuntimeConfig::from_env`] is the one-call version
//!   binaries use.

use rtped_core::Error;
use rtped_detect::das::DasParams;
use rtped_detect::tracker::TrackerParams;
use rtped_detect::Datapath;
use rtped_hw::integrity::ECC_ENV;
use rtped_hw::EccMode;

use crate::control::DegradationPolicy;
use crate::deadline::{CostModel, DeadlineBudget, DEADLINE_ENV};

/// Environment variable selecting the scoring datapath (`"f32"`/`"i16"`).
pub const DATAPATH_ENV: &str = "RTPED_DATAPATH";

/// Environment variable enabling the temporal incremental pyramid
/// (`"true"`/`"false"`).
pub const TEMPORAL_ENV: &str = "RTPED_TEMPORAL";

/// Everything the engine needs besides the detector.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Per-frame deadline.
    pub budget: DeadlineBudget,
    /// Escalation/recovery hysteresis.
    pub policy: DegradationPolicy,
    /// The deterministic latency model.
    pub cost_model: CostModel,
    /// Tracker used for `SafeFallback` coasting.
    pub tracker: TrackerParams,
    /// Worker-pool size for serving layers built on this config; `None`
    /// defers to the ambient [`rtped_core::par::threads`] resolution.
    pub threads: Option<usize>,
    /// ECC mode for integrity-instrumented engines.
    pub ecc: EccMode,
    /// Scoring arithmetic for detectors built on this config
    /// ([`Datapath::F32`] is the golden reference; [`Datapath::I16`]
    /// mirrors the fixed-point hardware and is ~4× faster).
    pub datapath: Datapath,
    /// Enables the temporal incremental pyramid on feature-pyramid
    /// detectors built on this config (video streams; bit-identical
    /// output, only changed rows recomputed).
    pub temporal: bool,
}

impl RuntimeConfig {
    /// A fresh builder seeded with the DAS-derived defaults.
    #[must_use]
    pub fn builder() -> RuntimeConfigBuilder {
        RuntimeConfigBuilder::new()
    }

    /// The defaults with `RTPED_DEADLINE_MS`, `RTPED_THREADS`, and
    /// `RTPED_ECC` applied as overrides — resolved exactly once, here.
    /// Malformed values warn on stderr and keep the defaults, so this
    /// constructor cannot fail.
    #[must_use]
    pub fn from_env() -> Self {
        Self::builder()
            .env_overrides()
            .build()
            // Defaults are valid and env_overrides only installs values
            // it validated, so this arm is unreachable; the fallback
            // keeps the signature infallible without a panic path.
            .unwrap_or_else(|_| Self::default())
    }

    /// The worker-pool size in force: the configured override, or the
    /// ambient [`rtped_core::par::threads`] resolution.
    #[must_use]
    pub fn effective_threads(&self) -> usize {
        self.threads.unwrap_or_else(rtped_core::par::threads)
    }
}

impl Default for RuntimeConfig {
    /// Environment-free DAS defaults: 15 ms budget (1% of the 1.5 s
    /// perception-reaction time), default hysteresis, default cost model
    /// and tracker, ambient worker pool, SECDED ECC.
    fn default() -> Self {
        Self {
            budget: DeadlineBudget::from_das(&DasParams::default()),
            policy: DegradationPolicy::default(),
            cost_model: CostModel::default(),
            tracker: TrackerParams::default(),
            threads: None,
            ecc: EccMode::Secded,
            datapath: Datapath::F32,
            temporal: false,
        }
    }
}

/// Validating builder for [`RuntimeConfig`] — the one config path.
#[derive(Debug, Clone)]
pub struct RuntimeConfigBuilder {
    deadline_ms: f64,
    policy: DegradationPolicy,
    cost_model: CostModel,
    tracker: TrackerParams,
    threads: Option<usize>,
    ecc: EccMode,
    datapath: Datapath,
    temporal: bool,
}

impl RuntimeConfigBuilder {
    fn new() -> Self {
        let defaults = RuntimeConfig::default();
        Self {
            deadline_ms: defaults.budget.frame_budget_ms,
            policy: defaults.policy,
            cost_model: defaults.cost_model,
            tracker: defaults.tracker,
            threads: defaults.threads,
            ecc: defaults.ecc,
            datapath: defaults.datapath,
            temporal: defaults.temporal,
        }
    }

    /// Sets the per-frame deadline in milliseconds (validated at
    /// [`RuntimeConfigBuilder::build`]).
    #[must_use]
    pub fn deadline_ms(mut self, ms: f64) -> Self {
        self.deadline_ms = ms;
        self
    }

    /// Sets the deadline from an existing budget.
    #[must_use]
    pub fn budget(mut self, budget: DeadlineBudget) -> Self {
        self.deadline_ms = budget.frame_budget_ms;
        self
    }

    /// Sets the escalation/recovery hysteresis.
    #[must_use]
    pub fn policy(mut self, policy: DegradationPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the deterministic latency model.
    #[must_use]
    pub fn cost_model(mut self, cost_model: CostModel) -> Self {
        self.cost_model = cost_model;
        self
    }

    /// Sets the coasting tracker's parameters.
    #[must_use]
    pub fn tracker(mut self, tracker: TrackerParams) -> Self {
        self.tracker = tracker;
        self
    }

    /// Pins the worker-pool size for serving layers.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Sets the ECC mode for integrity-instrumented engines.
    #[must_use]
    pub fn ecc(mut self, ecc: EccMode) -> Self {
        self.ecc = ecc;
        self
    }

    /// Selects the scoring datapath for detectors built on this config.
    #[must_use]
    pub fn datapath(mut self, datapath: Datapath) -> Self {
        self.datapath = datapath;
        self
    }

    /// Enables or disables the temporal incremental pyramid.
    #[must_use]
    pub fn temporal(mut self, temporal: bool) -> Self {
        self.temporal = temporal;
        self
    }

    /// Applies `RTPED_DEADLINE_MS`, `RTPED_THREADS`, `RTPED_ECC`,
    /// `RTPED_DATAPATH`, and `RTPED_TEMPORAL` as
    /// overrides — the *only* place the runtime reads the environment.
    /// Each variable goes through [`rtped_core::env::typed`]; a malformed
    /// or out-of-range value warns once on stderr and keeps the builder's
    /// current setting, so a typo degrades loudly, never silently.
    #[must_use]
    pub fn env_overrides(mut self) -> Self {
        use rtped_core::env::{typed, warn_once, EnvValue};

        match typed::<f64>(DEADLINE_ENV) {
            EnvValue::Valid { value, .. } if value.is_finite() && value > 0.0 => {
                self.deadline_ms = value;
            }
            EnvValue::Valid { raw, .. } | EnvValue::Invalid { raw } => {
                warn_once(DEADLINE_ENV, &raw, &format!("{} ms", self.deadline_ms));
            }
            EnvValue::Unset => {}
        }

        match typed::<usize>(rtped_core::par::THREADS_ENV) {
            EnvValue::Valid { value, .. } if value >= 1 => {
                self.threads = Some(value.min(rtped_core::par::MAX_THREADS));
            }
            EnvValue::Valid { raw, .. } | EnvValue::Invalid { raw } => {
                warn_once(rtped_core::par::THREADS_ENV, &raw, "ambient pool size");
            }
            EnvValue::Unset => {}
        }

        match typed::<EccMode>(ECC_ENV) {
            EnvValue::Valid { value, .. } => self.ecc = value,
            EnvValue::Invalid { raw } => {
                warn_once(ECC_ENV, &raw, self.ecc.label());
            }
            EnvValue::Unset => {}
        }

        match typed::<Datapath>(DATAPATH_ENV) {
            EnvValue::Valid { value, .. } => self.datapath = value,
            EnvValue::Invalid { raw } => {
                warn_once(DATAPATH_ENV, &raw, self.datapath.as_str());
            }
            EnvValue::Unset => {}
        }

        match typed::<bool>(TEMPORAL_ENV) {
            EnvValue::Valid { value, .. } => self.temporal = value,
            EnvValue::Invalid { raw } => {
                warn_once(
                    TEMPORAL_ENV,
                    &raw,
                    if self.temporal { "true" } else { "false" },
                );
            }
            EnvValue::Unset => {}
        }

        self
    }

    /// Validates and assembles the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] when the deadline is not finite
    /// and positive, the thread override is zero or above
    /// [`rtped_core::par::MAX_THREADS`], the hysteresis policy is
    /// degenerate (zero streaks, margin outside `(0, 1]`), or a cost rate
    /// is negative or non-finite.
    pub fn build(self) -> Result<RuntimeConfig, Error> {
        if !(self.deadline_ms.is_finite() && self.deadline_ms > 0.0) {
            return Err(Error::invalid_input(format!(
                "deadline must be finite and positive, got {} ms",
                self.deadline_ms
            )));
        }
        if let Some(threads) = self.threads {
            if threads == 0 || threads > rtped_core::par::MAX_THREADS {
                return Err(Error::invalid_input(format!(
                    "threads must be in 1..={}, got {threads}",
                    rtped_core::par::MAX_THREADS
                )));
            }
        }
        if self.policy.recover_after == 0 {
            return Err(Error::invalid_input("recover_after must be at least 1"));
        }
        if !(self.policy.recover_margin > 0.0 && self.policy.recover_margin <= 1.0) {
            return Err(Error::invalid_input(format!(
                "recover_margin must be in (0, 1], got {}",
                self.policy.recover_margin
            )));
        }
        if self.policy.max_consecutive_errors == 0 {
            return Err(Error::invalid_input(
                "max_consecutive_errors must be at least 1",
            ));
        }
        for (name, rate) in [
            (
                "extract_ms_per_megapixel",
                self.cost_model.extract_ms_per_megapixel,
            ),
            (
                "scan_ms_per_kilowindow",
                self.cost_model.scan_ms_per_kilowindow,
            ),
        ] {
            if !(rate.is_finite() && rate >= 0.0) {
                return Err(Error::invalid_input(format!(
                    "cost rate {name} must be finite and non-negative, got {rate}"
                )));
            }
        }
        Ok(RuntimeConfig {
            budget: DeadlineBudget::from_ms(self.deadline_ms),
            policy: self.policy,
            cost_model: self.cost_model,
            tracker: self.tracker,
            threads: self.threads,
            ecc: self.ecc,
            datapath: self.datapath,
            temporal: self.temporal,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_environment_free_das_derivation() {
        let config = RuntimeConfig::default();
        assert!((config.budget.frame_budget_ms - 15.0).abs() < 1e-12);
        assert_eq!(config.threads, None);
        assert_eq!(config.ecc, EccMode::Secded);
        assert_eq!(config.datapath, Datapath::F32);
        assert!(!config.temporal);
    }

    #[test]
    fn builder_applies_every_knob() {
        let config = RuntimeConfig::builder()
            .deadline_ms(8.0)
            .threads(4)
            .ecc(EccMode::Off)
            .datapath(Datapath::I16)
            .temporal(true)
            .policy(DegradationPolicy {
                recover_after: 2,
                recover_margin: 0.5,
                max_consecutive_errors: 7,
            })
            .build()
            .unwrap();
        assert!((config.budget.frame_budget_ms - 8.0).abs() < 1e-12);
        assert_eq!(config.threads, Some(4));
        assert_eq!(config.effective_threads(), 4);
        assert_eq!(config.ecc, EccMode::Off);
        assert_eq!(config.policy.recover_after, 2);
        assert_eq!(config.datapath, Datapath::I16);
        assert!(config.temporal);
    }

    #[test]
    fn invalid_settings_are_typed_errors_not_panics() {
        for (label, builder) in [
            ("deadline", RuntimeConfig::builder().deadline_ms(0.0)),
            (
                "deadline-nan",
                RuntimeConfig::builder().deadline_ms(f64::NAN),
            ),
            ("threads", RuntimeConfig::builder().threads(0)),
            (
                "threads-high",
                RuntimeConfig::builder().threads(rtped_core::par::MAX_THREADS + 1),
            ),
            (
                "margin",
                RuntimeConfig::builder().policy(DegradationPolicy {
                    recover_margin: 1.5,
                    ..DegradationPolicy::default()
                }),
            ),
            (
                "cost",
                RuntimeConfig::builder().cost_model(CostModel {
                    extract_ms_per_megapixel: -1.0,
                    ..CostModel::default()
                }),
            ),
        ] {
            let err = builder.build().expect_err(label);
            assert!(matches!(err, Error::InvalidInput(_)), "{label}: {err}");
        }
    }

    #[test]
    fn env_overrides_resolve_once_at_construction() {
        // Serialized env mutation: RTPED_DEADLINE_MS is shared with the
        // deadline module's test, so both take the crate-wide lock.
        let _guard = crate::test_env::lock();
        std::env::set_var(DEADLINE_ENV, "7.5");
        std::env::set_var(rtped_core::par::THREADS_ENV, "3");
        std::env::set_var(ECC_ENV, "off");
        std::env::set_var(DATAPATH_ENV, "i16");
        std::env::set_var(TEMPORAL_ENV, "true");
        let config = RuntimeConfig::from_env();
        assert!((config.budget.frame_budget_ms - 7.5).abs() < 1e-12);
        assert_eq!(config.threads, Some(3));
        assert_eq!(config.ecc, EccMode::Off);
        assert_eq!(config.datapath, Datapath::I16);
        assert!(config.temporal);

        // Malformed values keep the defaults (warn-once on stderr).
        std::env::set_var(DEADLINE_ENV, "-2");
        std::env::set_var(rtped_core::par::THREADS_ENV, "many");
        std::env::set_var(ECC_ENV, "tmr");
        std::env::set_var(DATAPATH_ENV, "i8");
        std::env::set_var(TEMPORAL_ENV, "maybe");
        let fallback = RuntimeConfig::from_env();
        assert!((fallback.budget.frame_budget_ms - 15.0).abs() < 1e-12);
        assert_eq!(fallback.threads, None);
        assert_eq!(fallback.ecc, EccMode::Secded);
        assert_eq!(fallback.datapath, Datapath::F32);
        assert!(!fallback.temporal);

        std::env::remove_var(DEADLINE_ENV);
        std::env::remove_var(rtped_core::par::THREADS_ENV);
        std::env::remove_var(ECC_ENV);
        std::env::remove_var(DATAPATH_ENV);
        std::env::remove_var(TEMPORAL_ENV);

        // With the environment clean, from_env is exactly the defaults.
        let clean = RuntimeConfig::from_env();
        assert!((clean.budget.frame_budget_ms - 15.0).abs() < 1e-12);
        assert_eq!(clean.threads, None);
    }
}
