//! The `Healthy → Degraded → SafeFallback` state machine with hysteresis.
//!
//! The controller watches one signal per frame — modeled latency against
//! the deadline budget, or a typed frame error — and walks a fixed
//! shedding ladder:
//!
//! | State          | Scan profile                            |
//! |----------------|-----------------------------------------|
//! | `Healthy`      | full configured scan                    |
//! | `Degraded(1)`  | at most 2 pyramid scales                |
//! | `Degraded(2)`  | native scale only                       |
//! | `Degraded(3)`  | native scale only, stride doubled       |
//! | `SafeFallback` | coast on confirmed tracks (probe scan)  |
//!
//! Escalation is immediate (one step per bad frame; an error burst jumps
//! straight to `SafeFallback`). Recovery is hysteretic: the controller
//! steps back one rung only after [`DegradationPolicy::recover_after`]
//! consecutive frames land under [`DegradationPolicy::recover_margin`] ×
//! budget, so a workload oscillating near the deadline settles at a
//! stable rung instead of flapping.

use std::fmt;

use rtped_detect::detector::ScanProfile;

use crate::deadline::DeadlineBudget;

/// Operating state of the runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthState {
    /// Full configured scan.
    Healthy,
    /// Shedding rung 1..=3 (higher = more shed).
    Degraded(u8),
    /// Coasting on the tracker's confirmed tracks.
    SafeFallback,
}

impl HealthState {
    /// Severity rank: 0 (healthy) to 4 (safe fallback).
    #[must_use]
    pub fn severity(&self) -> u8 {
        match self {
            HealthState::Healthy => 0,
            HealthState::Degraded(level) => *level,
            HealthState::SafeFallback => 4,
        }
    }

    /// The scan this state still performs. `SafeFallback` returns the
    /// deepest shed profile — the engine uses it as a cheap *probe* scan
    /// that feeds the tracker and gives the controller a recovery signal
    /// while the published output coasts on confirmed tracks.
    #[must_use]
    pub fn profile(&self) -> ScanProfile {
        match self {
            HealthState::Healthy => ScanProfile::full(),
            HealthState::Degraded(1) => ScanProfile {
                max_scales: Some(2),
                stride_factor: 1,
            },
            HealthState::Degraded(2) => ScanProfile {
                max_scales: Some(1),
                stride_factor: 1,
            },
            _ => ScanProfile {
                max_scales: Some(1),
                stride_factor: 2,
            },
        }
    }

    /// One rung worse; saturates at `SafeFallback`.
    #[must_use]
    pub fn escalated(&self) -> HealthState {
        match self {
            HealthState::Healthy => HealthState::Degraded(1),
            HealthState::Degraded(level) if *level < 3 => HealthState::Degraded(level + 1),
            _ => HealthState::SafeFallback,
        }
    }

    /// One rung better; saturates at `Healthy`.
    #[must_use]
    pub fn recovered(&self) -> HealthState {
        match self {
            HealthState::SafeFallback => HealthState::Degraded(3),
            HealthState::Degraded(level) if *level > 1 => HealthState::Degraded(level - 1),
            HealthState::Degraded(_) => HealthState::Healthy,
            HealthState::Healthy => HealthState::Healthy,
        }
    }

    /// Stable label for reports.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            HealthState::Healthy => "healthy".to_string(),
            HealthState::Degraded(level) => format!("degraded_{level}"),
            HealthState::SafeFallback => "safe_fallback".to_string(),
        }
    }

    /// Inverse of [`HealthState::label`], for report decoding.
    ///
    /// # Errors
    ///
    /// Returns [`rtped_core::Error::Format`] on an unknown label.
    pub fn parse_label(label: &str) -> Result<Self, rtped_core::Error> {
        match label {
            "healthy" => Ok(HealthState::Healthy),
            "degraded_1" => Ok(HealthState::Degraded(1)),
            "degraded_2" => Ok(HealthState::Degraded(2)),
            "degraded_3" => Ok(HealthState::Degraded(3)),
            "safe_fallback" => Ok(HealthState::SafeFallback),
            other => Err(rtped_core::Error::format(format!(
                "unknown health state \"{other}\""
            ))),
        }
    }
}

impl fmt::Display for HealthState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// Why the controller moved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransitionCause {
    /// Modeled latency exceeded the frame budget.
    DeadlineMiss,
    /// A frame produced a typed error.
    FrameError,
    /// Consecutive errors reached the burst threshold.
    ErrorBurst,
    /// The hardware-integrity layer raised a fault (uncorrectable memory
    /// error, MACBAR divergence, lockstep mismatch, or watchdog event).
    IntegrityFault,
    /// Enough consecutive good frames under the recovery margin.
    Recovered,
}

impl TransitionCause {
    /// Stable label for reports.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            TransitionCause::DeadlineMiss => "deadline_miss",
            TransitionCause::FrameError => "frame_error",
            TransitionCause::ErrorBurst => "error_burst",
            TransitionCause::IntegrityFault => "integrity_fault",
            TransitionCause::Recovered => "recovered",
        }
    }

    /// Inverse of [`TransitionCause::label`], for report decoding.
    ///
    /// # Errors
    ///
    /// Returns [`rtped_core::Error::Format`] on an unknown label.
    pub fn parse_label(label: &str) -> Result<Self, rtped_core::Error> {
        match label {
            "deadline_miss" => Ok(TransitionCause::DeadlineMiss),
            "frame_error" => Ok(TransitionCause::FrameError),
            "error_burst" => Ok(TransitionCause::ErrorBurst),
            "integrity_fault" => Ok(TransitionCause::IntegrityFault),
            "recovered" => Ok(TransitionCause::Recovered),
            other => Err(rtped_core::Error::format(format!(
                "unknown transition cause \"{other}\""
            ))),
        }
    }
}

/// One state change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    /// State before.
    pub from: HealthState,
    /// State after.
    pub to: HealthState,
    /// Why.
    pub cause: TransitionCause,
}

/// Hysteresis knobs for the controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradationPolicy {
    /// Consecutive good frames required before stepping back one rung.
    pub recover_after: usize,
    /// A frame counts toward recovery only if its latency is below this
    /// fraction of the budget (margin < 1 prevents flapping at the edge).
    pub recover_margin: f64,
    /// Consecutive frame errors that jump the state to `SafeFallback`.
    pub max_consecutive_errors: usize,
}

impl Default for DegradationPolicy {
    fn default() -> Self {
        Self {
            recover_after: 5,
            recover_margin: 0.7,
            max_consecutive_errors: 3,
        }
    }
}

/// The per-run degradation controller. Purely sequential and free of
/// wall-clock reads: feeding it the same observation sequence reproduces
/// the same transition sequence, whatever the host or thread count.
#[derive(Debug, Clone)]
pub struct Controller {
    state: HealthState,
    budget: DeadlineBudget,
    policy: DegradationPolicy,
    good_streak: usize,
    error_streak: usize,
}

impl Controller {
    /// A fresh controller starting `Healthy`.
    #[must_use]
    pub fn new(budget: DeadlineBudget, policy: DegradationPolicy) -> Self {
        Self {
            state: HealthState::Healthy,
            budget,
            policy,
            good_streak: 0,
            error_streak: 0,
        }
    }

    /// The current state.
    #[must_use]
    pub fn state(&self) -> HealthState {
        self.state
    }

    /// The budget in force.
    #[must_use]
    pub fn budget(&self) -> DeadlineBudget {
        self.budget
    }

    /// Observes a frame that produced output with the given modeled
    /// latency. Returns the transition it triggered, if any.
    pub fn observe_ok(&mut self, latency_ms: f64) -> Option<Transition> {
        self.error_streak = 0;
        if latency_ms > self.budget.frame_budget_ms {
            self.good_streak = 0;
            return self.escalate(TransitionCause::DeadlineMiss);
        }
        if latency_ms <= self.budget.frame_budget_ms * self.policy.recover_margin {
            self.good_streak += 1;
        } else {
            // Within budget but above the margin: hold position.
            self.good_streak = 0;
        }
        if self.good_streak >= self.policy.recover_after && self.state != HealthState::Healthy {
            self.good_streak = 0;
            let from = self.state;
            self.state = self.state.recovered();
            return Some(Transition {
                from,
                to: self.state,
                cause: TransitionCause::Recovered,
            });
        }
        None
    }

    /// Observes a frame that produced a typed error. Returns the
    /// transition it triggered, if any.
    pub fn observe_error(&mut self) -> Option<Transition> {
        self.good_streak = 0;
        self.error_streak += 1;
        if self.error_streak >= self.policy.max_consecutive_errors {
            self.error_streak = 0;
            if self.state == HealthState::SafeFallback {
                return None;
            }
            let from = self.state;
            self.state = HealthState::SafeFallback;
            return Some(Transition {
                from,
                to: self.state,
                cause: TransitionCause::ErrorBurst,
            });
        }
        self.escalate(TransitionCause::FrameError)
    }

    /// Observes a hardware-integrity fault on a frame that otherwise
    /// produced output. Escalates one rung immediately. Deliberately does
    /// not feed the error-burst counter: integrity faults come from the
    /// datapath, not the frame source, and the burst jump is reserved for
    /// delivery failures.
    pub fn observe_integrity_fault(&mut self) -> Option<Transition> {
        self.good_streak = 0;
        self.escalate(TransitionCause::IntegrityFault)
    }

    fn escalate(&mut self, cause: TransitionCause) -> Option<Transition> {
        let from = self.state;
        let to = self.state.escalated();
        if to == from {
            return None;
        }
        self.state = to;
        Some(Transition { from, to, cause })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller() -> Controller {
        Controller::new(DeadlineBudget::from_ms(15.0), DegradationPolicy::default())
    }

    #[test]
    fn ladder_escalates_and_saturates() {
        let mut s = HealthState::Healthy;
        let expect = [
            HealthState::Degraded(1),
            HealthState::Degraded(2),
            HealthState::Degraded(3),
            HealthState::SafeFallback,
            HealthState::SafeFallback,
        ];
        for e in expect {
            s = s.escalated();
            assert_eq!(s, e);
        }
        for e in [
            HealthState::Degraded(3),
            HealthState::Degraded(2),
            HealthState::Degraded(1),
            HealthState::Healthy,
            HealthState::Healthy,
        ] {
            s = s.recovered();
            assert_eq!(s, e);
        }
    }

    #[test]
    fn profiles_shed_monotonically() {
        let config = rtped_detect::detector::DetectorConfig::two_scale();
        let states = [
            HealthState::Healthy,
            HealthState::Degraded(1),
            HealthState::Degraded(2),
            HealthState::Degraded(3),
        ];
        let model = crate::deadline::CostModel::default();
        let costs: Vec<f64> = states
            .iter()
            .map(|s| model.frame_cost_ms(640, 480, &config, &s.profile()))
            .collect();
        for pair in costs.windows(2) {
            assert!(pair[0] >= pair[1], "{costs:?} must be non-increasing");
        }
    }

    #[test]
    fn deadline_miss_escalates_immediately() {
        let mut c = controller();
        let t = c.observe_ok(20.0).expect("must escalate");
        assert_eq!(t.from, HealthState::Healthy);
        assert_eq!(t.to, HealthState::Degraded(1));
        assert_eq!(t.cause, TransitionCause::DeadlineMiss);
    }

    #[test]
    fn recovery_needs_a_streak_under_the_margin() {
        let mut c = controller();
        c.observe_ok(20.0);
        assert_eq!(c.state(), HealthState::Degraded(1));
        // Four good frames: not enough.
        for _ in 0..4 {
            assert!(c.observe_ok(5.0).is_none());
        }
        // A frame above the 70% margin (but within budget) resets the streak.
        assert!(c.observe_ok(12.0).is_none());
        for _ in 0..4 {
            assert!(c.observe_ok(5.0).is_none());
        }
        let t = c.observe_ok(5.0).expect("fifth consecutive good frame");
        assert_eq!(t.to, HealthState::Healthy);
        assert_eq!(t.cause, TransitionCause::Recovered);
    }

    #[test]
    fn error_burst_jumps_to_safe_fallback() {
        let mut c = controller();
        assert_eq!(
            c.observe_error().unwrap().to,
            HealthState::Degraded(1),
            "single error sheds one rung"
        );
        c.observe_error();
        let t = c.observe_error().expect("third consecutive error");
        assert_eq!(t.to, HealthState::SafeFallback);
        assert_eq!(t.cause, TransitionCause::ErrorBurst);
        // Further errors keep it there without new transitions.
        assert!(c.observe_error().is_none());
        assert!(c.observe_error().is_none());
    }

    #[test]
    fn good_frames_between_errors_break_the_burst() {
        let mut c = controller();
        c.observe_error();
        c.observe_ok(5.0);
        c.observe_error();
        c.observe_ok(5.0);
        c.observe_error();
        assert_ne!(c.state(), HealthState::SafeFallback);
    }

    #[test]
    fn healthy_on_good_frames_never_transitions() {
        let mut c = controller();
        for _ in 0..50 {
            assert!(c.observe_ok(6.0).is_none());
        }
        assert_eq!(c.state(), HealthState::Healthy);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(HealthState::Healthy.label(), "healthy");
        assert_eq!(HealthState::Degraded(2).label(), "degraded_2");
        assert_eq!(HealthState::SafeFallback.label(), "safe_fallback");
        assert_eq!(TransitionCause::ErrorBurst.label(), "error_burst");
        assert_eq!(TransitionCause::IntegrityFault.label(), "integrity_fault");
    }

    #[test]
    fn integrity_faults_escalate_without_feeding_the_burst() {
        let mut c = controller();
        let t = c.observe_integrity_fault().expect("must escalate");
        assert_eq!(t.to, HealthState::Degraded(1));
        assert_eq!(t.cause, TransitionCause::IntegrityFault);
        // Two integrity faults then one frame error: the burst counter
        // only saw the frame error, so no SafeFallback jump.
        c.observe_integrity_fault();
        c.observe_error();
        assert_ne!(c.state(), HealthState::SafeFallback);
        // Recovery works from an integrity-caused rung like any other.
        for _ in 0..5 {
            c.observe_ok(5.0);
        }
        assert!(c.state() < HealthState::Degraded(3));
    }
}
