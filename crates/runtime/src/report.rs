//! Typed frame outcomes and the per-run robustness report.
//!
//! Every frame the runtime serves ends in exactly one of three ways —
//! detections, coasted tracks, or a typed [`FrameError`] — and every
//! degradation decision is recorded. The whole run serializes to
//! canonical JSON via [`rtped_core::json`], so two runs with the same
//! seed and thread count produce byte-identical artifacts (the
//! determinism tests diff exactly these bytes).
//!
//! # Schema versioning
//!
//! A serialized [`RunReport`] is a versioned document: the root carries
//! `"format"` ([`REPORT_FORMAT_VERSION`]) and `"kind": "run_report"`,
//! checked on decode by [`rtped_core::json::check_schema_header`] — the
//! same evolution policy `rtped_svm::io` applies to model files, so wire
//! responses and on-disk artifacts evolve together. [`FromJson`] decodes
//! reject mismatched versions with typed [`rtped_core::Error`]s instead
//! of misreading fields.

use std::fmt;

use rtped_core::json::{check_schema_header, obj, required_field};
use rtped_core::{Error, FromJson, Json, ToJson};
use rtped_detect::detector::Detection;
use rtped_hw::integrity::IntegrityReport;
use rtped_hw::stream::StreamStats;

use crate::control::{HealthState, Transition, TransitionCause};

/// Schema version stamped into serialized [`RunReport`]s (the `"format"`
/// field, paired with `"kind": "run_report"`). Bump on any incompatible
/// change to the report layout.
pub const REPORT_FORMAT_VERSION: u64 = 1;

/// Why a frame produced no detections.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The sensor delivered nothing this frame period.
    SensorDropout,
    /// The frame arrived cut short; the payload is the decoder's message.
    TruncatedFrame(String),
    /// The detection worker panicked; the payload is the panic text.
    WorkerPanic(String),
}

impl FrameError {
    /// Stable kind label for reports.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            FrameError::SensorDropout => "sensor_dropout",
            FrameError::TruncatedFrame(_) => "truncated_frame",
            FrameError::WorkerPanic(_) => "worker_panic",
        }
    }
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::SensorDropout => write!(f, "sensor dropout: no frame delivered"),
            FrameError::TruncatedFrame(msg) => write!(f, "truncated frame: {msg}"),
            FrameError::WorkerPanic(msg) => write!(f, "worker panic: {msg}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// What one frame yielded.
#[derive(Debug, Clone, PartialEq)]
pub enum FrameOutcome {
    /// A real scan ran and produced these detections.
    Detections(Vec<Detection>),
    /// `SafeFallback`: published boxes are coasted confirmed tracks.
    Coasted(Vec<Detection>),
    /// A typed failure; no boxes this frame.
    Error(FrameError),
}

impl FrameOutcome {
    /// The published boxes, if any ([`FrameOutcome::Error`] has none).
    #[must_use]
    pub fn detections(&self) -> Option<&[Detection]> {
        match self {
            FrameOutcome::Detections(d) | FrameOutcome::Coasted(d) => Some(d),
            FrameOutcome::Error(_) => None,
        }
    }

    /// Stable kind label for reports.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            FrameOutcome::Detections(_) => "detections",
            FrameOutcome::Coasted(_) => "coasted",
            FrameOutcome::Error(_) => "error",
        }
    }
}

/// The full record of one frame through the runtime.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameRecord {
    /// Frame index in the input sequence.
    pub index: usize,
    /// State in effect while the frame was served.
    pub state: HealthState,
    /// Labels of the faults injected into this frame.
    pub faults: Vec<String>,
    /// Modeled compute latency plus injected delay, in milliseconds.
    pub modeled_latency_ms: f64,
    /// The outcome.
    pub outcome: FrameOutcome,
}

impl ToJson for FrameRecord {
    fn to_json(&self) -> Json {
        let (count, boxes, error): (Json, Json, Json) = match &self.outcome {
            FrameOutcome::Error(err) => (
                Json::Null,
                Json::Null,
                obj([
                    ("kind", err.kind().into()),
                    (
                        "message",
                        match err {
                            FrameError::SensorDropout => Json::Null,
                            FrameError::TruncatedFrame(msg) | FrameError::WorkerPanic(msg) => {
                                msg.as_str().into()
                            }
                        },
                    ),
                ]),
            ),
            other => {
                let published = other.detections().unwrap_or(&[]);
                (
                    Json::Number(published.len() as f64),
                    Json::Array(published.iter().map(ToJson::to_json).collect()),
                    Json::Null,
                )
            }
        };
        obj([
            ("frame", self.index.into()),
            ("state", self.state.label().into()),
            (
                "faults",
                Json::Array(self.faults.iter().map(|f| f.as_str().into()).collect()),
            ),
            ("latency_ms", self.modeled_latency_ms.into()),
            ("outcome", self.outcome.kind().into()),
            ("detections", count),
            ("boxes", boxes),
            ("error", error),
        ])
    }
}

impl FromJson for FrameRecord {
    fn from_json(json: &Json) -> Result<Self, Error> {
        let state = HealthState::parse_label(&String::from_json(required_field(json, "state")?)?)?;
        let kind = String::from_json(required_field(json, "outcome")?)?;
        let outcome = match kind.as_str() {
            "detections" | "coasted" => {
                let boxes = Vec::<Detection>::from_json(required_field(json, "boxes")?)?;
                if kind == "detections" {
                    FrameOutcome::Detections(boxes)
                } else {
                    FrameOutcome::Coasted(boxes)
                }
            }
            "error" => {
                let error = required_field(json, "error")?;
                let error_kind = String::from_json(required_field(error, "kind")?)?;
                let message = || String::from_json(required_field(error, "message")?);
                FrameOutcome::Error(match error_kind.as_str() {
                    "sensor_dropout" => FrameError::SensorDropout,
                    "truncated_frame" => FrameError::TruncatedFrame(message()?),
                    "worker_panic" => FrameError::WorkerPanic(message()?),
                    other => {
                        return Err(Error::format(format!("unknown error kind \"{other}\"")));
                    }
                })
            }
            other => {
                return Err(Error::format(format!("unknown frame outcome \"{other}\"")));
            }
        };
        Ok(FrameRecord {
            index: usize::from_json(required_field(json, "frame")?)?,
            state,
            faults: Vec::<String>::from_json(required_field(json, "faults")?)?,
            modeled_latency_ms: f64::from_json(required_field(json, "latency_ms")?)?,
            outcome,
        })
    }
}

/// One recorded state change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransitionRecord {
    /// Frame whose observation triggered the change.
    pub frame: usize,
    /// The change itself.
    pub transition: Transition,
}

impl ToJson for TransitionRecord {
    fn to_json(&self) -> Json {
        obj([
            ("frame", self.frame.into()),
            ("from", self.transition.from.label().into()),
            ("to", self.transition.to.label().into()),
            ("cause", self.transition.cause.label().into()),
        ])
    }
}

impl FromJson for TransitionRecord {
    fn from_json(json: &Json) -> Result<Self, Error> {
        Ok(TransitionRecord {
            frame: usize::from_json(required_field(json, "frame")?)?,
            transition: Transition {
                from: HealthState::parse_label(&String::from_json(required_field(json, "from")?)?)?,
                to: HealthState::parse_label(&String::from_json(required_field(json, "to")?)?)?,
                cause: TransitionCause::parse_label(&String::from_json(required_field(
                    json, "cause",
                )?)?)?,
            },
        })
    }
}

/// Everything one runtime run observed, decided, and produced.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// The fault-plan seed the run was driven by.
    pub seed: u64,
    /// Per-frame records, in input order.
    pub frames: Vec<FrameRecord>,
    /// Every state change, in occurrence order.
    pub transitions: Vec<TransitionRecord>,
    /// State after the last frame.
    pub final_state: HealthState,
    /// Hardware-stream drop accounting, when the run also fed the
    /// `StreamSimulator` path.
    pub stream: Option<StreamStats>,
    /// Hardware-integrity accounting (ECC, checked MACBAR, lockstep,
    /// watchdog), when the run used the integrity-instrumented datapath.
    pub integrity: Option<IntegrityReport>,
}

impl RunReport {
    /// Frames that ended in a typed error.
    #[must_use]
    pub fn error_count(&self) -> usize {
        self.frames
            .iter()
            .filter(|f| matches!(f.outcome, FrameOutcome::Error(_)))
            .count()
    }

    /// Frames that had at least one fault injected.
    #[must_use]
    pub fn faulted_count(&self) -> usize {
        self.frames.iter().filter(|f| !f.faults.is_empty()).count()
    }

    /// Frames served in each state, as `(state_label, count)` in ladder
    /// order — the per-state dwell times.
    #[must_use]
    pub fn dwell(&self) -> Vec<(String, usize)> {
        let mut states: Vec<HealthState> = self.frames.iter().map(|f| f.state).collect();
        states.sort();
        states.dedup();
        states
            .into_iter()
            .map(|s| {
                let n = self.frames.iter().filter(|f| f.state == s).count();
                (s.label(), n)
            })
            .collect()
    }

    /// Worst modeled frame latency in milliseconds.
    #[must_use]
    pub fn worst_latency_ms(&self) -> f64 {
        self.frames
            .iter()
            .map(|f| f.modeled_latency_ms)
            .fold(0.0, f64::max)
    }

    /// Frames whose modeled latency exceeded `budget_ms` — the
    /// deterministic deadline-miss count fleet campaigns aggregate into
    /// miss rates. Uses a strict comparison so a frame landing exactly on
    /// the budget is on time.
    #[must_use]
    pub fn deadline_miss_count(&self, budget_ms: f64) -> usize {
        self.frames
            .iter()
            .filter(|f| f.modeled_latency_ms > budget_ms)
            .count()
    }

    /// Modeled per-frame latencies in input order, for percentile
    /// aggregation across a fleet of runs.
    #[must_use]
    pub fn latencies_ms(&self) -> Vec<f64> {
        self.frames.iter().map(|f| f.modeled_latency_ms).collect()
    }

    /// Silent integrity escapes (uncorrectable corruption that no checker
    /// flagged). Zero for runs without the integrity-instrumented
    /// datapath — and the fleet acceptance gate requires it to stay zero
    /// everywhere.
    #[must_use]
    pub fn integrity_escapes(&self) -> u64 {
        self.integrity
            .as_ref()
            .map_or(0, IntegrityReport::silent_escapes)
    }

    /// Whether the run entered `Degraded` at some point *and* later moved
    /// back toward health — the acceptance signal for the controller.
    #[must_use]
    pub fn degraded_and_recovered(&self) -> bool {
        let entered = self
            .transitions
            .iter()
            .any(|t| t.transition.to.severity() > 0);
        let recovered = self
            .transitions
            .iter()
            .any(|t| t.transition.to.severity() < t.transition.from.severity());
        entered && recovered
    }
}

impl ToJson for RunReport {
    fn to_json(&self) -> Json {
        let dwell = Json::Object(
            self.dwell()
                .into_iter()
                .map(|(label, n)| (label, Json::Number(n as f64)))
                .collect(),
        );
        obj([
            ("format", REPORT_FORMAT_VERSION.into()),
            ("kind", "run_report".into()),
            ("seed", self.seed.into()),
            ("frames", (self.frames.len()).into()),
            ("faulted_frames", self.faulted_count().into()),
            ("frame_errors", self.error_count().into()),
            ("final_state", self.final_state.label().into()),
            ("worst_latency_ms", self.worst_latency_ms().into()),
            ("dwell", dwell),
            (
                "transitions",
                Json::Array(self.transitions.iter().map(ToJson::to_json).collect()),
            ),
            (
                "frame_log",
                Json::Array(self.frames.iter().map(ToJson::to_json).collect()),
            ),
            (
                "stream",
                self.stream.as_ref().map_or(Json::Null, ToJson::to_json),
            ),
            (
                "integrity",
                self.integrity.as_ref().map_or(Json::Null, ToJson::to_json),
            ),
        ])
    }
}

impl FromJson for RunReport {
    /// Decodes a versioned report. The aggregate fields (`frames`,
    /// `faulted_frames`, `worst_latency_ms`, `dwell`, …) are derived from
    /// the frame log on encode, so decode reconstructs from `frame_log`
    /// and ignores them.
    fn from_json(json: &Json) -> Result<Self, Error> {
        check_schema_header(json, "run_report", "report", REPORT_FORMAT_VERSION)?;
        let stream = match required_field(json, "stream")? {
            Json::Null => None,
            value => Some(StreamStats::from_json(value)?),
        };
        let integrity = match required_field(json, "integrity")? {
            Json::Null => None,
            value => Some(IntegrityReport::from_json(value)?),
        };
        Ok(RunReport {
            seed: u64::from_json(required_field(json, "seed")?)?,
            frames: Vec::<FrameRecord>::from_json(required_field(json, "frame_log")?)?,
            transitions: Vec::<TransitionRecord>::from_json(required_field(json, "transitions")?)?,
            final_state: HealthState::parse_label(&String::from_json(required_field(
                json,
                "final_state",
            )?)?)?,
            stream,
            integrity,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::control::TransitionCause;

    fn record(index: usize, state: HealthState, outcome: FrameOutcome) -> FrameRecord {
        FrameRecord {
            index,
            state,
            faults: Vec::new(),
            modeled_latency_ms: 5.0,
            outcome,
        }
    }

    #[test]
    fn frame_error_display_and_kind() {
        let e = FrameError::TruncatedFrame("need 100 bytes".into());
        assert_eq!(e.kind(), "truncated_frame");
        assert!(e.to_string().contains("need 100 bytes"));
        assert_eq!(FrameError::SensorDropout.kind(), "sensor_dropout");
    }

    #[test]
    fn report_aggregates_count_correctly() {
        let report = RunReport {
            seed: 9,
            frames: vec![
                record(0, HealthState::Healthy, FrameOutcome::Detections(vec![])),
                record(
                    1,
                    HealthState::Degraded(1),
                    FrameOutcome::Error(FrameError::SensorDropout),
                ),
                record(2, HealthState::Degraded(1), FrameOutcome::Coasted(vec![])),
            ],
            transitions: vec![
                TransitionRecord {
                    frame: 1,
                    transition: Transition {
                        from: HealthState::Healthy,
                        to: HealthState::Degraded(1),
                        cause: TransitionCause::FrameError,
                    },
                },
                TransitionRecord {
                    frame: 2,
                    transition: Transition {
                        from: HealthState::Degraded(1),
                        to: HealthState::Healthy,
                        cause: TransitionCause::Recovered,
                    },
                },
            ],
            final_state: HealthState::Healthy,
            stream: None,
            integrity: None,
        };
        assert_eq!(report.error_count(), 1);
        assert_eq!(
            report.dwell(),
            vec![("healthy".to_string(), 1), ("degraded_1".to_string(), 2)]
        );
        assert!(report.degraded_and_recovered());
        // All records carry 5.0 ms; a frame exactly on budget is on time.
        assert_eq!(report.deadline_miss_count(4.0), 3);
        assert_eq!(report.deadline_miss_count(5.0), 0);
        assert_eq!(report.latencies_ms(), vec![5.0, 5.0, 5.0]);
        assert_eq!(report.integrity_escapes(), 0);
        let text = report.to_json().to_string();
        assert!(text.contains("\"final_state\":\"healthy\""));
        assert!(text.contains("\"cause\":\"recovered\""));
    }

    #[test]
    fn versioned_report_roundtrips_and_rejects_mismatches() {
        use rtped_detect::BoundingBox;
        let detection = Detection {
            bbox: BoundingBox::new(8, 16, 64, 128),
            score: 1.25,
            scale: 1.5,
        };
        let report = RunReport {
            seed: 7,
            frames: vec![
                record(
                    0,
                    HealthState::Healthy,
                    FrameOutcome::Detections(vec![detection]),
                ),
                record(
                    1,
                    HealthState::Degraded(2),
                    FrameOutcome::Error(FrameError::WorkerPanic("boom".into())),
                ),
                record(
                    2,
                    HealthState::SafeFallback,
                    FrameOutcome::Error(FrameError::SensorDropout),
                ),
            ],
            transitions: vec![TransitionRecord {
                frame: 1,
                transition: Transition {
                    from: HealthState::Healthy,
                    to: HealthState::Degraded(1),
                    cause: TransitionCause::DeadlineMiss,
                },
            }],
            final_state: HealthState::Degraded(1),
            stream: None,
            integrity: None,
        };
        let text = report.to_json().to_string();
        assert!(text.starts_with("{\"format\":1,\"kind\":\"run_report\""));
        // Round-trip through the canonical bytes, not just the tree.
        let decoded = RunReport::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(decoded, report);
        assert_eq!(decoded.to_json().to_string(), text);

        // A future format is rejected with the shared typed message, not
        // misdecoded.
        let future = text.replacen("\"format\":1", "\"format\":2", 1);
        let err = RunReport::from_json(&Json::parse(&future).unwrap()).unwrap_err();
        assert_eq!(
            err.to_string(),
            "format error: unsupported report format 2 (this build reads format 1)"
        );
        // A different document kind is rejected too.
        let wrong = text.replacen("\"kind\":\"run_report\"", "\"kind\":\"model\"", 1);
        assert!(RunReport::from_json(&Json::parse(&wrong).unwrap()).is_err());
    }

    #[test]
    fn json_serialization_is_deterministic() {
        let report = RunReport {
            seed: 1,
            frames: vec![record(
                0,
                HealthState::Healthy,
                FrameOutcome::Detections(vec![]),
            )],
            transitions: Vec::new(),
            final_state: HealthState::Healthy,
            stream: None,
            integrity: None,
        };
        assert_eq!(
            report.to_json().to_string(),
            report.clone().to_json().to_string()
        );
    }
}
