//! Cell-major normalized HOG feature maps — the representation stored in
//! the paper's `NHOGMem` and down-sampled by its scaling modules.
//!
//! In the hardware of [Hemmati et al., DSD'14] (reused by the DAC'17 paper)
//! the normalized features are stored *per cell*: each cell keeps its 9-bin
//! histogram normalized within each of the four 2×2-cell blocks that cover
//! it, labelled by the cell's role in the block — **LU** (left-upper),
//! **RU** (right-upper), **LB** (left-bottom), **RB** (right-bottom).
//! That yields 4 × 9 = 36 values per cell and lets a 64×128 window be read
//! as 8×16 cells × 36 = 4608 features out of 16 memory banks ("16×8 blocks
//! and each of the blocks has the feature vector of 36 elements", §5).

use std::ops::Range;

use rtped_core::par;
use rtped_image::GrayImage;

use crate::grid::CellGrid;
use crate::params::HogParams;
use crate::quant::{QuantFeatureMap, FEATURE_FRAC_BITS};

/// Resampled maps smaller than this many output values are built serially:
/// below it, thread-pool coordination costs more than the resampling
/// itself (the 640×480 regression in `BENCH_detect.json`).
const PAR_MIN_SCALE_ELEMS: usize = 100_000;

/// The four roles a cell can play inside a 2×2-cell block, in storage order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellRole {
    /// Left-upper cell of the block anchored at the cell itself.
    Lu,
    /// Right-upper cell of the block anchored one cell to the left.
    Ru,
    /// Left-bottom cell of the block anchored one cell up.
    Lb,
    /// Right-bottom cell of the block anchored one cell up-left.
    Rb,
}

impl CellRole {
    /// All roles in storage order `[LU, RU, LB, RB]`.
    pub const ALL: [CellRole; 4] = [CellRole::Lu, CellRole::Ru, CellRole::Lb, CellRole::Rb];

    /// Index of this role in the per-cell feature vector.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            CellRole::Lu => 0,
            CellRole::Ru => 1,
            CellRole::Lb => 2,
            CellRole::Rb => 3,
        }
    }

    /// Offset from the cell to the origin of the covering block for this
    /// role: `(dx, dy)` such that the block origin is `(cx + dx, cy + dy)`.
    #[must_use]
    pub fn block_offset(self) -> (isize, isize) {
        match self {
            CellRole::Lu => (0, 0),
            CellRole::Ru => (-1, 0),
            CellRole::Lb => (0, -1),
            CellRole::Rb => (-1, -1),
        }
    }
}

/// Normalized, cell-major HOG feature plane for a whole image.
///
/// Layout: `data[(cy * cells_x + cx) * 36 + role * 9 + bin]` for the
/// canonical 9-bin configuration. See the module docs for the role
/// semantics.
///
/// # Example
///
/// ```
/// use rtped_hog::{feature_map::FeatureMap, params::HogParams};
/// use rtped_image::GrayImage;
///
/// let params = HogParams::pedestrian();
/// let img = GrayImage::from_fn(128, 256, |x, y| ((3 * x + y) % 251) as u8);
/// let map = FeatureMap::extract(&img, &params);
/// assert_eq!(map.cells(), (16, 32));
/// // Down-sample the features by 2 (the paper's multi-scale mechanism).
/// let half = map.scaled_to(8, 16);
/// assert_eq!(half.cells(), (8, 16));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureMap {
    cells_x: usize,
    cells_y: usize,
    bins: usize,
    data: Vec<f32>,
}

impl FeatureMap {
    /// Extracts the normalized feature map of `img`: gradients, cell
    /// histograms, then per-cell 4-role block normalization.
    ///
    /// # Panics
    ///
    /// Panics if the image holds fewer than 2×2 cells (no block fits).
    #[must_use]
    pub fn extract(img: &GrayImage, params: &HogParams) -> Self {
        let grid = CellGrid::compute(img, params);
        Self::from_cell_grid(&grid, params)
    }

    /// Extracts the feature map of the largest *centered* region of `img`
    /// that is a whole number of cells.
    ///
    /// Plain extraction floors the cell grid against the image's top-left
    /// corner, so a 70×141 window keeps only its left/top 64×136 pixels —
    /// decentering the object by up to one cell. Detection windows are
    /// object-centered, so scale-variant feature extraction (the paper's
    /// Fig. 3b path) should use this variant.
    ///
    /// # Panics
    ///
    /// Panics if the image holds fewer than 2×2 cells.
    #[must_use]
    pub fn extract_centered(img: &GrayImage, params: &HogParams) -> Self {
        let cs = params.cell_size();
        let (w, h) = img.dimensions();
        let cw = (w / cs) * cs;
        let ch = (h / cs) * cs;
        assert!(cw >= 2 * cs && ch >= 2 * cs, "image smaller than 2x2 cells");
        if (cw, ch) == (w, h) {
            return Self::extract(img, params);
        }
        let x0 = (w - cw) / 2;
        let y0 = (h - ch) / 2;
        let crop = img.crop(x0, y0, cw, ch);
        Self::extract(&crop, params)
    }

    /// Normalizes an existing [`CellGrid`] into a feature map.
    ///
    /// Blocks are `2×2` cells regardless of `params.block_cells()` — the
    /// cell-major layout is defined for the canonical block geometry the
    /// hardware implements.
    ///
    /// # Panics
    ///
    /// Panics if the grid holds fewer than 2×2 cells.
    #[must_use]
    pub fn from_cell_grid(grid: &CellGrid, params: &HogParams) -> Self {
        let (cells_x, cells_y) = grid.cells();
        assert!(
            cells_x >= 2 && cells_y >= 2,
            "feature map needs at least 2x2 cells"
        );
        let bins = grid.bins();
        let norm = params.norm();
        let mut data = vec![0.0f32; cells_x * cells_y * 4 * bins];

        // Normalize each physical block once, then scatter its four
        // normalized cells into their role slots — each interior (cell,
        // role) slot references exactly one block, so this writes the same
        // values as normalizing per slot at a quarter of the cost.
        let max_bx = cells_x - 2;
        let max_by = cells_y - 2;
        let mut block = vec![0.0f32; 4 * bins];
        for by in 0..=max_by {
            for bx in 0..=max_bx {
                // Gather the 2x2 block (cells in row-major order).
                for (ci, (ox, oy)) in [(0, 0), (1, 0), (0, 1), (1, 1)].into_iter().enumerate() {
                    let h = grid.histogram(bx + ox, by + oy);
                    block[ci * bins..(ci + 1) * bins].copy_from_slice(h);
                }
                norm.normalize(&mut block);
                // Quadrant (qx, qy) belongs to cell (bx+qx, by+qy) in role
                // qy*2+qx (the role whose block offset is (-qx, -qy)).
                for qy in 0..2 {
                    for qx in 0..2 {
                        let quadrant = qy * 2 + qx;
                        let dst = (((by + qy) * cells_x + (bx + qx)) * 4 + quadrant) * bins;
                        data[dst..dst + bins]
                            .copy_from_slice(&block[quadrant * bins..(quadrant + 1) * bins]);
                    }
                }
            }
        }

        // Edge cells miss some covering blocks; their role slots clamp to
        // the nearest valid block, whose normalized quadrant was already
        // scattered to an interior slot — copy it from there. (The source
        // slot is never itself clamped, so ordering is immaterial.)
        for cy in 0..cells_y {
            for cx in 0..cells_x {
                if cx > 0 && cx < cells_x - 1 && cy > 0 && cy < cells_y - 1 {
                    continue;
                }
                for role in CellRole::ALL {
                    let (dx, dy) = role.block_offset();
                    let ubx = cx as isize + dx;
                    let uby = cy as isize + dy;
                    let bx = ubx.clamp(0, max_bx as isize) as usize;
                    let by = uby.clamp(0, max_by as isize) as usize;
                    if ubx == bx as isize && uby == by as isize {
                        continue; // unclamped: the scatter already filled it
                    }
                    let qx = (cx as isize - bx as isize).clamp(0, 1) as usize;
                    let qy = (cy as isize - by as isize).clamp(0, 1) as usize;
                    let src = (((by + qy) * cells_x + (bx + qx)) * 4 + (qy * 2 + qx)) * bins;
                    let dst = ((cy * cells_x + cx) * 4 + role.index()) * bins;
                    data.copy_within(src..src + bins, dst);
                }
            }
        }

        Self {
            cells_x,
            cells_y,
            bins,
            data,
        }
    }

    /// Recomputes the normalized features of cell rows `rows` in place from
    /// `grid`, leaving all other rows untouched.
    ///
    /// A cell row's features depend only on histogram rows `cy - 1 ..=
    /// cy + 1` (clamped), so callers that know which histogram rows changed
    /// can refresh exactly the affected feature rows and obtain a map
    /// bit-identical to a full [`FeatureMap::from_cell_grid`].
    ///
    /// # Panics
    ///
    /// Panics if the grid does not match this map's dimensions or `rows`
    /// is out of bounds.
    pub fn update_rows(&mut self, grid: &CellGrid, params: &HogParams, rows: Range<usize>) {
        assert_eq!(grid.cells(), (self.cells_x, self.cells_y), "grid mismatch");
        assert_eq!(grid.bins(), self.bins, "bin count mismatch");
        assert!(rows.end <= self.cells_y, "cell rows out of bounds");
        let cells_x = self.cells_x;
        let bins = self.bins;
        let norm = params.norm();
        let max_bx = cells_x - 2;
        let max_by = self.cells_y - 2;
        let mut block = vec![0.0f32; 4 * bins];
        for cy in rows {
            for cx in 0..cells_x {
                for role in CellRole::ALL {
                    let (dx, dy) = role.block_offset();
                    let bx = (cx as isize + dx).clamp(0, max_bx as isize) as usize;
                    let by = (cy as isize + dy).clamp(0, max_by as isize) as usize;
                    for (ci, (ox, oy)) in [(0, 0), (1, 0), (0, 1), (1, 1)].into_iter().enumerate() {
                        let h = grid.histogram(bx + ox, by + oy);
                        block[ci * bins..(ci + 1) * bins].copy_from_slice(h);
                    }
                    norm.normalize(&mut block);
                    let qx = (cx as isize - bx as isize).clamp(0, 1) as usize;
                    let qy = (cy as isize - by as isize).clamp(0, 1) as usize;
                    let quadrant = qy * 2 + qx;
                    let src = &block[quadrant * bins..(quadrant + 1) * bins];
                    let dst_base = ((cy * cells_x + cx) * 4 + role.index()) * bins;
                    self.data[dst_base..dst_base + bins].copy_from_slice(src);
                }
            }
        }
    }

    /// Grid size `(cells_x, cells_y)`.
    #[must_use]
    pub fn cells(&self) -> (usize, usize) {
        (self.cells_x, self.cells_y)
    }

    /// Orientation bin count per role.
    #[must_use]
    pub fn bins(&self) -> usize {
        self.bins
    }

    /// Features per cell (`4 * bins`).
    #[must_use]
    pub fn cell_features(&self) -> usize {
        4 * self.bins
    }

    /// Borrows the full 36-value feature vector of cell `(cx, cy)`.
    ///
    /// # Panics
    ///
    /// Panics if the cell is out of bounds.
    #[must_use]
    pub fn cell(&self, cx: usize, cy: usize) -> &[f32] {
        assert!(cx < self.cells_x && cy < self.cells_y, "cell out of bounds");
        let f = self.cell_features();
        let base = (cy * self.cells_x + cx) * f;
        &self.data[base..base + f]
    }

    /// Borrows the 9-value histogram of cell `(cx, cy)` normalized under
    /// `role`.
    ///
    /// # Panics
    ///
    /// Panics if the cell is out of bounds.
    #[must_use]
    pub fn cell_role(&self, cx: usize, cy: usize, role: CellRole) -> &[f32] {
        let cell = self.cell(cx, cy);
        let b = self.bins;
        &cell[role.index() * b..(role.index() + 1) * b]
    }

    /// Concatenates the cell-major descriptor of the window whose top-left
    /// cell is `(cx, cy)` (size taken from `params.window_cells()`):
    /// 4608 values for the canonical geometry.
    ///
    /// # Panics
    ///
    /// Panics if the window extends past the map.
    #[must_use]
    pub fn window_descriptor(&self, cx: usize, cy: usize, params: &HogParams) -> Vec<f32> {
        let (wc, hc) = params.window_cells();
        assert!(
            cx + wc <= self.cells_x && cy + hc <= self.cells_y,
            "window out of bounds: ({cx},{cy}) + {wc}x{hc} > {}x{}",
            self.cells_x,
            self.cells_y
        );
        let f = self.cell_features();
        let mut out = Vec::with_capacity(wc * hc * f);
        for dy in 0..hc {
            for dx in 0..wc {
                out.extend_from_slice(self.cell(cx + dx, cy + dy));
            }
        }
        out
    }

    /// Bilinearly resamples the feature map to `new_cells_x * new_cells_y`
    /// cells — the paper's feature down-scaling. Each of the `4 * bins`
    /// channels is resampled independently with the half-cell-center
    /// convention (the same mapping the shift-and-add hardware scaler
    /// approximates).
    ///
    /// Output rows are filled in parallel (each output value depends only
    /// on the source map, so the result is byte-identical for any thread
    /// count; see `rtped_core::par::for_each_band`).
    ///
    /// # Panics
    ///
    /// Panics if either target dimension is zero.
    #[must_use]
    pub fn scaled_to(&self, new_cells_x: usize, new_cells_y: usize) -> FeatureMap {
        assert!(
            new_cells_x > 0 && new_cells_y > 0,
            "scaled feature map must be non-empty"
        );
        if (new_cells_x, new_cells_y) == (self.cells_x, self.cells_y) {
            return self.clone();
        }
        let f = self.cell_features();
        let row_len = new_cells_x * f;
        let mut data = vec![0.0f32; row_len * new_cells_y];
        // Band granularity: a few output rows per claim, at most ~4 bands
        // per worker so uneven costs still balance. Small outputs go
        // serial: pool coordination would dominate the resampling.
        let bands = if data.len() < PAR_MIN_SCALE_ELEMS {
            1
        } else {
            (par::threads() * 4).min(new_cells_y).max(1)
        };
        let rows_per_band = new_cells_y.div_ceil(bands);
        par::for_each_band(&mut data, rows_per_band * row_len, |start, band| {
            let oy0 = start / row_len;
            for (r, row) in band.chunks_mut(row_len).enumerate() {
                self.scale_row(new_cells_x, new_cells_y, oy0 + r, row);
            }
        });
        FeatureMap {
            cells_x: new_cells_x,
            cells_y: new_cells_y,
            bins: self.bins,
            data,
        }
    }

    /// Resamples one output row (`oy` of a `new_cells_x * new_cells_y`
    /// target) into `row`. Shared by [`FeatureMap::scaled_to`] and
    /// [`FeatureMap::scaled_rows_into`] so both produce identical bits.
    fn scale_row(&self, new_cells_x: usize, new_cells_y: usize, oy: usize, row: &mut [f32]) {
        let f = self.cell_features();
        let rx = self.cells_x as f32 / new_cells_x as f32;
        let ry = self.cells_y as f32 / new_cells_y as f32;
        let fy = (oy as f32 + 0.5) * ry - 0.5;
        let y0 = fy.floor();
        let ty = fy - y0;
        let y0i = (y0 as isize).clamp(0, self.cells_y as isize - 1) as usize;
        let y1i = ((y0 as isize) + 1).clamp(0, self.cells_y as isize - 1) as usize;
        for ox in 0..new_cells_x {
            let fx = (ox as f32 + 0.5) * rx - 0.5;
            let x0 = fx.floor();
            let tx = fx - x0;
            let x0i = (x0 as isize).clamp(0, self.cells_x as isize - 1) as usize;
            let x1i = ((x0 as isize) + 1).clamp(0, self.cells_x as isize - 1) as usize;
            let c00 = self.cell(x0i, y0i);
            let c10 = self.cell(x1i, y0i);
            let c01 = self.cell(x0i, y1i);
            let c11 = self.cell(x1i, y1i);
            let base = ox * f;
            for k in 0..f {
                let top = c00[k] + (c10[k] - c00[k]) * tx;
                let bottom = c01[k] + (c11[k] - c01[k]) * tx;
                row[base + k] = top + (bottom - top) * ty;
            }
        }
    }

    /// Recomputes output rows `rows` of `out` (a map previously produced by
    /// `self.scaled_to(out.cells())`) in place, serially.
    ///
    /// Each output row reads only its two source rows (see
    /// [`FeatureMap::source_rows`]), so refreshing the rows whose sources
    /// changed yields a map bit-identical to a fresh `scaled_to` call.
    ///
    /// # Panics
    ///
    /// Panics if bin counts differ or `rows` is out of bounds.
    pub fn scaled_rows_into(&self, out: &mut FeatureMap, rows: Range<usize>) {
        assert_eq!(self.bins, out.bins, "bin count mismatch");
        assert!(rows.end <= out.cells_y, "output rows out of bounds");
        let row_len = out.cells_x * out.cell_features();
        if (out.cells_x, out.cells_y) == (self.cells_x, self.cells_y) {
            // Identity scale: scaled_to returns a clone, so rows copy over.
            let span = rows.start * row_len..rows.end * row_len;
            out.data[span.clone()].copy_from_slice(&self.data[span]);
            return;
        }
        let (new_cells_x, new_cells_y) = (out.cells_x, out.cells_y);
        for oy in rows {
            let row = &mut out.data[oy * row_len..(oy + 1) * row_len];
            self.scale_row(new_cells_x, new_cells_y, oy, row);
        }
    }

    /// The two (clamped) source rows that bilinear resampling reads when
    /// producing output row `oy` of a `new_cells_y`-row target from a
    /// `cells_y`-row source — the exact `y0/y1` indices `scaled_to` uses.
    #[must_use]
    pub fn source_rows(cells_y: usize, new_cells_y: usize, oy: usize) -> (usize, usize) {
        let ry = cells_y as f32 / new_cells_y as f32;
        let fy = (oy as f32 + 0.5) * ry - 0.5;
        let y0 = fy.floor();
        let y0i = (y0 as isize).clamp(0, cells_y as isize - 1) as usize;
        let y1i = ((y0 as isize) + 1).clamp(0, cells_y as isize - 1) as usize;
        (y0i, y1i)
    }

    /// Resamples by a scale factor `s > 0`: the output grid is
    /// `round(cells / s)` in each dimension (s > 1 shrinks the map, i.e.
    /// detects larger objects).
    ///
    /// # Panics
    ///
    /// Panics if `s` is not finite/positive or the result would be empty.
    #[must_use]
    pub fn scaled_by(&self, s: f32) -> FeatureMap {
        assert!(s.is_finite() && s > 0.0, "scale must be positive");
        let nx = ((self.cells_x as f32 / s).round() as usize).max(1);
        let ny = ((self.cells_y as f32 / s).round() as usize).max(1);
        self.scaled_to(nx, ny)
    }

    /// Re-applies block normalization after a resampling pass.
    ///
    /// Bilinear down-sampling averages neighbouring features, which
    /// shrinks every block's norm below the unit norm the classifier was
    /// trained on and uniformly deflates decision values. This pass
    /// rebuilds each physical 2×2-cell block from the role slots that
    /// reference it, renormalizes the 36-vector, and scatters it back —
    /// an optional correction (ablated in `rtped-bench`) that the
    /// shift-and-add hardware scaler does *not* perform.
    #[must_use]
    pub fn renormalized(&self, norm: crate::block::NormKind) -> FeatureMap {
        let mut out = self.clone();
        if self.cells_x < 2 || self.cells_y < 2 {
            return out;
        }
        let b = self.bins;
        let mut block = vec![0.0f32; 4 * b];
        for by in 0..self.cells_y - 1 {
            for bx in 0..self.cells_x - 1 {
                // Gather the four role views of block (bx, by).
                block[..b].copy_from_slice(self.cell_role(bx, by, CellRole::Lu));
                block[b..2 * b].copy_from_slice(self.cell_role(bx + 1, by, CellRole::Ru));
                block[2 * b..3 * b].copy_from_slice(self.cell_role(bx, by + 1, CellRole::Lb));
                block[3 * b..4 * b].copy_from_slice(self.cell_role(bx + 1, by + 1, CellRole::Rb));
                norm.normalize(&mut block);
                // Scatter back into the same role slots.
                let f = out.cell_features();
                let targets = [
                    ((by * self.cells_x + bx) * f + CellRole::Lu.index() * b, 0),
                    (
                        (by * self.cells_x + bx + 1) * f + CellRole::Ru.index() * b,
                        b,
                    ),
                    (
                        ((by + 1) * self.cells_x + bx) * f + CellRole::Lb.index() * b,
                        2 * b,
                    ),
                    (
                        ((by + 1) * self.cells_x + bx + 1) * f + CellRole::Rb.index() * b,
                        3 * b,
                    ),
                ];
                for (dst, src) in targets {
                    out.data[dst..dst + b].copy_from_slice(&block[src..src + b]);
                }
            }
        }
        out
    }

    /// Builds a map from raw data (hardware golden-model comparisons).
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != cells_x * cells_y * 4 * bins`.
    #[must_use]
    pub fn from_raw(cells_x: usize, cells_y: usize, bins: usize, data: Vec<f32>) -> Self {
        assert!(cells_x > 0 && cells_y > 0 && bins > 0, "empty feature map");
        assert_eq!(
            data.len(),
            cells_x * cells_y * 4 * bins,
            "data length mismatch"
        );
        Self {
            cells_x,
            cells_y,
            bins,
            data,
        }
    }

    /// Borrows the raw feature buffer.
    #[must_use]
    pub fn as_raw(&self) -> &[f32] {
        &self.data
    }

    /// Quantizes the whole map to the fixed-point representation used by
    /// the i16 datapath (Q`FEATURE_FRAC_BITS` fraction bits).
    ///
    /// This is the designated float → integer conversion boundary: the
    /// integer kernel module itself never touches floating point. Values
    /// are scaled by `2^FEATURE_FRAC_BITS`, rounded to nearest, and
    /// clamped to `±2^FEATURE_FRAC_BITS` (normalized HOG features live in
    /// `[0, 1]`, so clamping only guards pathological inputs); the bound
    /// is what makes the kernel's i32 row accumulation overflow-free.
    #[must_use]
    pub fn quantized(&self) -> QuantFeatureMap {
        let mut q = QuantFeatureMap::new(self.cells_x, self.cells_y, self.bins);
        self.quantize_rows_into(&mut q, 0..self.cells_y);
        q
    }

    /// Requantizes cell rows `rows` of `q` from this map, leaving other
    /// rows untouched (the temporal cache's incremental path).
    ///
    /// # Panics
    ///
    /// Panics if `q`'s dimensions differ or `rows` is out of bounds.
    pub fn quantize_rows_into(&self, q: &mut QuantFeatureMap, rows: Range<usize>) {
        assert_eq!(q.cells(), (self.cells_x, self.cells_y), "dim mismatch");
        assert_eq!(q.bins(), self.bins, "bin count mismatch");
        assert!(rows.end <= self.cells_y, "cell rows out of bounds");
        let row_len = self.cells_x * self.cell_features();
        let scale = (1i32 << FEATURE_FRAC_BITS) as f32;
        let src = &self.data[rows.start * row_len..rows.end * row_len];
        let dst = q.rows_mut(rows);
        for (d, &v) in dst.iter_mut().zip(src) {
            *d = (v * scale).round().clamp(-scale, scale) as i16;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn textured(w: usize, h: usize) -> GrayImage {
        GrayImage::from_fn(w, h, |x, y| ((x * 13 + y * 29 + (x * y) % 17) % 256) as u8)
    }

    #[test]
    fn extract_dimensions() {
        let p = HogParams::pedestrian();
        let map = FeatureMap::extract(&textured(64, 128), &p);
        assert_eq!(map.cells(), (8, 16));
        assert_eq!(map.cell_features(), 36);
        assert_eq!(map.as_raw().len(), 8 * 16 * 36);
    }

    #[test]
    fn window_descriptor_has_hardware_length() {
        let p = HogParams::pedestrian();
        let map = FeatureMap::extract(&textured(128, 256), &p);
        let d = map.window_descriptor(2, 3, &p);
        assert_eq!(d.len(), 4608);
    }

    #[test]
    #[should_panic(expected = "window out of bounds")]
    fn window_descriptor_checks_bounds() {
        let p = HogParams::pedestrian();
        let map = FeatureMap::extract(&textured(64, 128), &p);
        let _ = map.window_descriptor(1, 0, &p);
    }

    #[test]
    fn interior_role_slots_agree_across_neighbours() {
        // Cell (cx, cy)'s LU-role block is the block with origin (cx, cy).
        // Cell (cx+1, cy)'s RU-role block is the block with origin
        // (cx+1-1, cy) = (cx, cy): same block, different quadrant. The
        // block's L2 norm over its 4 gathered cells must therefore match.
        let p = HogParams::pedestrian();
        let map = FeatureMap::extract(&textured(64, 128), &p);
        // Verify via the shared-block invariant: build norms by summing
        // squares of the four cells' slots that reference block (3, 5).
        let lu = map.cell_role(3, 5, CellRole::Lu); // quadrant (0,0)
        let ru = map.cell_role(4, 5, CellRole::Ru); // quadrant (1,0)
        let lb = map.cell_role(3, 6, CellRole::Lb); // quadrant (0,1)
        let rb = map.cell_role(4, 6, CellRole::Rb); // quadrant (1,1)
        let total: f32 = [lu, ru, lb, rb]
            .iter()
            .flat_map(|s| s.iter())
            .map(|v| v * v)
            .sum();
        // L2-Hys leaves the block with (near-)unit norm unless it is empty.
        assert!(
            (total.sqrt() - 1.0).abs() < 0.05,
            "block norm {} should be ~1",
            total.sqrt()
        );
    }

    #[test]
    fn features_are_bounded_by_clip_renormalization() {
        let p = HogParams::pedestrian();
        let map = FeatureMap::extract(&textured(64, 128), &p);
        for &v in map.as_raw() {
            assert!(v >= -1e-6, "negative feature {v}");
            assert!(v <= 1.0 + 1e-4, "feature exceeds 1: {v}");
        }
    }

    #[test]
    fn flat_image_gives_zero_features() {
        let mut img = GrayImage::new(64, 128);
        img.fill(77);
        let p = HogParams::pedestrian();
        let map = FeatureMap::extract(&img, &p);
        assert!(map.as_raw().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn identity_rescale_is_clone() {
        let p = HogParams::pedestrian();
        let map = FeatureMap::extract(&textured(64, 128), &p);
        let same = map.scaled_to(8, 16);
        assert_eq!(same, map);
    }

    #[test]
    fn scaled_by_rounds_dimensions() {
        let p = HogParams::pedestrian();
        let map = FeatureMap::extract(&textured(160, 320), &p);
        assert_eq!(map.cells(), (20, 40));
        let down = map.scaled_by(2.0);
        assert_eq!(down.cells(), (10, 20));
        let odd = map.scaled_by(1.5);
        assert_eq!(odd.cells(), (13, 27));
    }

    #[test]
    fn downscale_of_constant_map_is_constant() {
        let map = FeatureMap::from_raw(8, 8, 9, vec![0.25; 8 * 8 * 36]);
        let down = map.scaled_to(4, 4);
        assert!(down.as_raw().iter().all(|&v| (v - 0.25).abs() < 1e-6));
    }

    #[test]
    fn downscale_preserves_value_range() {
        let p = HogParams::pedestrian();
        let map = FeatureMap::extract(&textured(128, 256), &p);
        let down = map.scaled_by(1.3);
        let max_in = map.as_raw().iter().cloned().fold(0.0f32, f32::max);
        let max_out = down.as_raw().iter().cloned().fold(0.0f32, f32::max);
        assert!(max_out <= max_in + 1e-5, "bilinear must not overshoot");
        assert!(down.as_raw().iter().all(|&v| v >= -1e-6));
    }

    #[test]
    fn cell_role_offsets_are_consistent() {
        for role in CellRole::ALL {
            let (dx, dy) = role.block_offset();
            assert!((-1..=0).contains(&dx) && (-1..=0).contains(&dy));
        }
        assert_eq!(CellRole::Lu.index(), 0);
        assert_eq!(CellRole::Rb.index(), 3);
    }

    #[test]
    fn extract_centered_equals_extract_for_aligned_images() {
        let p = HogParams::pedestrian();
        let img = textured(64, 128);
        assert_eq!(
            FeatureMap::extract_centered(&img, &p),
            FeatureMap::extract(&img, &p)
        );
    }

    #[test]
    fn extract_centered_uses_the_central_region() {
        // 70x141 window: centered extraction crops pixels 3..67 x 2..138,
        // so it must equal extraction of that crop.
        let p = HogParams::pedestrian();
        let img = textured(70, 141);
        let centered = FeatureMap::extract_centered(&img, &p);
        let manual = FeatureMap::extract(&img.crop(3, 2, 64, 136), &p);
        assert_eq!(centered, manual);
        assert_eq!(centered.cells(), (8, 17));
    }

    #[test]
    fn renormalized_restores_unit_block_norms() {
        let p = HogParams::pedestrian();
        let map = FeatureMap::extract(&textured(96, 160), &p);
        // Downsampling deflates block norms...
        let scaled = map.scaled_by(1.4);
        let renormed = scaled.renormalized(p.norm());
        // ...renormalization restores them: check one interior block via
        // its four role views.
        let total: f32 = [
            renormed.cell_role(2, 3, CellRole::Lu),
            renormed.cell_role(3, 3, CellRole::Ru),
            renormed.cell_role(2, 4, CellRole::Lb),
            renormed.cell_role(3, 4, CellRole::Rb),
        ]
        .iter()
        .flat_map(|s| s.iter())
        .map(|v| v * v)
        .sum();
        assert!(
            (total.sqrt() - 1.0).abs() < 0.05,
            "renormalized block norm {}",
            total.sqrt()
        );
    }

    #[test]
    fn renormalizing_an_unscaled_map_is_a_small_perturbation() {
        let p = HogParams::pedestrian();
        let map = FeatureMap::extract(&textured(64, 128), &p);
        let renormed = map.renormalized(p.norm());
        let max_err = map
            .as_raw()
            .iter()
            .zip(renormed.as_raw())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        // L2-Hys is NOT exactly idempotent: the renormalization after
        // clipping lifts clipped components back above 0.2, so a second
        // application re-clips them. The perturbation stays well below
        // the clip constant.
        assert!(max_err < 0.1, "renormalization moved features by {max_err}");
        // Interior block norms are restored to ~1 either way.
        let renormed2 = renormed.renormalized(p.norm());
        let second_pass_err = renormed
            .as_raw()
            .iter()
            .zip(renormed2.as_raw())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(
            second_pass_err <= max_err + 1e-6,
            "repeated renormalization should contract: {second_pass_err} vs {max_err}"
        );
    }

    #[test]
    fn update_rows_matches_scatter_build() {
        // The scatter-based from_cell_grid and the per-slot update_rows
        // path must produce identical bits — the temporal cache mixes them.
        let p = HogParams::pedestrian();
        let img_a = textured(96, 96);
        let img_b = GrayImage::from_fn(96, 96, |x, y| ((x * 31 + y * 3 + 7) % 256) as u8);
        let grid_a = CellGrid::compute(&img_a, &p);
        let grid_b = CellGrid::compute(&img_b, &p);
        let mut map = FeatureMap::from_cell_grid(&grid_a, &p);
        map.update_rows(&grid_b, &p, 0..4);
        map.update_rows(&grid_b, &p, 4..9);
        map.update_rows(&grid_b, &p, 9..12);
        assert_eq!(map, FeatureMap::from_cell_grid(&grid_b, &p));
    }

    #[test]
    fn scaled_rows_into_matches_scaled_to() {
        let p = HogParams::pedestrian();
        let map = FeatureMap::extract(&textured(160, 320), &p);
        let reference = map.scaled_by(1.5);
        let (nx, ny) = reference.cells();
        let mut patched = map.scaled_to(nx, ny);
        // Clobber some rows, then repair them through the row-ranged path.
        let row_len = nx * patched.cell_features();
        patched.data[3 * row_len..9 * row_len].fill(f32::NAN);
        map.scaled_rows_into(&mut patched, 3..9);
        assert_eq!(patched, reference);
        // source_rows must report exactly the rows scale_row reads.
        for oy in 0..ny {
            let (y0, y1) = FeatureMap::source_rows(40, ny, oy);
            assert!(y0 <= y1 && y1 < 40);
        }
    }

    #[test]
    fn quantized_is_rounded_q12() {
        let p = HogParams::pedestrian();
        let map = FeatureMap::extract(&textured(64, 128), &p);
        let q = map.quantized();
        assert_eq!(q.cells(), map.cells());
        for (&f, &i) in map.as_raw().iter().zip(q.as_raw()) {
            let want = (f * 4096.0).round().clamp(-4096.0, 4096.0) as i16;
            assert_eq!(i, want);
            assert!(i.unsigned_abs() <= 4096);
        }
    }

    #[test]
    fn from_raw_checks_length() {
        let ok = FeatureMap::from_raw(2, 2, 9, vec![0.0; 2 * 2 * 36]);
        assert_eq!(ok.cells(), (2, 2));
        let bad = std::panic::catch_unwind(|| FeatureMap::from_raw(2, 2, 9, vec![0.0; 10]));
        assert!(bad.is_err());
    }
}
