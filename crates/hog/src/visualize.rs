//! HOG glyph visualization — renders a cell grid as oriented line strokes.
//!
//! Useful for debugging extraction and for the examples: each cell is drawn
//! as a star of strokes, one per orientation bin, with stroke intensity
//! proportional to the bin's share of the cell energy.

use rtped_image::draw::draw_capsule;
use rtped_image::GrayImage;

use crate::grid::CellGrid;

/// Renders `grid` into an image with `cell_px`-pixel cells.
///
/// Strokes are drawn perpendicular to the gradient orientation (i.e. along
/// the edge direction), which is how HOG glyphs are conventionally shown.
///
/// # Panics
///
/// Panics if `cell_px == 0`.
#[must_use]
pub fn render_glyphs(grid: &CellGrid, cell_px: usize) -> GrayImage {
    assert!(cell_px > 0, "cell_px must be non-zero");
    let (cx, cy) = grid.cells();
    let bins = grid.bins();
    let mut img = GrayImage::new(cx * cell_px, cy * cell_px);
    let max = grid
        .as_raw()
        .iter()
        .cloned()
        .fold(f32::MIN, f32::max)
        .max(1e-6);
    let half = cell_px as f64 / 2.0;
    for gy in 0..cy {
        for gx in 0..cx {
            let hist = grid.histogram(gx, gy);
            let center_x = gx as f64 * cell_px as f64 + half;
            let center_y = gy as f64 * cell_px as f64 + half;
            for (bin, &value) in hist.iter().enumerate() {
                if value <= 0.0 {
                    continue;
                }
                let intensity = ((value / max) * 255.0).round().clamp(0.0, 255.0) as u8;
                // Bin center angle; stroke along the edge = gradient + 90°.
                let theta = (bin as f64 + 0.5) * std::f64::consts::PI / bins as f64
                    + std::f64::consts::FRAC_PI_2;
                let dx = theta.cos() * (half - 1.0);
                let dy = theta.sin() * (half - 1.0);
                draw_capsule(
                    &mut img,
                    center_x - dx,
                    center_y - dy,
                    center_x + dx,
                    center_y + dy,
                    1.0,
                    intensity,
                    f64::from(intensity) / 255.0,
                );
            }
        }
    }
    img
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::HogParams;

    #[test]
    fn render_dimensions_match_grid() {
        let img = GrayImage::from_fn(64, 64, |x, y| ((x * 5 + y * 9) % 256) as u8);
        let p = HogParams::builder().window(64, 64).build().unwrap();
        let grid = CellGrid::compute(&img, &p);
        let glyphs = render_glyphs(&grid, 16);
        assert_eq!(glyphs.dimensions(), (8 * 16, 8 * 16));
    }

    #[test]
    fn empty_grid_renders_black() {
        let mut img = GrayImage::new(64, 64);
        img.fill(128);
        let p = HogParams::builder().window(64, 64).build().unwrap();
        let grid = CellGrid::compute(&img, &p);
        let glyphs = render_glyphs(&grid, 8);
        assert!(glyphs.as_raw().iter().all(|&v| v == 0));
    }

    #[test]
    fn edge_produces_visible_strokes() {
        let img = GrayImage::from_fn(64, 64, |x, _| if x < 32 { 0 } else { 255 });
        let p = HogParams::builder().window(64, 64).build().unwrap();
        let grid = CellGrid::compute(&img, &p);
        let glyphs = render_glyphs(&grid, 12);
        assert!(glyphs.as_raw().iter().any(|&v| v > 100));
    }

    #[test]
    #[should_panic(expected = "cell_px must be non-zero")]
    fn zero_cell_px_panics() {
        let img = GrayImage::new(64, 64);
        let p = HogParams::builder().window(64, 64).build().unwrap();
        let grid = CellGrid::compute(&img, &p);
        let _ = render_glyphs(&grid, 0);
    }
}
