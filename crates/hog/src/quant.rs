//! Fixed-point feature storage and the integer scoring kernel of the i16
//! datapath — the CPU mirror of the paper's fixed-point hardware MACs.
//!
//! This module is **integer-only by construction**: it never names a
//! floating-point type, and `rtped-lint` enforces that (rule
//! `FLOAT_IN_QUANT_KERNEL`). All float → integer conversion happens at the
//! designated boundaries — `FeatureMap::quantize_rows_into` for features
//! and `rtped_svm::QuantModel` for weights — so every arithmetic operation
//! here is exact two's-complement integer math. That is what makes the
//! i16 path bit-reproducible across hosts, compilers, and thread counts:
//! integer addition is associative, so any evaluation order of the window
//! sum yields the same bits.
//!
//! ## Overflow contract
//!
//! Features are clamped to `±2^FEATURE_FRAC_BITS` at the quantization
//! boundary. Weights must satisfy
//! `max|w| * 2^FEATURE_FRAC_BITS * row_len < 2^31` (enforced by
//! `QuantModel`'s scale selection), so one window row's dot product fits
//! an `i32` without wrapping; rows are then reduced in `i64`, which has
//! headroom for billions of rows.

use std::ops::Range;

/// Fraction bits of quantized features (Q12: unit value = 4096).
///
/// Chosen two bits above the ~Q10 floor where the PR-4 quantization
/// ablation first shows accuracy drift, while leaving i32 headroom for
/// 288-term rows at useful weight precision.
pub const FEATURE_FRAC_BITS: u32 = 12;

/// Cell-major `i16` feature plane — the quantized twin of `FeatureMap`,
/// with the identical layout
/// `data[(cy * cells_x + cx) * 4 * bins + role * bins + bin]`
/// so the scoring kernel's inner loop is a contiguous, stride-1 dot
/// product that rustc autovectorizes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantFeatureMap {
    cells_x: usize,
    cells_y: usize,
    bins: usize,
    data: Vec<i16>,
}

impl QuantFeatureMap {
    /// Creates a zeroed map of the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    #[must_use]
    pub fn new(cells_x: usize, cells_y: usize, bins: usize) -> Self {
        assert!(cells_x > 0 && cells_y > 0 && bins > 0, "empty feature map");
        Self {
            cells_x,
            cells_y,
            bins,
            data: vec![0i16; cells_x * cells_y * 4 * bins],
        }
    }

    /// Grid size `(cells_x, cells_y)`.
    #[must_use]
    pub fn cells(&self) -> (usize, usize) {
        (self.cells_x, self.cells_y)
    }

    /// Orientation bin count per role.
    #[must_use]
    pub fn bins(&self) -> usize {
        self.bins
    }

    /// Features per cell (`4 * bins`).
    #[must_use]
    pub fn cell_features(&self) -> usize {
        4 * self.bins
    }

    /// Borrows the raw quantized buffer (cell-major).
    #[must_use]
    pub fn as_raw(&self) -> &[i16] {
        &self.data
    }

    /// Mutably borrows the data of cell rows `rows` (the quantization
    /// boundary writes through this).
    ///
    /// # Panics
    ///
    /// Panics if `rows` is out of bounds.
    pub fn rows_mut(&mut self, rows: Range<usize>) -> &mut [i16] {
        assert!(rows.end <= self.cells_y, "cell rows out of bounds");
        let row_len = self.cells_x * 4 * self.bins;
        &mut self.data[rows.start * row_len..rows.end * row_len]
    }

    /// Scores every window of window-row `cy`: window `col` spans cells
    /// `(col * stride .. col * stride + wc, cy .. cy + hc)` and its raw
    /// integer decision value (feature Q-bits times weight Q-bits, no bias)
    /// is written to `out[col]`.
    ///
    /// Each window row is a contiguous `wc * 4 * bins`-term i16 dot
    /// product accumulated in `i32` — exact under the module's overflow
    /// contract — and rows reduce in `i64`. Being all-integer, the result
    /// is identical for any band split or thread count.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != hc * wc * 4 * bins`, if `out` is
    /// shorter than `cols`, or if any window exceeds the map bounds.
    #[allow(clippy::too_many_arguments)] // bare window geometry, kept flat for the hot path
    pub fn score_window_row(
        &self,
        weights: &[i16],
        wc: usize,
        hc: usize,
        cy: usize,
        cols: usize,
        stride: usize,
        out: &mut [i64],
    ) {
        let f = self.cell_features();
        let row_len = wc * f;
        assert_eq!(weights.len(), hc * row_len, "weight length mismatch");
        assert!(out.len() >= cols, "output buffer too short");
        assert!(cy + hc <= self.cells_y, "window rows out of bounds");
        let gx = self.cells_x;
        assert!(
            cols == 0 || (cols - 1) * stride + wc <= gx,
            "window columns out of bounds"
        );
        for (col, o) in out.iter_mut().take(cols).enumerate() {
            let cx = col * stride;
            let mut total: i64 = 0;
            for dy in 0..hc {
                let base = ((cy + dy) * gx + cx) * f;
                let frow = &self.data[base..base + row_len];
                let wrow = &weights[dy * row_len..(dy + 1) * row_len];
                let mut acc: i32 = 0;
                for (&w, &v) in wrow.iter().zip(frow) {
                    // rtped-lint: allow(unchecked-arith-in-fixed-datapath, "DESIGN.md §13: the weight fraction shift is chosen so one window row's dot product fits i32 for any representable Q12 inputs; keeping the bare MAC preserves autovectorization of the hot loop")
                    acc += i32::from(w) * i32::from(v);
                }
                total = total.wrapping_add(i64::from(acc));
            }
            *o = total;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_map_is_zeroed() {
        let q = QuantFeatureMap::new(3, 4, 9);
        assert_eq!(q.cells(), (3, 4));
        assert_eq!(q.cell_features(), 36);
        assert!(q.as_raw().iter().all(|&v| v == 0));
    }

    #[test]
    fn rows_mut_spans_exactly_the_requested_rows() {
        let mut q = QuantFeatureMap::new(2, 3, 9);
        q.rows_mut(1..2).fill(7);
        let row_len = 2 * 36;
        let raw = q.as_raw();
        assert!(raw[..row_len].iter().all(|&v| v == 0));
        assert!(raw[row_len..2 * row_len].iter().all(|&v| v == 7));
        assert!(raw[2 * row_len..].iter().all(|&v| v == 0));
    }

    #[test]
    fn score_window_row_matches_naive_dot() {
        // 4x3-cell map, 2x2-cell window, stride 1: 3 columns.
        let mut q = QuantFeatureMap::new(4, 3, 9);
        for (i, v) in q.rows_mut(0..3).iter_mut().enumerate() {
            *v = (i % 31) as i16 - 15;
        }
        let f = q.cell_features();
        let (wc, hc) = (2usize, 2usize);
        let weights: Vec<i16> = (0..hc * wc * f).map(|i| (i % 23) as i16 - 11).collect();
        let mut out = vec![0i64; 3];
        q.score_window_row(&weights, wc, hc, 1, 3, 1, &mut out);
        for (col, &got) in out.iter().enumerate() {
            let mut want: i64 = 0;
            for dy in 0..hc {
                for dx in 0..wc {
                    for k in 0..f {
                        let v = q.as_raw()[((1 + dy) * 4 + col + dx) * f + k];
                        let w = weights[(dy * wc + dx) * f + k];
                        want += i64::from(v) * i64::from(w);
                    }
                }
            }
            assert_eq!(got, want, "column {col}");
        }
    }

    #[test]
    #[should_panic(expected = "weight length mismatch")]
    fn score_checks_weight_length() {
        let q = QuantFeatureMap::new(4, 3, 9);
        let mut out = vec![0i64; 1];
        q.score_window_row(&[0i16; 10], 2, 2, 0, 1, 1, &mut out);
    }
}
