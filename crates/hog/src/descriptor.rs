//! Classic Dalal–Triggs window descriptors (overlapping blocks) and
//! conversions between descriptor layouts.
//!
//! Two layouts coexist in this workspace:
//!
//! - **classic**: all overlapping 2×2-cell blocks of the window, each
//!   normalized as a unit — 7×15 blocks × 36 = 3780 values for 64×128.
//!   This is what software HOG implementations and LibLinear-trained
//!   models typically use.
//! - **cell-major**: per-cell 4-role normalized features
//!   ([`crate::feature_map::FeatureMap`]) — 8×16 cells × 36 = 4608 values.
//!   This is the hardware layout; it contains the same information as the
//!   classic layout for interior cells plus replicated borders.

use rtped_image::GrayImage;

use crate::block::{block_feature, NormKind};
use crate::feature_map::{CellRole, FeatureMap};
use crate::grid::CellGrid;
use crate::params::HogParams;

/// Extracts the classic overlapping-block descriptor of an image whose size
/// equals the detection window (the Fig. 3 test-bench path).
///
/// # Panics
///
/// Panics if `img` dimensions differ from `params.window_size()`.
#[must_use]
pub fn window_descriptor(img: &GrayImage, params: &HogParams) -> Vec<f32> {
    let (ww, wh) = params.window_size();
    assert_eq!(
        img.dimensions(),
        (ww, wh),
        "image must match the detection window size"
    );
    let grid = CellGrid::compute(img, params);
    descriptor_from_grid(&grid, 0, 0, params)
}

/// Extracts the classic descriptor for the window with top-left cell
/// `(cx, cy)` from a precomputed [`CellGrid`].
///
/// # Panics
///
/// Panics if the window extends past the grid.
#[must_use]
pub fn descriptor_from_grid(grid: &CellGrid, cx: usize, cy: usize, params: &HogParams) -> Vec<f32> {
    let (cells_x, cells_y) = grid.cells();
    let (wc, hc) = params.window_cells();
    assert!(
        cx + wc <= cells_x && cy + hc <= cells_y,
        "window out of bounds"
    );
    let (bx_count, by_count) = params.window_blocks();
    let stride = params.block_stride_cells();
    let bc = params.block_cells();
    let mut out = Vec::with_capacity(params.descriptor_len());
    for by in 0..by_count {
        for bx in 0..bx_count {
            let block = block_feature(
                grid.as_raw(),
                cells_x,
                cells_y,
                grid.bins(),
                cx + bx * stride,
                cy + by * stride,
                bc,
                params.norm(),
            );
            out.extend_from_slice(&block);
        }
    }
    out
}

/// Rebuilds a classic descriptor from the cell-major [`FeatureMap`] layout.
///
/// Block `(bx, by)` of the window is reassembled from the role slots of its
/// four cells: the LU slot of cell `(bx, by)`, the RU slot of
/// `(bx + 1, by)`, the LB slot of `(bx, by + 1)` and the RB slot of
/// `(bx + 1, by + 1)` — all four reference the *same* physical block, so
/// the reconstruction is exact for interior blocks.
///
/// This only holds for the canonical geometry (`block_cells == 2`,
/// `block_stride_cells == 1`).
///
/// # Panics
///
/// Panics if the window extends past the map or the geometry is not
/// canonical.
#[must_use]
pub fn classic_from_cell_major(
    map: &FeatureMap,
    cx: usize,
    cy: usize,
    params: &HogParams,
) -> Vec<f32> {
    assert_eq!(
        params.block_cells(),
        2,
        "cell-major layout needs 2x2 blocks"
    );
    assert_eq!(
        params.block_stride_cells(),
        1,
        "cell-major layout needs stride-1 blocks"
    );
    let (wc, hc) = params.window_cells();
    let (cells_x, cells_y) = map.cells();
    assert!(
        cx + wc <= cells_x && cy + hc <= cells_y,
        "window out of bounds"
    );
    let (bx_count, by_count) = params.window_blocks();
    let mut out = Vec::with_capacity(params.descriptor_len());
    for by in 0..by_count {
        for bx in 0..bx_count {
            // Gathered cell order within a block: (0,0), (1,0), (0,1), (1,1).
            out.extend_from_slice(map.cell_role(cx + bx, cy + by, CellRole::Lu));
            out.extend_from_slice(map.cell_role(cx + bx + 1, cy + by, CellRole::Ru));
            out.extend_from_slice(map.cell_role(cx + bx, cy + by + 1, CellRole::Lb));
            out.extend_from_slice(map.cell_role(cx + bx + 1, cy + by + 1, CellRole::Rb));
        }
    }
    out
}

/// L2 distance between two descriptors (test/diagnostic helper).
///
/// # Panics
///
/// Panics if lengths differ.
#[must_use]
pub fn descriptor_distance(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "descriptor lengths differ");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f32>()
        .sqrt()
}

/// Returns `NormKind` actually used for classic extraction — re-exported
/// here so downstream crates need not import `block` for the common case.
#[must_use]
pub fn default_norm() -> NormKind {
    NormKind::default()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn textured(w: usize, h: usize) -> GrayImage {
        GrayImage::from_fn(w, h, |x, y| ((x * 31 + y * 17 + (x * y) % 23) % 256) as u8)
    }

    #[test]
    fn classic_descriptor_length() {
        let p = HogParams::pedestrian();
        let d = window_descriptor(&textured(64, 128), &p);
        assert_eq!(d.len(), 3780);
    }

    #[test]
    #[should_panic(expected = "image must match the detection window size")]
    fn window_descriptor_checks_size() {
        let p = HogParams::pedestrian();
        let _ = window_descriptor(&textured(64, 64), &p);
    }

    #[test]
    fn descriptor_values_bounded() {
        let p = HogParams::pedestrian();
        let d = window_descriptor(&textured(64, 128), &p);
        for v in d {
            assert!((-1e-6..=1.0 + 1e-4).contains(&v));
        }
    }

    #[test]
    fn grid_offset_descriptor_matches_cropped_extraction() {
        // Extracting at offset (1, 2) cells from a big grid equals
        // extracting at (0, 0) from the corresponding 64x128 crop, because
        // cell histograms are local (no spatial interpolation).
        let p = HogParams::pedestrian();
        let img = textured(96, 160);
        let grid = CellGrid::compute(&img, &p);
        let at_offset = descriptor_from_grid(&grid, 1, 2, &p);
        let crop = img.crop(8, 16, 64, 128);
        let direct = window_descriptor(&crop, &p);
        // Gradients at crop borders differ (clamped borders vs real
        // neighbours), so allow a small relative error.
        let dist = descriptor_distance(&at_offset, &direct);
        let norm: f32 = direct.iter().map(|v| v * v).sum::<f32>().sqrt();
        assert!(
            dist / norm < 0.25,
            "offset extraction diverged: {dist} vs norm {norm}"
        );
    }

    #[test]
    fn cell_major_reconstruction_is_exact() {
        let p = HogParams::pedestrian();
        let img = textured(96, 160);
        let grid = CellGrid::compute(&img, &p);
        let map = FeatureMap::from_cell_grid(&grid, &p);
        let classic = descriptor_from_grid(&grid, 1, 1, &p);
        let rebuilt = classic_from_cell_major(&map, 1, 1, &p);
        assert_eq!(classic.len(), rebuilt.len());
        let dist = descriptor_distance(&classic, &rebuilt);
        assert!(dist < 1e-4, "reconstruction distance {dist}");
    }

    #[test]
    fn cell_major_reconstruction_exact_at_origin_window() {
        // The window at the grid origin exercises the clamped border roles;
        // interior blocks of the window must still be exact.
        let p = HogParams::pedestrian();
        let img = textured(64, 128);
        let grid = CellGrid::compute(&img, &p);
        let map = FeatureMap::from_cell_grid(&grid, &p);
        let classic = descriptor_from_grid(&grid, 0, 0, &p);
        let rebuilt = classic_from_cell_major(&map, 0, 0, &p);
        let dist = descriptor_distance(&classic, &rebuilt);
        assert!(dist < 1e-4, "reconstruction distance {dist}");
    }

    #[test]
    fn descriptor_distance_zero_for_identical() {
        let d = vec![0.5f32; 16];
        assert_eq!(descriptor_distance(&d, &d), 0.0);
    }

    #[test]
    #[should_panic(expected = "descriptor lengths differ")]
    fn descriptor_distance_checks_length() {
        let _ = descriptor_distance(&[0.0; 3], &[0.0; 4]);
    }
}
