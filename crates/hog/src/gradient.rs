//! Image gradients: magnitude and orientation planes (paper eqs. 1–2).

use std::sync::OnceLock;

use rtped_image::GrayImage;

/// Width of one axis of the gradient lookup table: centered differences of
/// 8-bit pixels land in `[-255, 255]`, i.e. 511 distinct values per axis.
pub(crate) const GRAD_LUT_SPAN: usize = 511;

/// Precomputed magnitude/orientation for every centered-difference pair
/// `(fx, fy) ∈ [-255, 255]²`.
///
/// The differences of 8-bit pixels are exact small integers, so `sqrt` and
/// `atan2` are functions of at most 511 × 511 inputs. Each table entry is
/// computed with the *identical* `f32` expressions the scalar path uses,
/// which makes LUT results bit-identical to direct evaluation — this is a
/// speed optimization only, not an approximation (and it mirrors the
/// CORDIC-free arctan tables real HOG accelerators ship).
pub(crate) struct GradLut {
    pub(crate) mag: Vec<f32>,
    pub(crate) ang: Vec<f32>,
}

impl GradLut {
    /// Table index for the integer difference pair `(fx, fy)`.
    #[inline]
    pub(crate) fn index(fx: i32, fy: i32) -> usize {
        ((fy + 255) * GRAD_LUT_SPAN as i32 + (fx + 255)) as usize
    }

    fn build(signed: bool) -> GradLut {
        let mut mag = vec![0.0f32; GRAD_LUT_SPAN * GRAD_LUT_SPAN];
        let mut ang = vec![0.0f32; GRAD_LUT_SPAN * GRAD_LUT_SPAN];
        for fy in -255i32..=255 {
            for fx in -255i32..=255 {
                // Exactly the scalar path's arithmetic: integer-valued f32
                // inputs through the same sqrt/atan2/fold expressions.
                let fxf = fx as f32;
                let fyf = fy as f32;
                let idx = Self::index(fx, fy);
                mag[idx] = (fxf * fxf + fyf * fyf).sqrt();
                ang[idx] = fold_angle(fyf.atan2(fxf), signed);
            }
        }
        GradLut { mag, ang }
    }
}

/// The process-wide gradient tables, one per orientation convention,
/// built lazily on first use (~4 ms, amortized over every frame).
pub(crate) fn grad_lut(signed: bool) -> &'static GradLut {
    static UNSIGNED: OnceLock<GradLut> = OnceLock::new();
    static SIGNED: OnceLock<GradLut> = OnceLock::new();
    if signed {
        SIGNED.get_or_init(|| GradLut::build(true))
    } else {
        UNSIGNED.get_or_init(|| GradLut::build(false))
    }
}

/// Gamma (power-law) intensity normalization applied ahead of gradient
/// computation — Dalal & Triggs' first pipeline stage. `gamma = 0.5`
/// (square-root compression) was their best setting; `1.0` is identity.
///
/// # Panics
///
/// Panics if `gamma` is not finite and positive.
#[must_use]
pub fn gamma_correct(img: &GrayImage, gamma: f32) -> GrayImage {
    assert!(gamma.is_finite() && gamma > 0.0, "gamma must be positive");
    if (gamma - 1.0).abs() < 1e-9 {
        return img.clone();
    }
    // 256-entry LUT, exactly what a hardware implementation would hold.
    let mut lut = [0u8; 256];
    for (i, out) in lut.iter_mut().enumerate() {
        let normalized = (i as f32 / 255.0).powf(gamma);
        *out = (normalized * 255.0).round().clamp(0.0, 255.0) as u8;
    }
    GrayImage::from_fn(img.width(), img.height(), |x, y| {
        lut[usize::from(img.get(x, y))]
    })
}

/// Per-pixel gradient magnitude and orientation for a whole image.
///
/// Gradients use centered differences `fx = I(x+1,y) - I(x-1,y)` and
/// `fy = I(x,y+1) - I(x,y-1)` with clamped borders (the `[-1, 0, 1]` mask
/// Dalal & Triggs found best). Orientation is
/// `θ = atan2(fy, fx)` folded into `[0, π)` for the unsigned convention or
/// `[0, 2π)` for the signed one; magnitude is `sqrt(fx² + fy²)`.
///
/// # Example
///
/// ```
/// use rtped_hog::gradient::GradientField;
/// use rtped_image::GrayImage;
///
/// // A vertical step edge has a horizontal gradient: θ ≈ 0.
/// let img = GrayImage::from_fn(8, 8, |x, _| if x < 4 { 0 } else { 200 });
/// let g = GradientField::compute(&img, false);
/// assert!(g.magnitude(4, 4) > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GradientField {
    width: usize,
    height: usize,
    magnitude: Vec<f32>,
    orientation: Vec<f32>,
    signed: bool,
}

impl GradientField {
    /// Computes the gradient field of `img`.
    ///
    /// `signed` selects the orientation range: `false` folds angles into
    /// `[0, π)` (standard for pedestrians), `true` keeps `[0, 2π)`.
    ///
    /// Internally this looks up magnitude/orientation in a precomputed
    /// 511 × 511 table over the integer difference pair (see [`GradLut`]);
    /// results are bit-identical to evaluating `sqrt`/`atan2` per pixel.
    #[must_use]
    pub fn compute(img: &GrayImage, signed: bool) -> Self {
        let (w, h) = img.dimensions();
        let lut = grad_lut(signed);
        let raw = img.as_raw();
        let mut magnitude = vec![0.0f32; w * h];
        let mut orientation = vec![0.0f32; w * h];
        for y in 0..h {
            let row = &raw[y * w..(y + 1) * w];
            let up = &raw[y.saturating_sub(1) * w..][..w];
            let dn = &raw[(h - 1).min(y + 1) * w..][..w];
            let base = y * w;
            for x in 0..w {
                let xl = x.saturating_sub(1);
                let xr = (x + 1).min(w - 1);
                let fx = i32::from(row[xr]) - i32::from(row[xl]);
                let fy = i32::from(dn[x]) - i32::from(up[x]);
                let e = GradLut::index(fx, fy);
                magnitude[base + x] = lut.mag[e];
                orientation[base + x] = lut.ang[e];
            }
        }
        Self {
            width: w,
            height: h,
            magnitude,
            orientation,
            signed,
        }
    }

    /// Raw centered-difference gradient at `(x, y)` with clamped borders.
    #[must_use]
    pub fn central_difference(img: &GrayImage, x: usize, y: usize) -> (f32, f32) {
        let xi = x as isize;
        let yi = y as isize;
        let fx = f32::from(img.get_clamped(xi + 1, yi)) - f32::from(img.get_clamped(xi - 1, yi));
        let fy = f32::from(img.get_clamped(xi, yi + 1)) - f32::from(img.get_clamped(xi, yi - 1));
        (fx, fy)
    }

    /// Field width in pixels.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Field height in pixels.
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Whether orientations span `[0, 2π)` rather than `[0, π)`.
    #[must_use]
    pub fn signed(&self) -> bool {
        self.signed
    }

    /// Gradient magnitude at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if `(x, y)` is out of bounds.
    #[must_use]
    pub fn magnitude(&self, x: usize, y: usize) -> f32 {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.magnitude[y * self.width + x]
    }

    /// Gradient orientation at `(x, y)` in the configured range.
    ///
    /// # Panics
    ///
    /// Panics if `(x, y)` is out of bounds.
    #[must_use]
    pub fn orientation(&self, x: usize, y: usize) -> f32 {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.orientation[y * self.width + x]
    }

    /// Borrow the raw magnitude plane (row-major).
    #[must_use]
    pub fn magnitude_plane(&self) -> &[f32] {
        &self.magnitude
    }

    /// Borrow the raw orientation plane (row-major).
    #[must_use]
    pub fn orientation_plane(&self) -> &[f32] {
        &self.orientation
    }
}

/// Folds `angle` (from `atan2`, in `(-π, π]`) into `[0, π)` (unsigned) or
/// `[0, 2π)` (signed).
#[must_use]
pub fn fold_angle(angle: f32, signed: bool) -> f32 {
    use std::f32::consts::PI;
    if signed {
        let mut a = angle;
        if a < 0.0 {
            a += 2.0 * PI;
        }
        if a >= 2.0 * PI {
            a -= 2.0 * PI;
        }
        a
    } else {
        let mut a = angle;
        if a < 0.0 {
            a += PI;
        }
        if a >= PI {
            a -= PI;
        }
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f32::consts::PI;

    #[test]
    fn flat_image_has_zero_gradient() {
        let mut img = GrayImage::new(8, 8);
        img.fill(100);
        let g = GradientField::compute(&img, false);
        assert!(g.magnitude_plane().iter().all(|&m| m == 0.0));
    }

    #[test]
    fn vertical_edge_has_horizontal_gradient() {
        let img = GrayImage::from_fn(8, 8, |x, _| if x < 4 { 0 } else { 200 });
        let g = GradientField::compute(&img, false);
        // At the edge column the gradient is purely horizontal: θ = 0.
        assert!(g.magnitude(4, 4) > 0.0);
        assert!(g.orientation(4, 4).abs() < 1e-6);
    }

    #[test]
    fn horizontal_edge_has_vertical_gradient() {
        let img = GrayImage::from_fn(8, 8, |_, y| if y < 4 { 0 } else { 200 });
        let g = GradientField::compute(&img, false);
        assert!(g.magnitude(4, 4) > 0.0);
        assert!((g.orientation(4, 4) - PI / 2.0).abs() < 1e-6);
    }

    #[test]
    fn unsigned_orientation_folds_opposite_directions_together() {
        // Rising and falling edges produce the same unsigned orientation.
        let rising = GrayImage::from_fn(9, 3, |x, _| (x * 28) as u8);
        let falling = GrayImage::from_fn(9, 3, |x, _| ((8 - x) * 28) as u8);
        let gr = GradientField::compute(&rising, false);
        let gf = GradientField::compute(&falling, false);
        assert!((gr.orientation(4, 1) - gf.orientation(4, 1)).abs() < 1e-6);
    }

    #[test]
    fn signed_orientation_distinguishes_directions() {
        let rising = GrayImage::from_fn(9, 3, |x, _| (x * 28) as u8);
        let falling = GrayImage::from_fn(9, 3, |x, _| ((8 - x) * 28) as u8);
        let gr = GradientField::compute(&rising, true);
        let gf = GradientField::compute(&falling, true);
        let diff = (gr.orientation(4, 1) - gf.orientation(4, 1)).abs();
        assert!((diff - PI).abs() < 1e-6, "expected opposite angles");
    }

    #[test]
    fn diagonal_edge_has_45_degree_gradient() {
        // Intensity grows along x+y: gradient points at 45°.
        let img = GrayImage::from_fn(16, 16, |x, y| ((x + y) * 8) as u8);
        let g = GradientField::compute(&img, false);
        assert!((g.orientation(8, 8) - PI / 4.0).abs() < 1e-3);
    }

    #[test]
    fn magnitude_matches_hand_computation() {
        let mut img = GrayImage::new(3, 3);
        img.put(0, 1, 10);
        img.put(2, 1, 50);
        img.put(1, 0, 20);
        img.put(1, 2, 80);
        let g = GradientField::compute(&img, false);
        // fx = 50 - 10 = 40, fy = 80 - 20 = 60.
        assert!((g.magnitude(1, 1) - (40.0f32 * 40.0 + 60.0 * 60.0).sqrt()).abs() < 1e-4);
    }

    #[test]
    fn borders_are_clamped_not_wrapped() {
        // A single bright rightmost column: the leftmost pixel must see no
        // wraparound gradient.
        let img = GrayImage::from_fn(8, 1, |x, _| if x == 7 { 255 } else { 0 });
        let g = GradientField::compute(&img, false);
        assert_eq!(g.magnitude(0, 0), 0.0);
        // x = 6 sees the step.
        assert!(g.magnitude(6, 0) > 0.0);
    }

    #[test]
    fn lut_compute_is_bit_identical_to_scalar_evaluation() {
        let img = GrayImage::from_fn(37, 29, |x, y| ((x * 7 + y * 13 + (x * y) % 5) % 256) as u8);
        for signed in [false, true] {
            let g = GradientField::compute(&img, signed);
            for y in 0..29 {
                for x in 0..37 {
                    let (fx, fy) = GradientField::central_difference(&img, x, y);
                    let m = (fx * fx + fy * fy).sqrt();
                    let o = fold_angle(fy.atan2(fx), signed);
                    assert_eq!(g.magnitude(x, y).to_bits(), m.to_bits(), "mag at {x},{y}");
                    assert_eq!(g.orientation(x, y).to_bits(), o.to_bits(), "ang at {x},{y}");
                }
            }
        }
    }

    #[test]
    fn gamma_identity_is_clone() {
        let img = GrayImage::from_fn(8, 8, |x, y| (x * 31 + y) as u8);
        assert_eq!(gamma_correct(&img, 1.0), img);
    }

    #[test]
    fn gamma_half_is_square_root_compression() {
        let img = GrayImage::from_fn(2, 1, |x, _| if x == 0 { 64 } else { 255 });
        let out = gamma_correct(&img, 0.5);
        // sqrt(64/255)*255 = 127.75 -> 128.
        assert_eq!(out.get(0, 0), 128);
        assert_eq!(out.get(1, 0), 255);
    }

    #[test]
    fn gamma_preserves_extremes_and_monotonicity() {
        let img = GrayImage::from_fn(256, 1, |x, _| x as u8);
        for gamma in [0.4f32, 0.5, 2.0] {
            let out = gamma_correct(&img, gamma);
            assert_eq!(out.get(0, 0), 0);
            assert_eq!(out.get(255, 0), 255);
            for x in 1..256 {
                assert!(
                    out.get(x, 0) >= out.get(x - 1, 0),
                    "gamma {gamma} not monotone"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "gamma must be positive")]
    fn gamma_rejects_zero() {
        let _ = gamma_correct(&GrayImage::new(2, 2), 0.0);
    }

    #[test]
    fn fold_angle_ranges() {
        for signed in [false, true] {
            let limit = if signed { 2.0 * PI } else { PI };
            for i in -314..=314 {
                let a = i as f32 / 100.0;
                let folded = fold_angle(a, signed);
                assert!(
                    (0.0..limit).contains(&folded),
                    "fold_angle({a}, {signed}) = {folded} out of range"
                );
            }
        }
    }
}
