//! Histogram of Oriented Gradients (HOG) feature extraction and the
//! feature-pyramid machinery of the DAC'17 pedestrian-detection paper.
//!
//! # Pipeline
//!
//! The classic Dalal–Triggs chain (paper §3.1, Fig. 1):
//!
//! ```text
//! image -> gradients -> cell histograms -> block normalization -> descriptor
//! ```
//!
//! implemented as:
//!
//! 1. [`gradient`]: centered-difference gradients, magnitude `m(x,y)` and
//!    unsigned orientation `θ(x,y) ∈ [0, π)` (paper eqs. 1–2).
//! 2. [`cell`] / [`grid`]: 8×8-pixel cells, 9 orientation bins, votes split
//!    between the two nearest bins by angular distance (§3.1).
//! 3. [`block`]: 2×2-cell blocks with 1-cell stride, L2-Hys normalization.
//! 4. [`feature_map`]: the *cell-major* layout used by the paper's hardware
//!    ([Hemmati et al., DSD'14]): each cell carries 36 values — its 9 bins
//!    normalized within each of the four covering blocks (LU/RU/LB/RB) — so
//!    a 64×128 window is 8×16 cells × 36 = 4608 features ("16×8 blocks ...
//!    36 elements" in §5).
//! 5. [`descriptor`]: the classic overlapping-block window descriptor
//!    (7×15 blocks × 36 = 3780 for a 64×128 window) plus conversions.
//! 6. [`pyramid`]: **the paper's contribution** — multi-scale detection by
//!    down-sampling the *normalized feature map* ([`pyramid::FeaturePyramid`])
//!    instead of the image ([`pyramid::ImagePyramid`]).
//!
//! # Example
//!
//! ```
//! use rtped_hog::{params::HogParams, feature_map::FeatureMap};
//! use rtped_image::GrayImage;
//!
//! let params = HogParams::pedestrian();
//! let img = GrayImage::from_fn(64, 128, |x, y| ((x * 3 + y) % 256) as u8);
//! let map = FeatureMap::extract(&img, &params);
//! assert_eq!(map.cells(), (8, 16));
//! let descriptor = map.window_descriptor(0, 0, &params);
//! assert_eq!(descriptor.len(), 4608);
//! ```

pub mod block;
pub mod cell;
pub mod descriptor;
pub mod fast;
pub mod feature_map;
pub mod gradient;
pub mod grid;
pub mod params;
pub mod pyramid;
pub mod quant;
pub mod visualize;

pub use feature_map::FeatureMap;
pub use grid::CellGrid;
pub use params::HogParams;
pub use quant::QuantFeatureMap;
