//! Per-cell orientation histograms with bilinear bin voting.
//!
//! Each gradient pixel votes its magnitude into the two orientation bins
//! nearest its angle, weighted by the angular distance to each bin center
//! (paper §3.1: "Two nearest bins to each gradient direction would be
//! updated each by a score which is based on the magnitude of gradient as
//! well as the distance of gradient angle to the edge angle of each bin").

/// Splits one gradient vote between the two nearest orientation bins.
///
/// Bin `i` is centered at `(i + 0.5) * bin_width`. Returns
/// `((bin_a, weight_a), (bin_b, weight_b))` with `weight_a + weight_b ==
/// magnitude`. For the unsigned convention the bins wrap around `π` (bin 8
/// is adjacent to bin 0).
///
/// # Panics
///
/// Panics if `bins == 0` or `bin_width` is not positive.
#[must_use]
pub fn split_vote(
    angle: f32,
    magnitude: f32,
    bins: usize,
    bin_width: f32,
) -> ((usize, f32), (usize, f32)) {
    assert!(bins > 0, "bin count must be non-zero");
    assert!(bin_width > 0.0, "bin width must be positive");
    // Continuous bin coordinate: angle in units of bins, shifted so that
    // bin centers sit at integers.
    let pos = angle / bin_width - 0.5;
    let lower = pos.floor();
    let frac = pos - lower;
    let lower_idx = wrap_bin(lower as isize, bins);
    let upper_idx = wrap_bin(lower as isize + 1, bins);
    (
        (lower_idx, magnitude * (1.0 - frac)),
        (upper_idx, magnitude * frac),
    )
}

fn wrap_bin(idx: isize, bins: usize) -> usize {
    idx.rem_euclid(bins as isize) as usize
}

/// Accumulates a vote into `histogram` via [`split_vote`].
pub fn vote(histogram: &mut [f32], angle: f32, magnitude: f32, bin_width: f32) {
    let bins = histogram.len();
    let ((a, wa), (b, wb)) = split_vote(angle, magnitude, bins, bin_width);
    histogram[a] += wa;
    histogram[b] += wb;
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f32::consts::PI;

    const BIN_WIDTH: f32 = PI / 9.0;

    #[test]
    fn vote_at_bin_center_goes_entirely_to_that_bin() {
        // Center of bin 3: (3 + 0.5) * width.
        let angle = 3.5 * BIN_WIDTH;
        let ((a, wa), (_b, wb)) = split_vote(angle, 2.0, 9, BIN_WIDTH);
        assert_eq!(a, 3);
        assert!((wa - 2.0).abs() < 1e-5);
        assert!(wb.abs() < 1e-5);
    }

    #[test]
    fn vote_at_bin_edge_splits_evenly() {
        // The boundary between bins 2 and 3 is at 3 * width.
        let angle = 3.0 * BIN_WIDTH;
        let ((a, wa), (b, wb)) = split_vote(angle, 1.0, 9, BIN_WIDTH);
        assert_eq!((a, b), (2, 3));
        assert!((wa - 0.5).abs() < 1e-5);
        assert!((wb - 0.5).abs() < 1e-5);
    }

    #[test]
    fn weights_always_sum_to_magnitude() {
        for i in 0..180 {
            let angle = i as f32 * PI / 180.0 * 0.999;
            let ((_, wa), (_, wb)) = split_vote(angle, 3.0, 9, BIN_WIDTH);
            assert!((wa + wb - 3.0).abs() < 1e-4, "angle {angle}");
            assert!(wa >= -1e-6 && wb >= -1e-6);
        }
    }

    #[test]
    fn angle_near_zero_wraps_to_last_bin() {
        // θ slightly above 0 sits below the center of bin 0, so part of the
        // vote wraps to bin 8 (unsigned orientation is circular over π).
        let ((a, wa), (b, wb)) = split_vote(0.01, 1.0, 9, BIN_WIDTH);
        assert_eq!((a, b), (8, 0));
        assert!(wa > 0.0 && wb > 0.0);
        assert!(wb > wa, "most weight should stay in bin 0");
    }

    #[test]
    fn angle_near_pi_wraps_to_first_bin() {
        let ((a, wa), (b, wb)) = split_vote(PI - 0.01, 1.0, 9, BIN_WIDTH);
        assert_eq!((a, b), (8, 0));
        assert!(wa > wb, "most weight should stay in bin 8");
        assert!((wa + wb - 1.0).abs() < 1e-5);
    }

    #[test]
    fn vote_accumulates_into_histogram() {
        let mut hist = vec![0.0f32; 9];
        vote(&mut hist, 3.5 * BIN_WIDTH, 2.0, BIN_WIDTH);
        vote(&mut hist, 3.5 * BIN_WIDTH, 1.0, BIN_WIDTH);
        assert!((hist[3] - 3.0).abs() < 1e-5);
        let total: f32 = hist.iter().sum();
        assert!((total - 3.0).abs() < 1e-5);
    }

    #[test]
    fn zero_magnitude_votes_are_harmless() {
        let mut hist = vec![0.0f32; 9];
        vote(&mut hist, 1.0, 0.0, BIN_WIDTH);
        assert!(hist.iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "bin count must be non-zero")]
    fn zero_bins_panics() {
        let _ = split_vote(0.5, 1.0, 0, BIN_WIDTH);
    }
}
