//! The cell-histogram plane of a whole image.

use std::ops::Range;
use std::sync::OnceLock;

use rtped_image::GrayImage;

use crate::cell;
use crate::gradient::{grad_lut, GradLut, GradientField, GRAD_LUT_SPAN};
use crate::params::HogParams;

/// Precomputed bilinear bin-vote split for the canonical unsigned 9-bin
/// geometry, indexed like [`GradLut`] by the integer difference pair.
///
/// For each `(fx, fy)` it stores the two target bins and the per-bin weight
/// factors of a unit vote, derived from the LUT angle through the identical
/// [`cell::split_vote`] arithmetic — so `mag * one_minus_frac[e]` and
/// `mag * frac[e]` reproduce `split_vote(angle, mag, ..)` bit-for-bit.
struct VoteLut {
    lo: Vec<u8>,
    hi: Vec<u8>,
    one_minus_frac: Vec<f32>,
    frac: Vec<f32>,
}

impl VoteLut {
    fn build(bin_width: f32) -> VoteLut {
        let ang = &grad_lut(false).ang;
        let n = GRAD_LUT_SPAN * GRAD_LUT_SPAN;
        let mut lut = VoteLut {
            lo: vec![0u8; n],
            hi: vec![0u8; n],
            one_minus_frac: vec![0.0f32; n],
            frac: vec![0.0f32; n],
        };
        for (e, &angle) in ang.iter().enumerate().take(n) {
            // A unit-magnitude split: `1.0 * x == x` exactly in IEEE 754,
            // so the returned weights are the bare vote factors.
            let ((a, wa), (b, wb)) = cell::split_vote(angle, 1.0, 9, bin_width);
            lut.lo[e] = a as u8;
            lut.hi[e] = b as u8;
            lut.one_minus_frac[e] = wa;
            lut.frac[e] = wb;
        }
        lut
    }
}

/// The process-wide vote table for the canonical geometry.
fn vote_lut(bin_width: f32) -> &'static VoteLut {
    static LUT: OnceLock<VoteLut> = OnceLock::new();
    LUT.get_or_init(|| VoteLut::build(bin_width))
}

/// Un-normalized orientation histograms for every cell of an image.
///
/// The grid covers `floor(width / cell) x floor(height / cell)` cells;
/// right/bottom pixels that do not fill a whole cell are ignored, matching
/// the streaming hardware which only emits complete cells.
///
/// # Example
///
/// ```
/// use rtped_hog::{grid::CellGrid, params::HogParams};
/// use rtped_image::GrayImage;
///
/// let img = GrayImage::from_fn(64, 128, |x, y| ((x ^ y) as u8).wrapping_mul(3));
/// let grid = CellGrid::compute(&img, &HogParams::pedestrian());
/// assert_eq!(grid.cells(), (8, 16));
/// assert_eq!(grid.histogram(0, 0).len(), 9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CellGrid {
    cells_x: usize,
    cells_y: usize,
    bins: usize,
    data: Vec<f32>,
}

impl CellGrid {
    /// Computes cell histograms for `img` under `params`.
    ///
    /// Without spatial interpolation the gradient and voting stages are
    /// fused: differences are looked up in the gradient table and votes are
    /// accumulated straight into the owning cell, skipping the intermediate
    /// magnitude/orientation planes entirely. The result is bit-identical
    /// to `from_gradients(&GradientField::compute(img, ..), ..)` because
    /// the per-cell pixel visiting order and every float expression are
    /// unchanged.
    ///
    /// # Panics
    ///
    /// Panics if the image is smaller than one cell.
    #[must_use]
    pub fn compute(img: &GrayImage, params: &HogParams) -> Self {
        if params.spatial_interpolation() {
            let field = GradientField::compute(img, params.signed());
            return Self::from_gradients(&field, params);
        }
        let cs = params.cell_size();
        let cells_x = img.width() / cs;
        let cells_y = img.height() / cs;
        assert!(
            cells_x > 0 && cells_y > 0,
            "image smaller than one {cs}px cell"
        );
        let bins = params.bins();
        let mut grid = Self {
            cells_x,
            cells_y,
            bins,
            data: vec![0.0f32; cells_x * cells_y * bins],
        };
        grid.vote_rows(img, params, 0..cells_y);
        grid
    }

    /// Recomputes the histograms of cell rows `rows` in place from `img`,
    /// leaving all other rows untouched.
    ///
    /// Voting without spatial interpolation is row-local (each pixel votes
    /// only into its owning cell), so recomputing a row range from the new
    /// frame yields exactly the histograms a full [`CellGrid::compute`]
    /// would produce — the temporal pyramid cache relies on this.
    ///
    /// # Panics
    ///
    /// Panics if `params` enables spatial interpolation (votes then leak
    /// across rows and row-ranged recomputation would be unsound), if the
    /// image's grid size does not match this grid, or if `rows` is out of
    /// bounds.
    pub fn recompute_rows(&mut self, img: &GrayImage, params: &HogParams, rows: Range<usize>) {
        assert!(
            !params.spatial_interpolation(),
            "row-ranged recompute requires cell-local voting"
        );
        let cs = params.cell_size();
        assert_eq!(
            (img.width() / cs, img.height() / cs),
            (self.cells_x, self.cells_y),
            "image does not match grid dimensions"
        );
        assert!(rows.end <= self.cells_y, "cell rows out of bounds");
        let span = rows.start * self.cells_x * self.bins..rows.end * self.cells_x * self.bins;
        self.data[span].fill(0.0);
        self.vote_rows(img, params, rows);
    }

    /// Fused gradient + vote over the given cell rows. Accumulation order
    /// matches `from_gradients` exactly: per cell `(cy, cx)`, pixels are
    /// visited row-major within the cell and zero-gradient pixels are
    /// skipped (`mag == 0.0` iff `fx == fy == 0`).
    fn vote_rows(&mut self, img: &GrayImage, params: &HogParams, rows: Range<usize>) {
        let cs = params.cell_size();
        let bins = self.bins;
        let bin_width = params.bin_width();
        let lut = grad_lut(params.signed());
        let canonical = !params.signed() && bins == 9;
        let vlut = canonical.then(|| vote_lut(bin_width));
        let raw = img.as_raw();
        let (w, h) = img.dimensions();
        for cy in rows {
            for cx in 0..self.cells_x {
                let base = (cy * self.cells_x + cx) * bins;
                for py in cy * cs..(cy + 1) * cs {
                    let row = &raw[py * w..(py + 1) * w];
                    let up = &raw[py.saturating_sub(1) * w..][..w];
                    let dn = &raw[(h - 1).min(py + 1) * w..][..w];
                    for px in cx * cs..(cx + 1) * cs {
                        let xl = px.saturating_sub(1);
                        let xr = (px + 1).min(w - 1);
                        let fx = i32::from(row[xr]) - i32::from(row[xl]);
                        let fy = i32::from(dn[px]) - i32::from(up[px]);
                        if fx == 0 && fy == 0 {
                            continue;
                        }
                        let e = GradLut::index(fx, fy);
                        let mag = lut.mag[e];
                        let hist = &mut self.data[base..base + bins];
                        if let Some(v) = vlut {
                            hist[usize::from(v.lo[e])] += mag * v.one_minus_frac[e];
                            hist[usize::from(v.hi[e])] += mag * v.frac[e];
                        } else {
                            cell::vote(hist, lut.ang[e], mag, bin_width);
                        }
                    }
                }
            }
        }
    }

    /// Computes cell histograms from a precomputed gradient field
    /// (exposed so multi-stage pipelines can reuse the gradients).
    ///
    /// # Panics
    ///
    /// Panics if the field is smaller than one cell.
    #[must_use]
    pub fn from_gradients(field: &GradientField, params: &HogParams) -> Self {
        let cs = params.cell_size();
        let cells_x = field.width() / cs;
        let cells_y = field.height() / cs;
        assert!(
            cells_x > 0 && cells_y > 0,
            "image smaller than one {cs}px cell"
        );
        let bins = params.bins();
        let bin_width = params.bin_width();
        let mut data = vec![0.0f32; cells_x * cells_y * bins];

        if params.spatial_interpolation() {
            // Dalal-style: each pixel's vote is shared bilinearly among the
            // (up to) four cells whose centers surround it.
            for y in 0..cells_y * cs {
                for x in 0..cells_x * cs {
                    let mag = field.magnitude(x, y);
                    if mag == 0.0 {
                        continue;
                    }
                    let angle = field.orientation(x, y);
                    // Continuous cell coordinates of this pixel.
                    let cxf = (x as f32 + 0.5) / cs as f32 - 0.5;
                    let cyf = (y as f32 + 0.5) / cs as f32 - 0.5;
                    let cx0 = cxf.floor() as isize;
                    let cy0 = cyf.floor() as isize;
                    let tx = cxf - cx0 as f32;
                    let ty = cyf - cy0 as f32;
                    for (dcx, dcy, w) in [
                        (0isize, 0isize, (1.0 - tx) * (1.0 - ty)),
                        (1, 0, tx * (1.0 - ty)),
                        (0, 1, (1.0 - tx) * ty),
                        (1, 1, tx * ty),
                    ] {
                        let cx = cx0 + dcx;
                        let cy = cy0 + dcy;
                        if cx < 0 || cy < 0 || cx >= cells_x as isize || cy >= cells_y as isize {
                            continue;
                        }
                        let base = (cy as usize * cells_x + cx as usize) * bins;
                        cell::vote(&mut data[base..base + bins], angle, mag * w, bin_width);
                    }
                }
            }
        } else {
            // Hardware-style: each pixel votes only into its owning cell.
            for cy in 0..cells_y {
                for cx in 0..cells_x {
                    let base = (cy * cells_x + cx) * bins;
                    for py in cy * cs..(cy + 1) * cs {
                        for px in cx * cs..(cx + 1) * cs {
                            let mag = field.magnitude(px, py);
                            if mag == 0.0 {
                                continue;
                            }
                            cell::vote(
                                &mut data[base..base + bins],
                                field.orientation(px, py),
                                mag,
                                bin_width,
                            );
                        }
                    }
                }
            }
        }

        Self {
            cells_x,
            cells_y,
            bins,
            data,
        }
    }

    /// Grid size `(cells_x, cells_y)`.
    #[must_use]
    pub fn cells(&self) -> (usize, usize) {
        (self.cells_x, self.cells_y)
    }

    /// Orientation bin count.
    #[must_use]
    pub fn bins(&self) -> usize {
        self.bins
    }

    /// Borrows the histogram of cell `(cx, cy)`.
    ///
    /// # Panics
    ///
    /// Panics if the cell is out of bounds.
    #[must_use]
    pub fn histogram(&self, cx: usize, cy: usize) -> &[f32] {
        assert!(cx < self.cells_x && cy < self.cells_y, "cell out of bounds");
        let base = (cy * self.cells_x + cx) * self.bins;
        &self.data[base..base + self.bins]
    }

    /// Total gradient energy (sum of all histogram entries).
    #[must_use]
    pub fn total_energy(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Builds a grid directly from histogram data (for tests and the
    /// hardware model's golden comparisons).
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != cells_x * cells_y * bins` or any dimension
    /// is zero.
    #[must_use]
    pub fn from_raw(cells_x: usize, cells_y: usize, bins: usize, data: Vec<f32>) -> Self {
        assert!(cells_x > 0 && cells_y > 0 && bins > 0, "empty grid");
        assert_eq!(data.len(), cells_x * cells_y * bins, "data length mismatch");
        Self {
            cells_x,
            cells_y,
            bins,
            data,
        }
    }

    /// Borrows the raw histogram buffer (cell-major, `bins` per cell).
    #[must_use]
    pub fn as_raw(&self) -> &[f32] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> HogParams {
        HogParams::pedestrian()
    }

    #[test]
    fn grid_dimensions_floor_partial_cells() {
        let img = GrayImage::new(70, 130);
        let grid = CellGrid::compute(&img, &params());
        assert_eq!(grid.cells(), (8, 16));
    }

    #[test]
    fn flat_image_yields_zero_histograms() {
        let mut img = GrayImage::new(64, 64);
        img.fill(50);
        let grid = CellGrid::compute(&img, &params());
        assert_eq!(grid.total_energy(), 0.0);
    }

    #[test]
    fn vertical_edge_energy_lands_in_horizontal_bin() {
        // Vertical step edge at x=32: horizontal gradient, θ=0, which votes
        // (half-and-half) into bins 8 and 0.
        let img = GrayImage::from_fn(64, 64, |x, _| if x < 32 { 0 } else { 200 });
        let grid = CellGrid::compute(&img, &params());
        // The edge crosses cells with cx = 3 and 4.
        let hist = grid.histogram(4, 3);
        let edge_energy = hist[0] + hist[8];
        let other: f32 = hist[1..8].iter().sum();
        assert!(edge_energy > 0.0);
        assert!(other.abs() < 1e-3, "energy leaked into other bins: {other}");
    }

    #[test]
    fn energy_is_conserved_across_cells() {
        // Without spatial interpolation, the sum over all cell histograms
        // equals the sum of magnitudes over all covered pixels.
        let img = GrayImage::from_fn(32, 32, |x, y| ((x * 7 + y * 13) % 256) as u8);
        let p = HogParams::builder().window(32, 32).build().unwrap();
        let field = GradientField::compute(&img, false);
        let grid = CellGrid::from_gradients(&field, &p);
        let total_mag: f32 = (0..32)
            .flat_map(|y| (0..32).map(move |x| (x, y)))
            .map(|(x, y)| field.magnitude(x, y))
            .sum();
        assert!((grid.total_energy() - total_mag).abs() / total_mag < 1e-4);
    }

    #[test]
    fn spatial_interpolation_conserves_interior_energy() {
        // With bilinear sharing, votes near borders are partially clipped,
        // so total energy is <= the plain sum but > half of it.
        let img = GrayImage::from_fn(64, 64, |x, y| ((x * 3 + y * 5) % 256) as u8);
        let p_plain = HogParams::builder().window(64, 64).build().unwrap();
        let p_interp = HogParams::builder()
            .window(64, 64)
            .spatial_interpolation(true)
            .build()
            .unwrap();
        let plain = CellGrid::compute(&img, &p_plain);
        let interp = CellGrid::compute(&img, &p_interp);
        assert!(interp.total_energy() <= plain.total_energy() + 1e-3);
        assert!(interp.total_energy() > 0.5 * plain.total_energy());
    }

    #[test]
    fn histograms_are_nonnegative() {
        let img = GrayImage::from_fn(64, 128, |x, y| ((x * x + y * 3) % 256) as u8);
        for interp in [false, true] {
            let p = HogParams::builder()
                .spatial_interpolation(interp)
                .build()
                .unwrap();
            let grid = CellGrid::compute(&img, &p);
            assert!(grid.as_raw().iter().all(|&v| v >= -1e-6));
        }
    }

    #[test]
    fn fused_compute_is_bit_identical_to_gradient_path() {
        let img = GrayImage::from_fn(72, 56, |x, y| ((x * 5 + y * 11 + (x * y) % 7) % 256) as u8);
        // Canonical (vote LUT), non-canonical bins, and signed orientation
        // all take the fused path; each must equal the two-stage reference.
        for (bins, signed) in [(9usize, false), (7, false), (9, true)] {
            let p = HogParams::builder()
                .window(64, 48)
                .bins(bins)
                .signed(signed)
                .build()
                .unwrap();
            let fused = CellGrid::compute(&img, &p);
            let field = GradientField::compute(&img, p.signed());
            let reference = CellGrid::from_gradients(&field, &p);
            assert_eq!(fused, reference, "bins={bins} signed={signed}");
        }
    }

    #[test]
    fn recompute_rows_matches_full_compute() {
        let p = params();
        let a = GrayImage::from_fn(64, 64, |x, y| ((x * 3 + y * 7) % 256) as u8);
        let b = GrayImage::from_fn(64, 64, |x, y| ((x * 9 + y * 2 + 31) % 256) as u8);
        let mut grid = CellGrid::compute(&a, &p);
        // Recomputing every row range from `b` must converge on compute(b).
        grid.recompute_rows(&b, &p, 2..5);
        grid.recompute_rows(&b, &p, 0..2);
        grid.recompute_rows(&b, &p, 5..8);
        assert_eq!(grid, CellGrid::compute(&b, &p));
    }

    #[test]
    #[should_panic(expected = "cell-local voting")]
    fn recompute_rows_rejects_spatial_interpolation() {
        let p = HogParams::builder()
            .spatial_interpolation(true)
            .build()
            .unwrap();
        let img = GrayImage::new(64, 128);
        let mut grid = CellGrid::compute(&img, &p);
        grid.recompute_rows(&img, &p, 0..1);
    }

    #[test]
    fn from_raw_roundtrips() {
        let data = vec![1.0f32; 2 * 3 * 9];
        let grid = CellGrid::from_raw(2, 3, 9, data.clone());
        assert_eq!(grid.cells(), (2, 3));
        assert_eq!(grid.as_raw(), data.as_slice());
    }

    #[test]
    #[should_panic(expected = "data length mismatch")]
    fn from_raw_checks_length() {
        let _ = CellGrid::from_raw(2, 2, 9, vec![0.0; 35]);
    }

    #[test]
    #[should_panic(expected = "cell out of bounds")]
    fn histogram_out_of_bounds_panics() {
        let img = GrayImage::new(64, 64);
        let grid = CellGrid::compute(&img, &params());
        let _ = grid.histogram(8, 0);
    }
}
