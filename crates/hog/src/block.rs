//! Block normalization schemes (paper §3.1, final HOG stage).
//!
//! Normalization across groups of adjacent cells ("blocks") suppresses
//! local brightness and contrast variation. Dalal & Triggs evaluated four
//! schemes; L2-Hys is the standard choice for pedestrians and the paper's
//! default.

/// Block normalization scheme.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NormKind {
    /// `v / (||v||_1 + eps)`.
    L1 { epsilon: f32 },
    /// `sqrt(v / (||v||_1 + eps))`.
    L1Sqrt { epsilon: f32 },
    /// `v / sqrt(||v||_2² + eps²)`.
    L2 { epsilon: f32 },
    /// L2, clip every component at `clip`, renormalize (Dalal's L2-Hys).
    L2Hys { epsilon: f32, clip: f32 },
}

impl Default for NormKind {
    /// L2-Hys with the standard `eps = 1e-2` (relative to unit-scale
    /// energies) and `clip = 0.2`.
    fn default() -> Self {
        NormKind::L2Hys {
            epsilon: 1e-2,
            clip: 0.2,
        }
    }
}

impl NormKind {
    /// Normalizes `v` in place according to the scheme.
    ///
    /// All schemes are scale-covariant up to the epsilon regularizer and
    /// leave an all-zero vector all-zero.
    pub fn normalize(&self, v: &mut [f32]) {
        match *self {
            NormKind::L1 { epsilon } => {
                let norm: f32 = v.iter().map(|x| x.abs()).sum::<f32>() + epsilon;
                for x in v.iter_mut() {
                    *x /= norm;
                }
            }
            NormKind::L1Sqrt { epsilon } => {
                let norm: f32 = v.iter().map(|x| x.abs()).sum::<f32>() + epsilon;
                for x in v.iter_mut() {
                    *x = (*x / norm).max(0.0).sqrt();
                }
            }
            NormKind::L2 { epsilon } => {
                let norm = (v.iter().map(|x| x * x).sum::<f32>() + epsilon * epsilon).sqrt();
                for x in v.iter_mut() {
                    *x /= norm;
                }
            }
            NormKind::L2Hys { epsilon, clip } => {
                let norm = (v.iter().map(|x| x * x).sum::<f32>() + epsilon * epsilon).sqrt();
                for x in v.iter_mut() {
                    *x = (*x / norm).min(clip);
                }
                let norm2 = (v.iter().map(|x| x * x).sum::<f32>() + epsilon * epsilon).sqrt();
                for x in v.iter_mut() {
                    *x /= norm2;
                }
            }
        }
    }

    /// Returns a normalized copy of `v`.
    #[must_use]
    pub fn normalized(&self, v: &[f32]) -> Vec<f32> {
        let mut out = v.to_vec();
        self.normalize(&mut out);
        out
    }
}

/// Gathers the `block_cells x block_cells` cell histograms with block origin
/// `(bx, by)` from a cell-major histogram buffer and returns the normalized
/// block feature vector.
///
/// `histograms` is indexed as `histograms[(cy * cells_x + cx) * bins ..]`.
///
/// # Panics
///
/// Panics if the block extends past the grid.
#[must_use]
#[allow(clippy::too_many_arguments)] // grid geometry + block origin + style
pub fn block_feature(
    histograms: &[f32],
    cells_x: usize,
    cells_y: usize,
    bins: usize,
    bx: usize,
    by: usize,
    block_cells: usize,
    norm: NormKind,
) -> Vec<f32> {
    assert!(
        bx + block_cells <= cells_x && by + block_cells <= cells_y,
        "block out of bounds"
    );
    let mut v = Vec::with_capacity(block_cells * block_cells * bins);
    for dy in 0..block_cells {
        for dx in 0..block_cells {
            let base = ((by + dy) * cells_x + (bx + dx)) * bins;
            v.extend_from_slice(&histograms[base..base + bins]);
        }
    }
    norm.normalize(&mut v);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l2(v: &[f32]) -> f32 {
        v.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    fn sample() -> Vec<f32> {
        vec![3.0, 4.0, 0.0, 1.0, 2.0, 0.5, 0.0, 0.0, 1.5]
    }

    #[test]
    fn l2_normalized_has_near_unit_norm() {
        let mut v = sample();
        NormKind::L2 { epsilon: 1e-3 }.normalize(&mut v);
        assert!((l2(&v) - 1.0).abs() < 1e-3);
    }

    #[test]
    fn l1_normalized_sums_to_one() {
        let mut v = sample();
        NormKind::L1 { epsilon: 1e-3 }.normalize(&mut v);
        let sum: f32 = v.iter().sum();
        assert!((sum - 1.0).abs() < 1e-3);
    }

    #[test]
    fn l1_sqrt_components_are_sqrt_of_l1() {
        let v = sample();
        let l1 = NormKind::L1 { epsilon: 1e-3 }.normalized(&v);
        let l1s = NormKind::L1Sqrt { epsilon: 1e-3 }.normalized(&v);
        for (a, b) in l1.iter().zip(&l1s) {
            assert!((a.max(0.0).sqrt() - b).abs() < 1e-5);
        }
    }

    #[test]
    fn l2hys_clips_dominant_components() {
        // One huge component: after L2-Hys it must not exceed clip by much
        // (the renormalization can push it slightly above clip/norm2 but
        // never above clip / (clip) = 1; check against plain L2 instead).
        let mut v = vec![100.0, 1.0, 1.0, 1.0];
        let norm = NormKind::L2Hys {
            epsilon: 1e-3,
            clip: 0.2,
        };
        norm.normalize(&mut v);
        // Clipping caps the dominant component's share *before* the second
        // normalization, so the small components gain relative weight: the
        // small/large ratio grows from 0.01 (plain L2) to ~0.05.
        let plain = NormKind::L2 { epsilon: 1e-3 }.normalized(&[100.0, 1.0, 1.0, 1.0]);
        assert!(v[1] / v[0] > 3.0 * plain[1] / plain[0]);
        assert!(v[0] <= 1.0 + 1e-5);
        assert!((l2(&v) - 1.0).abs() < 0.05);
    }

    #[test]
    fn all_schemes_leave_zero_vector_zero() {
        for norm in [
            NormKind::L1 { epsilon: 1e-2 },
            NormKind::L1Sqrt { epsilon: 1e-2 },
            NormKind::L2 { epsilon: 1e-2 },
            NormKind::default(),
        ] {
            let mut v = vec![0.0f32; 9];
            norm.normalize(&mut v);
            assert!(v.iter().all(|&x| x == 0.0), "{norm:?} created energy");
        }
    }

    #[test]
    fn normalization_is_scale_invariant_for_large_inputs() {
        // For inputs far above epsilon, scaling the input must not change
        // the output.
        let v1: Vec<f32> = sample().iter().map(|x| x * 100.0).collect();
        let v2: Vec<f32> = sample().iter().map(|x| x * 500.0).collect();
        for norm in [
            NormKind::L1 { epsilon: 1e-2 },
            NormKind::L2 { epsilon: 1e-2 },
            NormKind::default(),
        ] {
            let n1 = norm.normalized(&v1);
            let n2 = norm.normalized(&v2);
            for (a, b) in n1.iter().zip(&n2) {
                assert!((a - b).abs() < 1e-3, "{norm:?} not scale invariant");
            }
        }
    }

    #[test]
    fn default_is_l2hys_with_standard_constants() {
        match NormKind::default() {
            NormKind::L2Hys { epsilon, clip } => {
                assert!((clip - 0.2).abs() < 1e-9);
                assert!(epsilon > 0.0);
            }
            other => panic!("unexpected default {other:?}"),
        }
    }

    #[test]
    fn block_feature_gathers_four_cells() {
        // 3x3 grid of 2-bin histograms; block at (1,1) covers cells
        // (1,1),(2,1),(1,2),(2,2).
        let bins = 2;
        let mut hist = vec![0.0f32; 9 * bins];
        for (i, h) in hist.chunks_exact_mut(bins).enumerate() {
            h[0] = i as f32;
            h[1] = 10.0 + i as f32;
        }
        let block = block_feature(&hist, 3, 3, bins, 1, 1, 2, NormKind::L2 { epsilon: 0.0 });
        assert_eq!(block.len(), 8);
        // Unnormalized gathered order: cells 4, 5, 7, 8.
        let raw: Vec<f32> = vec![4.0, 14.0, 5.0, 15.0, 7.0, 17.0, 8.0, 18.0];
        let norm = l2(&raw);
        for (b, r) in block.iter().zip(&raw) {
            assert!((b - r / norm).abs() < 1e-5);
        }
    }

    #[test]
    #[should_panic(expected = "block out of bounds")]
    fn block_feature_checks_bounds() {
        let hist = vec![0.0f32; 9 * 2];
        let _ = block_feature(&hist, 3, 3, 2, 2, 2, 2, NormKind::default());
    }
}
