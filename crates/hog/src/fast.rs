//! Integral histograms (Porikli 2005): O(1) orientation histograms for
//! arbitrary rectangles.
//!
//! The streaming pipeline computes cell histograms in raster order, which
//! is perfect for fixed 8×8 cells but cannot serve variable-geometry
//! queries. An integral histogram — one summed-area table per orientation
//! bin over the per-pixel votes — answers "histogram of any rectangle" in
//! `O(bins)`, which is what variable-window detectors (e.g. the
//! multi-model bank of `rtped-detect`) and region-proposal front-ends
//! (paper ref. \[19\]) build on.

use rtped_image::GrayImage;

use crate::gradient::GradientField;
use crate::grid::CellGrid;
use crate::params::HogParams;

/// Per-bin summed-area tables over orientation votes.
///
/// `table[bin][(y * (w+1) + x)]` holds the sum of that bin's votes over
/// the rectangle `[0, x) × [0, y)`.
///
/// # Example
///
/// ```
/// use rtped_hog::fast::IntegralHistogram;
/// use rtped_hog::params::HogParams;
/// use rtped_image::GrayImage;
///
/// let img = GrayImage::from_fn(32, 32, |x, y| ((x * 9 + y * 5) % 256) as u8);
/// let params = HogParams::pedestrian();
/// let ih = IntegralHistogram::new(&img, &params);
/// let hist = ih.region_histogram(8, 8, 16, 16);
/// assert_eq!(hist.len(), 9);
/// ```
#[derive(Debug, Clone)]
pub struct IntegralHistogram {
    width: usize,
    height: usize,
    bins: usize,
    tables: Vec<Vec<f64>>,
}

impl IntegralHistogram {
    /// Builds the integral histogram of `img` under `params` (votes are
    /// the same magnitude-weighted two-bin splits the standard extractor
    /// uses; spatial interpolation is not supported).
    #[must_use]
    pub fn new(img: &GrayImage, params: &HogParams) -> Self {
        let field = GradientField::compute(img, params.signed());
        Self::from_gradients(&field, params)
    }

    /// Builds from a precomputed gradient field.
    #[must_use]
    pub fn from_gradients(field: &GradientField, params: &HogParams) -> Self {
        let (w, h) = (field.width(), field.height());
        let bins = params.bins();
        let bin_width = params.bin_width();
        let stride = w + 1;
        let mut tables = vec![vec![0.0f64; stride * (h + 1)]; bins];

        // Row-prefix accumulation per bin, like the scalar integral image.
        let mut row_sums = vec![0.0f64; bins];
        for y in 0..h {
            row_sums.fill(0.0);
            for x in 0..w {
                let mag = field.magnitude(x, y);
                if mag > 0.0 {
                    let ((a, wa), (b, wb)) =
                        crate::cell::split_vote(field.orientation(x, y), mag, bins, bin_width);
                    row_sums[a] += f64::from(wa);
                    row_sums[b] += f64::from(wb);
                }
                let idx = (y + 1) * stride + (x + 1);
                for (bin, table) in tables.iter_mut().enumerate() {
                    table[idx] = table[y * stride + (x + 1)] + row_sums[bin];
                }
            }
        }
        Self {
            width: w,
            height: h,
            bins,
            tables,
        }
    }

    /// Source image width.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Source image height.
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Number of orientation bins.
    #[must_use]
    pub fn bins(&self) -> usize {
        self.bins
    }

    /// Orientation histogram of the rectangle at `(x, y)` with size
    /// `w × h`, in `O(bins)`.
    ///
    /// # Panics
    ///
    /// Panics if the rectangle extends past the image.
    #[must_use]
    pub fn region_histogram(&self, x: usize, y: usize, w: usize, h: usize) -> Vec<f32> {
        assert!(
            x + w <= self.width && y + h <= self.height,
            "region out of bounds"
        );
        let stride = self.width + 1;
        let (x1, y1) = (x + w, y + h);
        self.tables
            .iter()
            .map(|t| {
                (t[y1 * stride + x1] + t[y * stride + x] - t[y * stride + x1] - t[y1 * stride + x])
                    as f32
            })
            .collect()
    }

    /// Materializes the standard cell grid from the tables — numerically
    /// equivalent to [`CellGrid::compute`] without spatial interpolation.
    ///
    /// # Panics
    ///
    /// Panics if the image holds less than one cell.
    #[must_use]
    pub fn cell_grid(&self, params: &HogParams) -> CellGrid {
        let cs = params.cell_size();
        let cells_x = self.width / cs;
        let cells_y = self.height / cs;
        assert!(cells_x > 0 && cells_y > 0, "image smaller than one cell");
        let mut data = Vec::with_capacity(cells_x * cells_y * self.bins);
        for cy in 0..cells_y {
            for cx in 0..cells_x {
                data.extend(self.region_histogram(cx * cs, cy * cs, cs, cs));
            }
        }
        CellGrid::from_raw(cells_x, cells_y, self.bins, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn textured(w: usize, h: usize) -> GrayImage {
        GrayImage::from_fn(w, h, |x, y| ((x * 13 + y * 37 + (x * y) % 11) % 256) as u8)
    }

    #[test]
    fn cell_grid_matches_streaming_extractor() {
        let img = textured(64, 128);
        let params = HogParams::pedestrian();
        let ih = IntegralHistogram::new(&img, &params);
        let fast = ih.cell_grid(&params);
        let reference = CellGrid::compute(&img, &params);
        assert_eq!(fast.cells(), reference.cells());
        for (a, b) in fast.as_raw().iter().zip(reference.as_raw()) {
            assert!(
                (a - b).abs() < 1e-2 * (1.0 + b.abs()),
                "integral histogram diverged: {a} vs {b}"
            );
        }
    }

    #[test]
    fn region_histogram_is_additive() {
        // hist(A ∪ B) = hist(A) + hist(B) for adjacent disjoint regions.
        let img = textured(48, 48);
        let params = HogParams::pedestrian();
        let ih = IntegralHistogram::new(&img, &params);
        let whole = ih.region_histogram(8, 8, 32, 16);
        let left = ih.region_histogram(8, 8, 16, 16);
        let right = ih.region_histogram(24, 8, 16, 16);
        for ((w, l), r) in whole.iter().zip(&left).zip(&right) {
            assert!((w - (l + r)).abs() < 1e-2, "{w} vs {} + {}", l, r);
        }
    }

    #[test]
    fn empty_region_on_flat_image_is_zero() {
        let mut img = GrayImage::new(32, 32);
        img.fill(99);
        let params = HogParams::pedestrian();
        let ih = IntegralHistogram::new(&img, &params);
        let hist = ih.region_histogram(0, 0, 32, 32);
        assert!(hist.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn arbitrary_rectangles_work() {
        // Odd offsets and sizes unavailable to the fixed cell grid.
        let img = textured(40, 60);
        let params = HogParams::pedestrian();
        let ih = IntegralHistogram::new(&img, &params);
        let hist = ih.region_histogram(3, 7, 13, 21);
        assert_eq!(hist.len(), 9);
        let total: f32 = hist.iter().sum();
        assert!(total > 0.0);
    }

    #[test]
    #[should_panic(expected = "region out of bounds")]
    fn out_of_bounds_region_panics() {
        let img = textured(16, 16);
        let params = HogParams::pedestrian();
        let ih = IntegralHistogram::new(&img, &params);
        let _ = ih.region_histogram(8, 8, 16, 8);
    }

    #[test]
    fn total_energy_matches_gradient_sum() {
        let img = textured(32, 32);
        let params = HogParams::pedestrian();
        let field = GradientField::compute(&img, false);
        let ih = IntegralHistogram::from_gradients(&field, &params);
        let hist = ih.region_histogram(0, 0, 32, 32);
        let total: f64 = hist.iter().map(|&v| f64::from(v)).sum();
        let expected: f64 = (0..32)
            .flat_map(|y| (0..32).map(move |x| (x, y)))
            .map(|(x, y)| f64::from(field.magnitude(x, y)))
            .sum();
        assert!(
            (total - expected).abs() < expected * 1e-4,
            "{total} vs {expected}"
        );
    }
}
