//! Scale pyramids: the conventional image pyramid and the paper's HOG
//! feature pyramid (§4–§5).
//!
//! To find pedestrians larger than the 64×128 training window, the detector
//! must evaluate the scene at coarser scales. The conventional method
//! ([`ImagePyramid`], Fig. 3a) down-samples the *image* at every level and
//! re-runs the full HOG extraction — the most expensive stage of the chain.
//! The paper's method ([`FeaturePyramid`], Fig. 3b) extracts HOG **once**
//! at the native resolution and down-samples the *normalized feature map*
//! for every further level, skipping the repeated histogram generation
//! entirely. §4 shows the approximation costs at most ~2% accuracy for
//! scale factors below ≈1.5.

use rtped_core::par;
use rtped_image::resize::{scale_by, Filter};
use rtped_image::GrayImage;

use crate::feature_map::FeatureMap;
use crate::params::HogParams;

/// A geometric ladder of scale factors `start * step^i`, capped so the
/// detection window still fits the scaled scene.
///
/// # Example
///
/// ```
/// use rtped_hog::pyramid::scale_ladder;
///
/// let scales = scale_ladder(1.0, 1.2, 4);
/// assert_eq!(scales.len(), 4);
/// assert!((scales[1] - 1.2).abs() < 1e-9);
/// ```
#[must_use]
pub fn scale_ladder(start: f64, step: f64, levels: usize) -> Vec<f64> {
    assert!(start > 0.0 && step > 1.0, "need start > 0 and step > 1");
    (0..levels).map(|i| start * step.powi(i as i32)).collect()
}

/// One level of a pyramid: the scale factor (relative to the native image)
/// and that level's feature map.
#[derive(Debug, Clone)]
pub struct PyramidLevel {
    /// Detected objects at this level are `scale` times larger than the
    /// training window in the native image.
    pub scale: f64,
    /// The feature map to slide the window over.
    pub features: FeatureMap,
}

/// Conventional multi-scale features: re-extract HOG from a resized image
/// at every level (paper Fig. 3a).
#[derive(Debug, Clone)]
pub struct ImagePyramid {
    levels: Vec<PyramidLevel>,
}

impl ImagePyramid {
    /// Builds the pyramid by resizing `img` by `1/scale` per level and
    /// extracting a fresh [`FeatureMap`] each time.
    ///
    /// Levels are built in parallel (each level's resize + extraction is
    /// independent; see `rtped_core::par`) and collected in input-scale
    /// order, so the result is identical to a serial build.
    ///
    /// Levels whose scaled image no longer fits one detection window are
    /// skipped.
    ///
    /// # Panics
    ///
    /// Panics if `scales` contains a non-positive value.
    #[must_use]
    pub fn build(img: &GrayImage, scales: &[f64], params: &HogParams) -> Self {
        let levels = par::map(scales, |&scale| {
            assert!(scale > 0.0, "scales must be positive");
            let scaled = if (scale - 1.0).abs() < 1e-9 {
                img.clone()
            } else {
                scale_by(img, 1.0 / scale, Filter::Bilinear)
            };
            if fits_window(&scaled, params) {
                Some(PyramidLevel {
                    scale,
                    features: FeatureMap::extract(&scaled, params),
                })
            } else {
                None
            }
        })
        .into_iter()
        .flatten()
        .collect();
        Self { levels }
    }

    /// The levels actually built (in the order of the input scales).
    #[must_use]
    pub fn levels(&self) -> &[PyramidLevel] {
        &self.levels
    }
}

/// The paper's multi-scale features: extract HOG once, then down-sample the
/// normalized feature map per level (paper Fig. 3b, Fig. 6).
#[derive(Debug, Clone)]
pub struct FeaturePyramid {
    levels: Vec<PyramidLevel>,
}

impl FeaturePyramid {
    /// Builds the pyramid from a single extraction of `img`.
    ///
    /// Mirroring the pipelined hardware (Fig. 6: each down-scaling module
    /// resizes "the HOG feature of prior scale"), every level is derived
    /// from the *base* map by one bilinear resample to the target grid.
    /// Levels too small to hold one detection window are skipped.
    ///
    /// # Panics
    ///
    /// Panics if `scales` contains a non-positive value or the image is
    /// smaller than one window.
    #[must_use]
    pub fn build(img: &GrayImage, scales: &[f64], params: &HogParams) -> Self {
        let base = FeatureMap::extract(img, params);
        Self::from_base(&base, scales, params)
    }

    /// Builds the pyramid *cascaded*, exactly like the hardware of
    /// Fig. 6: level `i` is resampled from level `i-1`'s features, not
    /// from the base ("a series of pipelined down-scaling modules which
    /// resize the HOG feature of prior scale"). Cascading lets each
    /// hardware scaler be small, at the cost of compounding
    /// interpolation error at deep levels — the `pyramid_cascade` test
    /// and the ablation bench quantify the difference against
    /// [`FeaturePyramid::from_base`].
    ///
    /// `scales` must be sorted ascending with the first equal to 1.0.
    ///
    /// # Panics
    ///
    /// Panics if `scales` is empty, unsorted, or does not start at 1.0.
    #[must_use]
    pub fn build_cascaded(img: &GrayImage, scales: &[f64], params: &HogParams) -> Self {
        assert!(!scales.is_empty(), "need at least one scale");
        assert!(
            (scales[0] - 1.0).abs() < 1e-9,
            "cascaded pyramid must start at scale 1.0"
        );
        assert!(
            scales.windows(2).all(|w| w[1] > w[0]),
            "cascaded scales must be strictly ascending"
        );
        let base = FeatureMap::extract(img, params);
        let (wc, hc) = params.window_cells();
        let (bx, by) = base.cells();
        let mut levels: Vec<PyramidLevel> = Vec::with_capacity(scales.len());
        let mut prev = base.clone();
        let mut prev_scale = 1.0f64;
        for &scale in scales {
            let nx = ((bx as f64 / scale).round() as usize).max(1);
            let ny = ((by as f64 / scale).round() as usize).max(1);
            if nx < wc || ny < hc {
                break; // deeper levels are even smaller
            }
            let features = if (scale - prev_scale).abs() < 1e-9 {
                prev.clone()
            } else {
                // Resample the *previous* level to this level's grid.
                prev.scaled_to(nx, ny)
            };
            prev = features.clone();
            prev_scale = scale;
            levels.push(PyramidLevel { scale, features });
        }
        Self { levels }
    }

    /// Builds the pyramid from an existing base feature map (exposed so
    /// the hardware model and detectors can share the extraction).
    ///
    /// Levels are down-sampled from the base in parallel and collected in
    /// input-scale order — byte-identical to a serial build.
    ///
    /// # Panics
    ///
    /// Panics if `scales` contains a non-positive value.
    #[must_use]
    pub fn from_base(base: &FeatureMap, scales: &[f64], params: &HogParams) -> Self {
        let (wc, hc) = params.window_cells();
        let (bx, by) = base.cells();
        let levels = par::map(scales, |&scale| {
            assert!(scale > 0.0, "scales must be positive");
            let nx = ((bx as f64 / scale).round() as usize).max(1);
            let ny = ((by as f64 / scale).round() as usize).max(1);
            if nx < wc || ny < hc {
                return None;
            }
            let features = if (scale - 1.0).abs() < 1e-9 {
                base.clone()
            } else {
                base.scaled_to(nx, ny)
            };
            Some(PyramidLevel { scale, features })
        })
        .into_iter()
        .flatten()
        .collect();
        Self { levels }
    }

    /// The levels actually built.
    #[must_use]
    pub fn levels(&self) -> &[PyramidLevel] {
        &self.levels
    }
}

fn fits_window(img: &GrayImage, params: &HogParams) -> bool {
    let (ww, wh) = params.window_size();
    img.width() >= ww && img.height() >= wh
}

#[cfg(test)]
mod tests {
    use super::*;

    fn textured(w: usize, h: usize) -> GrayImage {
        GrayImage::from_fn(w, h, |x, y| ((x * 11 + y * 23 + (x * y) % 29) % 256) as u8)
    }

    #[test]
    fn scale_ladder_is_geometric() {
        let s = scale_ladder(1.0, 1.5, 3);
        assert_eq!(s.len(), 3);
        assert!((s[2] - 2.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "need start > 0 and step > 1")]
    fn scale_ladder_rejects_bad_step() {
        let _ = scale_ladder(1.0, 1.0, 3);
    }

    #[test]
    fn image_pyramid_levels_shrink() {
        let p = HogParams::pedestrian();
        let img = textured(256, 512);
        let pyr = ImagePyramid::build(&img, &[1.0, 2.0], &p);
        assert_eq!(pyr.levels().len(), 2);
        assert_eq!(pyr.levels()[0].features.cells(), (32, 64));
        assert_eq!(pyr.levels()[1].features.cells(), (16, 32));
    }

    #[test]
    fn feature_pyramid_levels_shrink() {
        let p = HogParams::pedestrian();
        let img = textured(256, 512);
        let pyr = FeaturePyramid::build(&img, &[1.0, 2.0], &p);
        assert_eq!(pyr.levels().len(), 2);
        assert_eq!(pyr.levels()[0].features.cells(), (32, 64));
        assert_eq!(pyr.levels()[1].features.cells(), (16, 32));
    }

    #[test]
    fn too_small_levels_are_skipped() {
        let p = HogParams::pedestrian();
        // 128x256: scale 2 still fits (8x16 cells exactly); scale 4 does not.
        let img = textured(128, 256);
        let ip = ImagePyramid::build(&img, &[1.0, 2.0, 4.0], &p);
        assert_eq!(ip.levels().len(), 2);
        let fp = FeaturePyramid::build(&img, &[1.0, 2.0, 4.0], &p);
        assert_eq!(fp.levels().len(), 2);
    }

    #[test]
    fn base_level_of_both_pyramids_is_identical() {
        let p = HogParams::pedestrian();
        let img = textured(128, 256);
        let ip = ImagePyramid::build(&img, &[1.0], &p);
        let fp = FeaturePyramid::build(&img, &[1.0], &p);
        assert_eq!(ip.levels()[0].features, fp.levels()[0].features);
    }

    #[test]
    fn pyramids_approximate_each_other_at_moderate_scales() {
        // The paper's core claim: for s <= 1.5 the feature-pyramid level is
        // a usable approximation of the image-pyramid level. Compare mean
        // absolute difference against the mean feature magnitude.
        let p = HogParams::pedestrian();
        let img = textured(192, 384);
        let scale = 1.5;
        let ip = ImagePyramid::build(&img, &[scale], &p);
        let fp = FeaturePyramid::build(&img, &[scale], &p);
        let a = ip.levels()[0].features.as_raw();
        let b = fp.levels()[0].features.as_raw();
        assert_eq!(
            ip.levels()[0].features.cells(),
            fp.levels()[0].features.cells()
        );
        let mad: f32 = a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum::<f32>() / a.len() as f32;
        let mean: f32 = a.iter().map(|x| x.abs()).sum::<f32>() / a.len() as f32;
        assert!(
            mad < mean,
            "feature pyramid too far from image pyramid: mad={mad}, mean={mean}"
        );
    }

    #[test]
    fn level_scales_are_recorded() {
        let p = HogParams::pedestrian();
        let img = textured(256, 512);
        let scales = [1.0, 1.3, 1.69];
        let fp = FeaturePyramid::build(&img, &scales, &p);
        for (level, &expected) in fp.levels().iter().zip(&scales) {
            assert!((level.scale - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn cascaded_pyramid_matches_direct_at_shallow_levels() {
        let p = HogParams::pedestrian();
        let img = textured(256, 512);
        let scales = [1.0, 1.25, 1.5625];
        let direct = FeaturePyramid::build(&img, &scales, &p);
        let cascaded = FeaturePyramid::build_cascaded(&img, &scales, &p);
        assert_eq!(direct.levels().len(), cascaded.levels().len());
        // Level 0 identical; level 1 identical (one resample either way).
        assert_eq!(direct.levels()[0].features, cascaded.levels()[0].features);
        assert_eq!(direct.levels()[1].features, cascaded.levels()[1].features);
        // Level 2: cascade resamples twice -> close but not identical.
        let a = direct.levels()[2].features.as_raw();
        let b = cascaded.levels()[2].features.as_raw();
        let mad: f32 = a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum::<f32>() / a.len() as f32;
        let mean: f32 = a.iter().map(|v| v.abs()).sum::<f32>() / a.len() as f32;
        assert!(mad > 0.0, "cascade should differ at depth 2");
        assert!(
            mad < 0.3 * mean,
            "cascade error too large: mad {mad} vs mean {mean}"
        );
    }

    #[test]
    fn cascaded_pyramid_grid_sizes_match_direct() {
        let p = HogParams::pedestrian();
        let img = textured(320, 512);
        let scales = [1.0, 1.3, 1.69, 2.197];
        let direct = FeaturePyramid::build(&img, &scales, &p);
        let cascaded = FeaturePyramid::build_cascaded(&img, &scales, &p);
        for (d, c) in direct.levels().iter().zip(cascaded.levels()) {
            assert_eq!(d.features.cells(), c.features.cells());
            assert!((d.scale - c.scale).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "must start at scale 1.0")]
    fn cascaded_requires_unit_first_scale() {
        let p = HogParams::pedestrian();
        let _ = FeaturePyramid::build_cascaded(&textured(128, 256), &[1.5], &p);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn cascaded_requires_sorted_scales() {
        let p = HogParams::pedestrian();
        let _ = FeaturePyramid::build_cascaded(&textured(128, 256), &[1.0, 1.5, 1.2], &p);
    }

    #[test]
    fn from_base_reuses_extraction() {
        let p = HogParams::pedestrian();
        let img = textured(128, 256);
        let base = FeatureMap::extract(&img, &p);
        let fp = FeaturePyramid::from_base(&base, &[1.0, 1.25], &p);
        assert_eq!(fp.levels()[0].features, base);
        assert_eq!(fp.levels()[1].features.cells(), (13, 26));
    }
}
