//! HOG extraction parameters.

use rtped_core::Error;

use crate::block::NormKind;

/// Parameters of the HOG extractor and window geometry.
///
/// Defaults follow Dalal & Triggs and the paper's hardware: 8×8-pixel
/// cells, 2×2-cell blocks with 1-cell stride, 9 unsigned orientation bins,
/// L2-Hys normalization, and a 64×128-pixel detection window (8×16 cells).
///
/// Construct with [`HogParams::pedestrian`] or the [`HogParamsBuilder`]:
///
/// ```
/// use rtped_hog::params::HogParams;
///
/// # fn main() -> Result<(), rtped_core::Error> {
/// let params = HogParams::builder().cell_size(4).window(32, 64).build()?;
/// assert_eq!(params.window_cells(), (8, 16));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HogParams {
    cell_size: usize,
    block_cells: usize,
    block_stride_cells: usize,
    bins: usize,
    signed: bool,
    norm: NormKind,
    spatial_interpolation: bool,
    window_width: usize,
    window_height: usize,
}

impl HogParams {
    /// The canonical pedestrian configuration (Dalal–Triggs / paper §3).
    #[must_use]
    pub fn pedestrian() -> Self {
        Self::builder()
            .build()
            .expect("canonical pedestrian parameters are valid")
    }

    /// Starts building a custom configuration.
    #[must_use]
    pub fn builder() -> HogParamsBuilder {
        HogParamsBuilder::new()
    }

    /// Cell side in pixels (cells are square).
    #[must_use]
    pub fn cell_size(&self) -> usize {
        self.cell_size
    }

    /// Block side in cells (blocks are square; 2 means 2×2 cells).
    #[must_use]
    pub fn block_cells(&self) -> usize {
        self.block_cells
    }

    /// Block stride in cells (1 gives the standard overlapping blocks).
    #[must_use]
    pub fn block_stride_cells(&self) -> usize {
        self.block_stride_cells
    }

    /// Number of orientation bins.
    #[must_use]
    pub fn bins(&self) -> usize {
        self.bins
    }

    /// `true` for signed orientation `[0, 2π)`, `false` for the unsigned
    /// `[0, π)` range used for pedestrians.
    #[must_use]
    pub fn signed(&self) -> bool {
        self.signed
    }

    /// Block normalization scheme.
    #[must_use]
    pub fn norm(&self) -> NormKind {
        self.norm
    }

    /// Whether cell votes are bilinearly shared between neighbouring cells
    /// (Dalal's trilinear interpolation). The paper's streaming hardware
    /// votes into the owning cell only, so this defaults to `false`.
    #[must_use]
    pub fn spatial_interpolation(&self) -> bool {
        self.spatial_interpolation
    }

    /// Detection-window size in pixels `(width, height)`.
    #[must_use]
    pub fn window_size(&self) -> (usize, usize) {
        (self.window_width, self.window_height)
    }

    /// Detection-window size in cells `(width, height)` — `(8, 16)` for the
    /// canonical configuration.
    #[must_use]
    pub fn window_cells(&self) -> (usize, usize) {
        (
            self.window_width / self.cell_size,
            self.window_height / self.cell_size,
        )
    }

    /// Blocks per window along `(x, y)` for the overlapping-block layout.
    #[must_use]
    pub fn window_blocks(&self) -> (usize, usize) {
        let (wc, hc) = self.window_cells();
        (
            (wc - self.block_cells) / self.block_stride_cells + 1,
            (hc - self.block_cells) / self.block_stride_cells + 1,
        )
    }

    /// Feature count of one block (cells² × bins): 36 for the canonical
    /// configuration.
    #[must_use]
    pub fn block_features(&self) -> usize {
        self.block_cells * self.block_cells * self.bins
    }

    /// Feature count of one cell in the cell-major layout (4 covering
    /// blocks × bins): 36 for the canonical configuration.
    #[must_use]
    pub fn cell_features(&self) -> usize {
        4 * self.bins
    }

    /// Length of the classic overlapping-block window descriptor
    /// (3780 for the canonical configuration).
    #[must_use]
    pub fn descriptor_len(&self) -> usize {
        let (bx, by) = self.window_blocks();
        bx * by * self.block_features()
    }

    /// Length of the cell-major window descriptor used by the hardware
    /// (8 × 16 cells × 36 = 4608 for the canonical configuration).
    #[must_use]
    pub fn cell_descriptor_len(&self) -> usize {
        let (wc, hc) = self.window_cells();
        wc * hc * self.cell_features()
    }

    /// Angular width of one orientation bin in radians.
    #[must_use]
    pub fn bin_width(&self) -> f32 {
        let range = if self.signed {
            2.0 * std::f32::consts::PI
        } else {
            std::f32::consts::PI
        };
        range / self.bins as f32
    }
}

impl Default for HogParams {
    fn default() -> Self {
        Self::pedestrian()
    }
}

/// Builder for [`HogParams`].
#[derive(Debug, Clone)]
pub struct HogParamsBuilder {
    cell_size: usize,
    block_cells: usize,
    block_stride_cells: usize,
    bins: usize,
    signed: bool,
    norm: NormKind,
    spatial_interpolation: bool,
    window_width: usize,
    window_height: usize,
}

impl HogParamsBuilder {
    fn new() -> Self {
        Self {
            cell_size: 8,
            block_cells: 2,
            block_stride_cells: 1,
            bins: 9,
            signed: false,
            norm: NormKind::default(),
            spatial_interpolation: false,
            window_width: 64,
            window_height: 128,
        }
    }

    /// Sets the cell side in pixels.
    #[must_use]
    pub fn cell_size(mut self, px: usize) -> Self {
        self.cell_size = px;
        self
    }

    /// Sets the block side in cells.
    #[must_use]
    pub fn block_cells(mut self, cells: usize) -> Self {
        self.block_cells = cells;
        self
    }

    /// Sets the block stride in cells.
    #[must_use]
    pub fn block_stride_cells(mut self, cells: usize) -> Self {
        self.block_stride_cells = cells;
        self
    }

    /// Sets the orientation bin count.
    #[must_use]
    pub fn bins(mut self, bins: usize) -> Self {
        self.bins = bins;
        self
    }

    /// Chooses signed (`[0, 2π)`) or unsigned (`[0, π)`) orientations.
    #[must_use]
    pub fn signed(mut self, signed: bool) -> Self {
        self.signed = signed;
        self
    }

    /// Sets the block normalization scheme.
    #[must_use]
    pub fn norm(mut self, norm: NormKind) -> Self {
        self.norm = norm;
        self
    }

    /// Enables bilinear sharing of votes between neighbouring cells.
    #[must_use]
    pub fn spatial_interpolation(mut self, enabled: bool) -> Self {
        self.spatial_interpolation = enabled;
        self
    }

    /// Sets the detection-window size in pixels.
    #[must_use]
    pub fn window(mut self, width: usize, height: usize) -> Self {
        self.window_width = width;
        self.window_height = height;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] when any size is zero, the window
    /// is not a whole number of cells, the window holds fewer cells than one
    /// block, or the stride does not tile the window.
    pub fn build(self) -> Result<HogParams, Error> {
        if self.cell_size == 0 {
            return Err(Error::invalid_input(
                "invalid HOG parameters: cell size must be non-zero",
            ));
        }
        if self.bins == 0 {
            return Err(Error::invalid_input(
                "invalid HOG parameters: bin count must be non-zero",
            ));
        }
        if self.block_cells == 0 || self.block_stride_cells == 0 {
            return Err(Error::invalid_input(
                "invalid HOG parameters: block size and stride must be non-zero",
            ));
        }
        if !self.window_width.is_multiple_of(self.cell_size)
            || !self.window_height.is_multiple_of(self.cell_size)
        {
            return Err(Error::invalid_input(format!(
                "invalid HOG parameters: window {}x{} is not a whole number of {}px cells",
                self.window_width, self.window_height, self.cell_size
            )));
        }
        let wc = self.window_width / self.cell_size;
        let hc = self.window_height / self.cell_size;
        if wc < self.block_cells || hc < self.block_cells {
            return Err(Error::invalid_input(format!(
                "invalid HOG parameters: window of {wc}x{hc} cells cannot hold a {0}x{0}-cell block",
                self.block_cells
            )));
        }
        if !(wc - self.block_cells).is_multiple_of(self.block_stride_cells)
            || !(hc - self.block_cells).is_multiple_of(self.block_stride_cells)
        {
            return Err(Error::invalid_input(
                "invalid HOG parameters: block stride does not tile the window",
            ));
        }
        Ok(HogParams {
            cell_size: self.cell_size,
            block_cells: self.block_cells,
            block_stride_cells: self.block_stride_cells,
            bins: self.bins,
            signed: self.signed,
            norm: self.norm,
            spatial_interpolation: self.spatial_interpolation,
            window_width: self.window_width,
            window_height: self.window_height,
        })
    }
}

impl Default for HogParamsBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pedestrian_geometry_matches_paper() {
        let p = HogParams::pedestrian();
        assert_eq!(p.cell_size(), 8);
        assert_eq!(p.bins(), 9);
        assert_eq!(p.window_size(), (64, 128));
        assert_eq!(p.window_cells(), (8, 16));
        assert_eq!(p.window_blocks(), (7, 15));
        assert_eq!(p.block_features(), 36);
        assert_eq!(p.cell_features(), 36);
        // Classic Dalal descriptor: 105 blocks x 36 = 3780.
        assert_eq!(p.descriptor_len(), 3780);
        // Hardware cell-major descriptor: 8x16 cells x 36 = 4608 ("16x8
        // blocks ... 36 elements" in paper §5).
        assert_eq!(p.cell_descriptor_len(), 4608);
    }

    #[test]
    fn bin_width_unsigned() {
        let p = HogParams::pedestrian();
        assert!((p.bin_width() - std::f32::consts::PI / 9.0).abs() < 1e-6);
    }

    #[test]
    fn bin_width_signed() {
        let p = HogParams::builder().signed(true).build().unwrap();
        assert!((p.bin_width() - 2.0 * std::f32::consts::PI / 9.0).abs() < 1e-6);
    }

    #[test]
    fn builder_rejects_non_cell_aligned_window() {
        assert!(HogParams::builder().window(65, 128).build().is_err());
    }

    #[test]
    fn builder_rejects_zero_sizes() {
        assert!(HogParams::builder().cell_size(0).build().is_err());
        assert!(HogParams::builder().bins(0).build().is_err());
        assert!(HogParams::builder().block_cells(0).build().is_err());
        assert!(HogParams::builder().block_stride_cells(0).build().is_err());
    }

    #[test]
    fn builder_rejects_window_smaller_than_block() {
        assert!(HogParams::builder()
            .window(8, 8)
            .block_cells(2)
            .build()
            .is_err());
    }

    #[test]
    fn builder_rejects_untiled_stride() {
        // 8x16 cells, 3x3 blocks, stride 2: (8-3) % 2 != 0.
        assert!(HogParams::builder()
            .block_cells(3)
            .block_stride_cells(2)
            .build()
            .is_err());
    }

    #[test]
    fn custom_small_geometry() {
        let p = HogParams::builder()
            .cell_size(4)
            .window(16, 16)
            .build()
            .unwrap();
        assert_eq!(p.window_cells(), (4, 4));
        assert_eq!(p.window_blocks(), (3, 3));
        assert_eq!(p.descriptor_len(), 3 * 3 * 36);
    }

    #[test]
    fn default_equals_pedestrian() {
        assert_eq!(HogParams::default(), HogParams::pedestrian());
    }

    #[test]
    fn error_display_is_informative() {
        let err = HogParams::builder().window(65, 128).build().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("invalid HOG parameters"));
        assert!(msg.contains("65x128"));
    }
}
