//! Axis-aligned bounding boxes.

use rtped_core::json::{obj, required_field};
use rtped_core::{Error, FromJson, Json, ToJson};

/// An axis-aligned box in pixel coordinates (top-left origin, inclusive of
/// `x..x+width`).
///
/// # Example
///
/// ```
/// use rtped_detect::BoundingBox;
///
/// let a = BoundingBox::new(0, 0, 10, 10);
/// let b = BoundingBox::new(5, 5, 10, 10);
/// assert!(a.iou(&b) > 0.14 && a.iou(&b) < 0.15);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BoundingBox {
    /// Left edge.
    pub x: i64,
    /// Top edge.
    pub y: i64,
    /// Width in pixels.
    pub width: u64,
    /// Height in pixels.
    pub height: u64,
}

impl BoundingBox {
    /// Creates a box.
    #[must_use]
    pub fn new(x: i64, y: i64, width: u64, height: u64) -> Self {
        Self {
            x,
            y,
            width,
            height,
        }
    }

    /// Box area in pixels.
    #[must_use]
    pub fn area(&self) -> u64 {
        self.width * self.height
    }

    /// Right edge (exclusive).
    #[must_use]
    pub fn right(&self) -> i64 {
        self.x + self.width as i64
    }

    /// Bottom edge (exclusive).
    #[must_use]
    pub fn bottom(&self) -> i64 {
        self.y + self.height as i64
    }

    /// Intersection area with `other`.
    #[must_use]
    pub fn intersection_area(&self, other: &BoundingBox) -> u64 {
        let left = self.x.max(other.x);
        let top = self.y.max(other.y);
        let right = self.right().min(other.right());
        let bottom = self.bottom().min(other.bottom());
        if right <= left || bottom <= top {
            0
        } else {
            ((right - left) as u64) * ((bottom - top) as u64)
        }
    }

    /// Intersection-over-union with `other` in `[0, 1]`.
    #[must_use]
    pub fn iou(&self, other: &BoundingBox) -> f64 {
        let inter = self.intersection_area(other);
        if inter == 0 {
            return 0.0;
        }
        let union = self.area() + other.area() - inter;
        inter as f64 / union as f64
    }

    /// Whether `(px, py)` lies inside the box.
    #[must_use]
    pub fn contains(&self, px: i64, py: i64) -> bool {
        px >= self.x && px < self.right() && py >= self.y && py < self.bottom()
    }

    /// The center point (rounded down).
    #[must_use]
    pub fn center(&self) -> (i64, i64) {
        (
            self.x + (self.width / 2) as i64,
            self.y + (self.height / 2) as i64,
        )
    }

    /// Scales the box about the origin by `s` (used to map detections from
    /// a pyramid level back to native frame coordinates).
    ///
    /// # Panics
    ///
    /// Panics if `s` is not finite and positive.
    #[must_use]
    pub fn scaled(&self, s: f64) -> BoundingBox {
        assert!(s.is_finite() && s > 0.0, "scale must be positive");
        BoundingBox {
            x: (self.x as f64 * s).round() as i64,
            y: (self.y as f64 * s).round() as i64,
            width: ((self.width as f64 * s).round() as u64).max(1),
            height: ((self.height as f64 * s).round() as u64).max(1),
        }
    }
}

impl ToJson for BoundingBox {
    fn to_json(&self) -> Json {
        obj([
            ("x", self.x.into()),
            ("y", self.y.into()),
            ("w", self.width.into()),
            ("h", self.height.into()),
        ])
    }
}

impl FromJson for BoundingBox {
    fn from_json(json: &Json) -> Result<Self, Error> {
        Ok(BoundingBox {
            x: i64::from_json(required_field(json, "x")?)?,
            y: i64::from_json(required_field(json, "y")?)?,
            width: u64::from_json(required_field(json, "w")?)?,
            height: u64::from_json(required_field(json, "h")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_boxes_have_iou_one() {
        let b = BoundingBox::new(3, 4, 10, 20);
        assert!((b.iou(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn json_roundtrip_preserves_every_field() {
        let b = BoundingBox::new(-3, 7, 64, 128);
        let json = b.to_json();
        assert_eq!(json.to_string(), r#"{"x":-3,"y":7,"w":64,"h":128}"#);
        assert_eq!(BoundingBox::from_json(&json).unwrap(), b);
        assert!(BoundingBox::from_json(&Json::Null).is_err());
        let missing = obj([("x", 0i64.into()), ("y", 0i64.into())]);
        assert!(BoundingBox::from_json(&missing).is_err());
    }

    #[test]
    fn disjoint_boxes_have_iou_zero() {
        let a = BoundingBox::new(0, 0, 5, 5);
        let b = BoundingBox::new(10, 10, 5, 5);
        assert_eq!(a.iou(&b), 0.0);
        assert_eq!(a.intersection_area(&b), 0);
    }

    #[test]
    fn touching_boxes_do_not_intersect() {
        let a = BoundingBox::new(0, 0, 5, 5);
        let b = BoundingBox::new(5, 0, 5, 5);
        assert_eq!(a.intersection_area(&b), 0);
    }

    #[test]
    fn half_overlap_iou() {
        let a = BoundingBox::new(0, 0, 10, 10);
        let b = BoundingBox::new(0, 5, 10, 10);
        // Intersection 50, union 150.
        assert!((a.iou(&b) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn iou_is_symmetric() {
        let a = BoundingBox::new(2, 3, 8, 6);
        let b = BoundingBox::new(5, 5, 10, 4);
        assert_eq!(a.iou(&b), b.iou(&a));
    }

    #[test]
    fn contains_and_center() {
        let b = BoundingBox::new(10, 20, 4, 6);
        assert!(b.contains(10, 20));
        assert!(b.contains(13, 25));
        assert!(!b.contains(14, 20));
        assert!(!b.contains(10, 26));
        assert_eq!(b.center(), (12, 23));
    }

    #[test]
    fn negative_coordinates_are_supported() {
        let a = BoundingBox::new(-5, -5, 10, 10);
        let b = BoundingBox::new(0, 0, 10, 10);
        assert_eq!(a.intersection_area(&b), 25);
    }

    #[test]
    fn scaled_maps_to_native_coordinates() {
        let level_box = BoundingBox::new(8, 16, 64, 128);
        let native = level_box.scaled(1.5);
        assert_eq!(native, BoundingBox::new(12, 24, 96, 192));
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn scaled_rejects_zero() {
        let _ = BoundingBox::new(0, 0, 1, 1).scaled(0.0);
    }
}
