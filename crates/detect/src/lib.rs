//! Multi-scale pedestrian detection — the paper's system layer.
//!
//! This crate assembles the HOG and SVM substrates into the two detector
//! configurations the paper compares (Fig. 3) and adds everything a driver
//! assistance system (DAS) needs around them:
//!
//! - [`bbox`]: bounding boxes and IoU.
//! - [`window`]: sliding-window iteration over feature maps (one-cell
//!   stride, exactly the hardware's window schedule).
//! - [`detector`]: the [`detector::Detect`] trait with
//!   [`detector::ImagePyramidDetector`] (conventional, Fig. 3a) and
//!   [`detector::FeaturePyramidDetector`] (the paper's method, Fig. 3b).
//! - [`nms`]: greedy non-maximum suppression for overlapping detections.
//! - [`das`]: the §1 timing model — perception-reaction time, braking and
//!   stopping distances, and the camera model that maps pedestrian
//!   distance to image scale (the 20–60 m requirement).
//!
//! # Example
//!
//! ```
//! use rtped_detect::detector::{Detect, DetectorConfig, FeaturePyramidDetector};
//! use rtped_hog::params::HogParams;
//! use rtped_svm::LinearSvm;
//! use rtped_image::GrayImage;
//!
//! let params = HogParams::pedestrian();
//! // A dummy model that never fires (all-zero weights, negative bias).
//! let model = LinearSvm::new(vec![0.0; params.cell_descriptor_len()], -1.0);
//! let detector = FeaturePyramidDetector::new(model, DetectorConfig::two_scale());
//! let frame = GrayImage::new(320, 240);
//! let detections = detector.detect(&frame);
//! assert!(detections.is_empty());
//! ```

pub mod bbox;
pub mod das;
pub mod detector;
pub mod evaluate;
pub mod kernel;
pub mod mining;
pub mod multimodel;
pub mod nms;
pub mod temporal;
pub mod tracker;
pub mod window;

pub use bbox::BoundingBox;
pub use detector::{
    BuildDetector, Datapath, Detect, Detection, DetectorBuilder, DetectorConfig,
    FeaturePyramidDetector, ImagePyramidDetector, ScanProfile,
};
pub use temporal::TemporalStats;
