//! Temporal tracking of detections across frames.
//!
//! A driver-assistance system acts on *tracks*, not single-frame
//! detections: a pedestrian must persist across frames before braking is
//! warranted, and a single missed frame must not drop an established
//! target. This module provides the standard greedy-IoU tracker used
//! above sliding-window detectors: detections are associated to existing
//! tracks by IoU (highest score first), track boxes are smoothed
//! exponentially, tracks confirm after `min_hits` consecutive
//! associations and die after `max_misses` frames without one.

use crate::bbox::BoundingBox;
use crate::detector::Detection;

/// A tracked pedestrian.
#[derive(Debug, Clone, PartialEq)]
pub struct Track {
    /// Stable identifier, unique within one tracker instance.
    pub id: u64,
    /// Smoothed box in native frame coordinates.
    pub bbox: BoundingBox,
    /// Exponentially smoothed detection score.
    pub score: f64,
    /// Frames since the track was created.
    pub age: u64,
    /// Total number of associated detections.
    pub hits: u64,
    /// Consecutive frames without an associated detection.
    pub misses: u64,
    confirmed: bool,
}

impl Track {
    /// Whether the track has accumulated enough hits to be trusted.
    #[must_use]
    pub fn is_confirmed(&self) -> bool {
        self.confirmed
    }
}

/// Tracker configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct TrackerParams {
    /// Minimum IoU for associating a detection with a track.
    pub iou_threshold: f64,
    /// Hits needed before a track is reported as confirmed.
    pub min_hits: u64,
    /// Consecutive misses before a track is dropped.
    pub max_misses: u64,
    /// Box/score smoothing factor in `(0, 1]`: 1 = no smoothing (snap to
    /// the newest detection).
    pub smoothing: f64,
}

impl Default for TrackerParams {
    fn default() -> Self {
        Self {
            iou_threshold: 0.3,
            min_hits: 3,
            max_misses: 2,
            smoothing: 0.5,
        }
    }
}

/// Greedy-IoU multi-object tracker.
///
/// # Example
///
/// ```
/// use rtped_detect::bbox::BoundingBox;
/// use rtped_detect::detector::Detection;
/// use rtped_detect::tracker::{Tracker, TrackerParams};
///
/// let mut tracker = Tracker::new(TrackerParams::default());
/// let det = Detection {
///     bbox: BoundingBox::new(10, 10, 64, 128),
///     score: 1.0,
///     scale: 1.0,
/// };
/// tracker.step(&[det]);
/// assert_eq!(tracker.tracks().len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Tracker {
    params: TrackerParams,
    tracks: Vec<Track>,
    next_id: u64,
    frames: u64,
}

impl Tracker {
    /// Creates an empty tracker.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are out of range.
    #[must_use]
    pub fn new(params: TrackerParams) -> Self {
        assert!(
            params.iou_threshold > 0.0 && params.iou_threshold <= 1.0,
            "iou threshold must be in (0, 1]"
        );
        assert!(
            params.smoothing > 0.0 && params.smoothing <= 1.0,
            "smoothing must be in (0, 1]"
        );
        assert!(params.min_hits >= 1, "min_hits must be at least 1");
        Self {
            params,
            tracks: Vec::new(),
            next_id: 1,
            frames: 0,
        }
    }

    /// All live tracks (confirmed and tentative).
    #[must_use]
    pub fn tracks(&self) -> &[Track] {
        &self.tracks
    }

    /// Only the confirmed tracks — what a DAS decision layer consumes.
    pub fn confirmed(&self) -> impl Iterator<Item = &Track> {
        self.tracks.iter().filter(|t| t.confirmed)
    }

    /// Number of frames processed.
    #[must_use]
    pub fn frame_count(&self) -> u64 {
        self.frames
    }

    /// Advances one frame: associates `detections` to tracks, updates,
    /// spawns, and reaps. Returns the ids of tracks confirmed *this*
    /// frame (newly actionable targets).
    pub fn step(&mut self, detections: &[Detection]) -> Vec<u64> {
        self.frames += 1;
        for track in &mut self.tracks {
            track.age += 1;
        }

        // Greedy association: strongest detections claim tracks first.
        let mut order: Vec<usize> = (0..detections.len()).collect();
        order.sort_by(|&a, &b| {
            detections[b]
                .score
                .partial_cmp(&detections[a].score)
                .expect("detection scores must not be NaN")
        });
        let mut track_taken = vec![false; self.tracks.len()];
        let mut det_matched = vec![false; detections.len()];
        let mut newly_confirmed = Vec::new();

        for &di in &order {
            let det = &detections[di];
            let mut best: Option<(usize, f64)> = None;
            for (ti, track) in self.tracks.iter().enumerate() {
                if track_taken[ti] {
                    continue;
                }
                let iou = det.bbox.iou(&track.bbox);
                if iou >= self.params.iou_threshold && best.is_none_or(|(_, b)| iou > b) {
                    best = Some((ti, iou));
                }
            }
            if let Some((ti, _)) = best {
                track_taken[ti] = true;
                det_matched[di] = true;
                let was_confirmed = self.tracks[ti].confirmed;
                let alpha = self.params.smoothing;
                let track = &mut self.tracks[ti];
                track.hits += 1;
                track.misses = 0;
                track.score += (det.score - track.score) * alpha;
                track.bbox = blend_boxes(&track.bbox, &det.bbox, alpha);
                if track.hits >= self.params.min_hits {
                    track.confirmed = true;
                    if !was_confirmed {
                        newly_confirmed.push(track.id);
                    }
                }
            }
        }

        // Unmatched tracks miss; reap the stale ones.
        for (ti, taken) in track_taken.iter().enumerate() {
            if !taken {
                self.tracks[ti].misses += 1;
            }
        }
        let max_misses = self.params.max_misses;
        self.tracks.retain(|t| t.misses <= max_misses);

        // Unmatched detections spawn tentative tracks.
        for (di, matched) in det_matched.iter().enumerate() {
            if !matched {
                let det = &detections[di];
                let confirmed = self.params.min_hits <= 1;
                let id = self.next_id;
                self.next_id += 1;
                self.tracks.push(Track {
                    id,
                    bbox: det.bbox,
                    score: det.score,
                    age: 0,
                    hits: 1,
                    misses: 0,
                    confirmed,
                });
                if confirmed {
                    newly_confirmed.push(id);
                }
            }
        }
        newly_confirmed
    }
}

fn blend_boxes(old: &BoundingBox, new: &BoundingBox, alpha: f64) -> BoundingBox {
    let lerp = |a: f64, b: f64| a + (b - a) * alpha;
    BoundingBox::new(
        lerp(old.x as f64, new.x as f64).round() as i64,
        lerp(old.y as f64, new.y as f64).round() as i64,
        (lerp(old.width as f64, new.width as f64).round() as u64).max(1),
        (lerp(old.height as f64, new.height as f64).round() as u64).max(1),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det(x: i64, y: i64, score: f64) -> Detection {
        Detection {
            bbox: BoundingBox::new(x, y, 64, 128),
            score,
            scale: 1.0,
        }
    }

    #[test]
    fn track_confirms_after_min_hits() {
        let mut tracker = Tracker::new(TrackerParams {
            min_hits: 3,
            ..TrackerParams::default()
        });
        assert!(tracker.step(&[det(10, 10, 1.0)]).is_empty());
        assert!(tracker.step(&[det(12, 10, 1.0)]).is_empty());
        let confirmed = tracker.step(&[det(14, 10, 1.0)]);
        assert_eq!(confirmed.len(), 1);
        assert_eq!(tracker.confirmed().count(), 1);
        assert_eq!(tracker.tracks()[0].hits, 3);
    }

    #[test]
    fn identity_is_stable_across_frames() {
        let mut tracker = Tracker::new(TrackerParams::default());
        tracker.step(&[det(10, 10, 1.0)]);
        let id = tracker.tracks()[0].id;
        for k in 1..6 {
            tracker.step(&[det(10 + 3 * k, 10, 1.0)]);
        }
        assert_eq!(tracker.tracks().len(), 1);
        assert_eq!(tracker.tracks()[0].id, id);
        // The smoothed box followed the motion.
        assert!(tracker.tracks()[0].bbox.x > 10);
    }

    #[test]
    fn track_survives_a_missed_frame() {
        let mut tracker = Tracker::new(TrackerParams {
            max_misses: 2,
            min_hits: 1,
            ..TrackerParams::default()
        });
        tracker.step(&[det(10, 10, 1.0)]);
        tracker.step(&[]); // miss 1
        assert_eq!(tracker.tracks().len(), 1);
        tracker.step(&[det(12, 10, 1.0)]); // reacquired
        assert_eq!(tracker.tracks().len(), 1);
        assert_eq!(tracker.tracks()[0].misses, 0);
    }

    #[test]
    fn stale_track_is_reaped() {
        let mut tracker = Tracker::new(TrackerParams {
            max_misses: 1,
            ..TrackerParams::default()
        });
        tracker.step(&[det(10, 10, 1.0)]);
        tracker.step(&[]);
        assert_eq!(tracker.tracks().len(), 1);
        tracker.step(&[]);
        assert!(tracker.tracks().is_empty());
    }

    #[test]
    fn two_targets_keep_separate_identities() {
        let mut tracker = Tracker::new(TrackerParams {
            min_hits: 1,
            ..TrackerParams::default()
        });
        tracker.step(&[det(0, 0, 1.0), det(500, 0, 0.8)]);
        let ids: Vec<u64> = tracker.tracks().iter().map(|t| t.id).collect();
        assert_eq!(ids.len(), 2);
        tracker.step(&[det(4, 0, 1.0), det(504, 0, 0.8)]);
        assert_eq!(tracker.tracks().len(), 2);
        let ids2: Vec<u64> = tracker.tracks().iter().map(|t| t.id).collect();
        assert_eq!(ids, ids2);
    }

    #[test]
    fn strongest_detection_claims_the_contested_track() {
        let mut tracker = Tracker::new(TrackerParams {
            min_hits: 1,
            smoothing: 1.0,
            ..TrackerParams::default()
        });
        tracker.step(&[det(10, 10, 1.0)]);
        // Two detections overlap the track; the stronger claims it, the
        // weaker spawns a new track.
        tracker.step(&[det(12, 10, 0.4), det(11, 10, 2.0)]);
        assert_eq!(tracker.tracks().len(), 2);
        let main = &tracker.tracks()[0];
        assert_eq!(main.hits, 2);
        assert!((main.score - 2.0).abs() < 1e-12, "smoothing 1.0 snaps");
        assert_eq!(main.bbox.x, 11);
    }

    #[test]
    fn smoothing_averages_boxes() {
        let mut tracker = Tracker::new(TrackerParams {
            min_hits: 1,
            smoothing: 0.5,
            ..TrackerParams::default()
        });
        tracker.step(&[det(0, 0, 1.0)]);
        tracker.step(&[det(20, 0, 1.0)]);
        assert_eq!(tracker.tracks()[0].bbox.x, 10);
    }

    #[test]
    fn min_hits_one_confirms_immediately() {
        let mut tracker = Tracker::new(TrackerParams {
            min_hits: 1,
            ..TrackerParams::default()
        });
        let confirmed = tracker.step(&[det(0, 0, 1.0)]);
        assert_eq!(confirmed.len(), 1);
    }

    #[test]
    #[should_panic(expected = "smoothing must be in (0, 1]")]
    fn invalid_smoothing_rejected() {
        let _ = Tracker::new(TrackerParams {
            smoothing: 0.0,
            ..TrackerParams::default()
        });
    }
}
