//! Driver-assistance timing and geometry (paper §1).
//!
//! The introduction derives the detection-range requirement from vehicle
//! dynamics: with a nominal perception-brake reaction time (PRT) of 1.5 s
//! and a deceleration of 6.5 m/s², a vehicle at 50 km/h needs 35.68 m to
//! stop (14.84 m braking + 20.83 m reaction) and 58.3 m at 70 km/h, so
//! "the DAS should be capable of detecting objects within around 20 m to
//! 60 m of distance". This module reproduces that arithmetic and adds the
//! pinhole-camera model that converts pedestrian distance into the image
//! scale the detector must search.

/// Vehicle/driver parameters of the stopping-distance model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DasParams {
    /// Perception-brake reaction time in seconds (paper: nominal 1.5 s,
    /// ranging 0.7 s to ≳1.5 s).
    pub reaction_time_s: f64,
    /// Braking deceleration in m/s² (paper: 6.5 m/s²).
    pub deceleration_mps2: f64,
}

impl Default for DasParams {
    fn default() -> Self {
        Self {
            reaction_time_s: 1.5,
            deceleration_mps2: 6.5,
        }
    }
}

impl DasParams {
    /// Distance traveled during the driver's reaction, `v * t`, for a
    /// speed in km/h.
    ///
    /// # Panics
    ///
    /// Panics if `speed_kmh` is negative.
    #[must_use]
    pub fn reaction_distance_m(&self, speed_kmh: f64) -> f64 {
        assert!(speed_kmh >= 0.0, "speed must be non-negative");
        kmh_to_mps(speed_kmh) * self.reaction_time_s
    }

    /// Braking distance `v² / (2a)` for a speed in km/h.
    ///
    /// # Panics
    ///
    /// Panics if `speed_kmh` is negative or the deceleration is not
    /// positive.
    #[must_use]
    pub fn braking_distance_m(&self, speed_kmh: f64) -> f64 {
        assert!(speed_kmh >= 0.0, "speed must be non-negative");
        assert!(
            self.deceleration_mps2 > 0.0,
            "deceleration must be positive"
        );
        let v = kmh_to_mps(speed_kmh);
        v * v / (2.0 * self.deceleration_mps2)
    }

    /// Total stopping distance: reaction + braking (paper §1).
    #[must_use]
    pub fn stopping_distance_m(&self, speed_kmh: f64) -> f64 {
        self.reaction_distance_m(speed_kmh) + self.braking_distance_m(speed_kmh)
    }

    /// The speed (km/h) at which the vehicle can still stop within
    /// `distance_m` — the inverse of [`DasParams::stopping_distance_m`],
    /// solved from `v·t + v²/2a = d`.
    ///
    /// # Panics
    ///
    /// Panics if `distance_m` is negative.
    #[must_use]
    pub fn max_safe_speed_kmh(&self, distance_m: f64) -> f64 {
        assert!(distance_m >= 0.0, "distance must be non-negative");
        let a = self.deceleration_mps2;
        let t = self.reaction_time_s;
        // v²/(2a) + v t - d = 0  =>  v = a (-t + sqrt(t² + 2 d / a)).
        let v = a * (-t + (t * t + 2.0 * distance_m / a).sqrt());
        mps_to_kmh(v.max(0.0))
    }
}

/// Converts km/h to m/s.
#[must_use]
pub fn kmh_to_mps(kmh: f64) -> f64 {
    kmh / 3.6
}

/// Converts m/s to km/h.
#[must_use]
pub fn mps_to_kmh(mps: f64) -> f64 {
    mps * 3.6
}

/// Pinhole camera model mapping pedestrian distance to image scale.
///
/// At distance `d`, a pedestrian of physical height `H` appears
/// `f · H / d` pixels tall. The detector's base window expects the figure
/// at `figure_px` pixels (≈96 px inside the 128 px window, the INRIA
/// annotation convention), so the required detection scale is
/// `apparent_px / figure_px`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CameraModel {
    /// Focal length in pixels.
    pub focal_px: f64,
    /// Assumed pedestrian height in meters.
    pub pedestrian_height_m: f64,
    /// Figure height (pixels) that corresponds to detection scale 1.0.
    pub figure_px: f64,
}

impl Default for CameraModel {
    /// A typical automotive camera: 1920-wide sensor with ~50° horizontal
    /// FoV ⇒ f ≈ 2000 px; 1.7 m pedestrians; 96 px base figure.
    fn default() -> Self {
        Self {
            focal_px: 2000.0,
            pedestrian_height_m: 1.7,
            figure_px: 96.0,
        }
    }
}

impl CameraModel {
    /// Apparent pedestrian height in pixels at `distance_m`.
    ///
    /// # Panics
    ///
    /// Panics if `distance_m` is not positive.
    #[must_use]
    pub fn apparent_height_px(&self, distance_m: f64) -> f64 {
        assert!(distance_m > 0.0, "distance must be positive");
        self.focal_px * self.pedestrian_height_m / distance_m
    }

    /// The detection scale needed for a pedestrian at `distance_m`.
    ///
    /// # Panics
    ///
    /// Panics if `distance_m` is not positive.
    #[must_use]
    pub fn scale_for_distance(&self, distance_m: f64) -> f64 {
        self.apparent_height_px(distance_m) / self.figure_px
    }

    /// The distance at which a pedestrian requires detection scale
    /// `scale` — the inverse of [`CameraModel::scale_for_distance`].
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not positive.
    #[must_use]
    pub fn distance_for_scale(&self, scale: f64) -> f64 {
        assert!(scale > 0.0, "scale must be positive");
        self.focal_px * self.pedestrian_height_m / (scale * self.figure_px)
    }

    /// The scale ladder (geometric, ratio `step`) covering pedestrians
    /// between `near_m` and `far_m`: the concrete version of the paper's
    /// "detecting objects within around 20 m to 60 m".
    ///
    /// # Panics
    ///
    /// Panics unless `0 < near_m < far_m` and `step > 1`.
    #[must_use]
    pub fn scales_for_range(&self, near_m: f64, far_m: f64, step: f64) -> Vec<f64> {
        assert!(near_m > 0.0 && near_m < far_m, "need 0 < near < far");
        assert!(step > 1.0, "step must exceed 1");
        let max_scale = self.scale_for_distance(near_m);
        let min_scale = self.scale_for_distance(far_m);
        let mut scales = Vec::new();
        let mut s = min_scale;
        while s <= max_scale * step.sqrt() {
            scales.push(s);
            s *= step;
        }
        scales
    }
}

/// Estimates time-to-collision from the growth of a pedestrian's apparent
/// height across frames.
///
/// For an object closing at constant speed, the apparent height `h(t)`
/// satisfies `TTC = h / (dh/dt)` — no camera calibration or absolute
/// distance needed (the classic "tau" estimate from looming). The input
/// is `(timestamp_s, apparent_height_px)` observations, e.g. from
/// consecutive [`crate::tracker::Track`] boxes; a least-squares fit of
/// `1/h` against `t` gives a noise-tolerant estimate.
///
/// Returns `None` when fewer than two distinct timestamps are given or
/// the object is not approaching (height shrinking or constant).
///
/// # Panics
///
/// Panics if any height is not positive.
#[must_use]
pub fn time_to_collision(observations: &[(f64, f64)]) -> Option<f64> {
    if observations.len() < 2 {
        return None;
    }
    assert!(
        observations.iter().all(|&(_, h)| h > 0.0),
        "apparent heights must be positive"
    );
    // For constant closing speed: 1/h(t) = (1/h0) * (1 - t/TTC0), linear
    // in t. Fit y = a + b t with y = 1/h; TTC measured from the LAST
    // observation is -y_last / b.
    let n = observations.len() as f64;
    let (mut st, mut sy, mut stt, mut sty) = (0.0, 0.0, 0.0, 0.0);
    for &(t, h) in observations {
        let y = 1.0 / h;
        st += t;
        sy += y;
        stt += t * t;
        sty += t * y;
    }
    let denom = n * stt - st * st;
    if denom.abs() < 1e-12 {
        return None; // no time spread
    }
    let b = (n * sty - st * sy) / denom;
    if b >= -1e-12 {
        return None; // 1/h not decreasing => not approaching
    }
    let a = (sy - b * st) / n;
    let t_last = observations
        .iter()
        .map(|&(t, _)| t)
        .fold(f64::NEG_INFINITY, f64::max);
    let y_last = a + b * t_last;
    if y_last <= 0.0 {
        return None; // already "past" the collision in the fit
    }
    Some(-y_last / b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_braking_distance_at_50_kmh() {
        let das = DasParams::default();
        // Paper: 14.84 m at 50 km/h with a = 6.5 m/s².
        assert!((das.braking_distance_m(50.0) - 14.84).abs() < 0.01);
    }

    #[test]
    fn paper_braking_distance_at_70_kmh() {
        let das = DasParams::default();
        // Paper prints 29.16 m; the exact arithmetic gives 29.08 m — we
        // match the formula, not the typo.
        assert!((das.braking_distance_m(70.0) - 29.08).abs() < 0.02);
    }

    #[test]
    fn paper_stopping_distance_at_50_kmh() {
        let das = DasParams::default();
        // Paper: 35.68 m total at 50 km/h.
        assert!((das.stopping_distance_m(50.0) - 35.68).abs() < 0.02);
    }

    #[test]
    fn paper_stopping_distance_at_70_kmh() {
        let das = DasParams::default();
        // Paper prints 58.23 m; the formula gives 58.25 m.
        assert!((das.stopping_distance_m(70.0) - 58.25).abs() < 0.05);
    }

    #[test]
    fn stopping_distance_supports_the_20_to_60_m_requirement() {
        // The paper concludes DAS must see 20–60 m: 50 km/h needs ~36 m,
        // 70 km/h needs ~58 m; both inside [20, 60].
        let das = DasParams::default();
        for speed in [50.0, 70.0] {
            let d = das.stopping_distance_m(speed);
            assert!((20.0..=60.0).contains(&d), "{speed} km/h -> {d} m");
        }
    }

    #[test]
    fn max_safe_speed_inverts_stopping_distance() {
        let das = DasParams::default();
        for speed in [30.0, 50.0, 70.0, 110.0] {
            let d = das.stopping_distance_m(speed);
            let v = das.max_safe_speed_kmh(d);
            assert!((v - speed).abs() < 1e-9, "{speed} vs {v}");
        }
    }

    #[test]
    fn zero_speed_stops_immediately() {
        let das = DasParams::default();
        assert_eq!(das.stopping_distance_m(0.0), 0.0);
        assert_eq!(das.max_safe_speed_kmh(0.0), 0.0);
    }

    #[test]
    fn unit_conversions_roundtrip() {
        assert!((kmh_to_mps(36.0) - 10.0).abs() < 1e-12);
        assert!((mps_to_kmh(kmh_to_mps(77.7)) - 77.7).abs() < 1e-12);
    }

    #[test]
    fn camera_scale_shrinks_with_distance() {
        let cam = CameraModel::default();
        let near = cam.scale_for_distance(20.0);
        let far = cam.scale_for_distance(60.0);
        assert!(near > far);
        // 1.7 m at 20 m with f = 2000: 170 px ≈ scale 1.77.
        assert!((near - 2000.0 * 1.7 / 20.0 / 96.0).abs() < 1e-12);
    }

    #[test]
    fn distance_for_scale_inverts() {
        let cam = CameraModel::default();
        for d in [15.0, 25.0, 40.0, 60.0] {
            let s = cam.scale_for_distance(d);
            assert!((cam.distance_for_scale(s) - d).abs() < 1e-9);
        }
    }

    #[test]
    fn range_ladder_covers_both_ends() {
        let cam = CameraModel::default();
        let scales = cam.scales_for_range(20.0, 60.0, 1.3);
        assert!(!scales.is_empty());
        let min_needed = cam.scale_for_distance(60.0);
        let max_needed = cam.scale_for_distance(20.0);
        assert!(scales[0] <= min_needed * 1.0001);
        assert!(*scales.last().unwrap() >= max_needed / 1.3);
        // Geometric ladder.
        for pair in scales.windows(2) {
            assert!((pair[1] / pair[0] - 1.3).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "distance must be positive")]
    fn camera_rejects_zero_distance() {
        let _ = CameraModel::default().apparent_height_px(0.0);
    }

    /// Synthesizes looming observations for an object at distance `d0`
    /// closing at `v` m/s, seen by the default camera.
    fn looming(d0: f64, v: f64, dt: f64, n: usize) -> Vec<(f64, f64)> {
        let cam = CameraModel::default();
        (0..n)
            .map(|k| {
                let t = k as f64 * dt;
                let d = d0 - v * t;
                (t, cam.apparent_height_px(d))
            })
            .collect()
    }

    #[test]
    fn ttc_matches_constant_closing_speed() {
        // Object at 30 m closing at 10 m/s, observed for 0.5 s at 60 fps:
        // at the last observation (t = 0.483 s) the true TTC is
        // (30 - 10 * 0.483) / 10 = 2.517 s.
        let obs = looming(30.0, 10.0, 1.0 / 60.0, 30);
        let t_last = obs.last().unwrap().0;
        let expected = (30.0 - 10.0 * t_last) / 10.0;
        let ttc = time_to_collision(&obs).expect("approaching object");
        assert!(
            (ttc - expected).abs() < 0.01,
            "ttc {ttc} vs expected {expected}"
        );
    }

    #[test]
    fn receding_object_has_no_ttc() {
        let obs = looming(30.0, -5.0, 1.0 / 30.0, 10);
        assert_eq!(time_to_collision(&obs), None);
    }

    #[test]
    fn stationary_object_has_no_ttc() {
        let obs: Vec<(f64, f64)> = (0..10).map(|k| (k as f64 * 0.1, 96.0)).collect();
        assert_eq!(time_to_collision(&obs), None);
    }

    #[test]
    fn ttc_needs_two_distinct_timestamps() {
        assert_eq!(time_to_collision(&[(0.0, 100.0)]), None);
        assert_eq!(
            time_to_collision(&[(1.0, 100.0), (1.0, 110.0)]),
            None,
            "no time spread"
        );
    }

    #[test]
    fn ttc_is_robust_to_measurement_noise() {
        // ±2 px of box-height jitter on a 30-frame looming sequence.
        let mut obs = looming(40.0, 8.0, 1.0 / 60.0, 30);
        for (k, o) in obs.iter_mut().enumerate() {
            o.1 += if k % 2 == 0 { 2.0 } else { -2.0 };
        }
        let t_last = obs.last().unwrap().0;
        let expected = (40.0 - 8.0 * t_last) / 8.0;
        let ttc = time_to_collision(&obs).expect("approaching object");
        assert!(
            (ttc - expected).abs() < expected * 0.15,
            "noisy ttc {ttc} vs {expected}"
        );
    }

    #[test]
    fn ttc_pairs_with_the_stopping_distance_requirement() {
        // Braking is safe while the remaining distance (TTC × v) exceeds
        // the total stopping distance, i.e. TTC > stopping_distance / v.
        // At 50 km/h the stopping distance is 35.68 m => 2.57 s of TTC.
        let das = DasParams::default();
        let v = kmh_to_mps(50.0);
        let needed = das.stopping_distance_m(50.0) / v;
        // Pedestrian first seen at 45 m: still safely brakeable.
        let obs = looming(45.0, v, 1.0 / 60.0, 20);
        let ttc = time_to_collision(&obs).expect("approaching");
        assert!(
            ttc > needed,
            "45 m at 50 km/h leaves {ttc:.2} s, needs {needed:.2} s"
        );
        // First seen at 30 m: inside the stopping distance — too late,
        // which is exactly why §1 demands detection out to ~60 m.
        let obs = looming(30.0, v, 1.0 / 60.0, 20);
        let ttc = time_to_collision(&obs).expect("approaching");
        assert!(ttc < needed, "30 m should be too late: {ttc:.2} s");
    }

    #[test]
    #[should_panic(expected = "apparent heights must be positive")]
    fn ttc_rejects_nonpositive_heights() {
        let _ = time_to_collision(&[(0.0, 10.0), (0.1, 0.0)]);
    }
}
