//! Temporal incremental pyramids for video: diff consecutive frames,
//! rebuild only the rows that changed, reuse everything else — including
//! the previous frame's pre-NMS scan results.
//!
//! Every stage of the feature pipeline is row-local with a bounded halo:
//!
//! - a pixel row feeds the votes of cell rows whose pixel span overlaps
//!   `[p − 1, p + 1]` (the centered-difference `fy` reads one row up/down);
//! - a cell histogram row feeds feature rows `cy − 1 ..= cy + 1` (2×2-cell
//!   block normalization; the border clamp stays inside that halo);
//! - a base feature row feeds the pyramid-level rows whose two bilinear
//!   source rows ([`FeatureMap::source_rows`]) include it;
//! - a level row feeds the window rows `ry` with `ry * stride ≤ row <
//!   ry * stride + hc`.
//!
//! Propagating dirtiness through those exact dependency sets and
//! recomputing precisely the dirty rows with the *same* code the cold path
//! runs (`CellGrid::recompute_rows`, `FeatureMap::update_rows`,
//! `FeatureMap::scaled_rows_into`, the blocked kernels) therefore yields a
//! pyramid — and a detection list — bit-identical to a full rebuild. A
//! frame whose dirty pixel rows exceed half the height (a scene cut) is
//! rebuilt from scratch instead; that's cheaper than incremental plumbing
//! once most rows moved anyway.

use std::ops::Range;

use rtped_hog::feature_map::FeatureMap;
use rtped_hog::grid::CellGrid;
use rtped_hog::quant::QuantFeatureMap;
use rtped_image::GrayImage;
use rtped_svm::{LinearSvm, QuantModel};

use crate::detector::{
    scan_level_rows, Detection, DetectorConfig, LevelGeometry, RowScorer, PAR_MIN_WINDOWS,
};
use crate::nms::non_maximum_suppression;

/// Counters describing how the temporal cache served its frames.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TemporalStats {
    /// Frames served through the temporal path.
    pub frames: u64,
    /// Frames that rebuilt the whole pyramid (first frame, dimension
    /// change, scene cut).
    pub full_builds: u64,
    /// Frames served by row-ranged incremental updates.
    pub incremental: u64,
    /// Frames identical to their predecessor (results reused outright).
    pub unchanged: u64,
}

/// One cached pyramid level: its features, the datapath-specific scoring
/// plane derived from them, and the pre-NMS hits of every window row.
#[derive(Debug)]
struct CachedLevel {
    scale: f64,
    features: FeatureMap,
    /// Preconverted f64 plane (f32 datapath only).
    raw64: Option<Vec<f64>>,
    /// Quantized plane (i16 datapath only).
    qmap: Option<QuantFeatureMap>,
    geom: Option<LevelGeometry>,
    /// Pre-NMS detections per window row (empty when `geom` is `None`).
    row_hits: Vec<Vec<Detection>>,
}

/// The temporal state of one `FeaturePyramidDetector`: the last frame and
/// every derived plane, down to the per-window-row scan results.
#[derive(Debug)]
pub struct PyramidCache {
    frame: GrayImage,
    grid: CellGrid,
    base: FeatureMap,
    levels: Vec<CachedLevel>,
    stats: TemporalStats,
}

impl PyramidCache {
    /// Current counters.
    #[must_use]
    pub fn stats(&self) -> TemporalStats {
        self.stats
    }
}

/// Serves one frame through the cache in `slot`, building or updating it
/// as needed, and returns the final (NMS'd) detections — bit-identical to
/// the stateless `detect` path.
pub(crate) fn detect(
    slot: &mut Option<PyramidCache>,
    frame: &GrayImage,
    model: &LinearSvm,
    quant: Option<&QuantModel>,
    config: &DetectorConfig,
) -> Vec<Detection> {
    let mut stats = slot.as_ref().map(|c| c.stats).unwrap_or_default();
    stats.frames += 1;
    // Spatial-interpolation voting spreads a pixel's vote across cell
    // *columns and rows*, breaking the row-locality the incremental path
    // relies on; such configs always rebuild from scratch.
    let compatible = !config.params.spatial_interpolation()
        && slot
            .as_ref()
            .is_some_and(|c| c.frame.dimensions() == frame.dimensions());
    if compatible {
        if let Some(cache) = slot.as_mut() {
            update(cache, frame, model, quant, config, &mut stats);
            cache.stats = stats;
        }
    } else {
        let mut cache = build(frame, model, quant, config);
        stats.full_builds += 1;
        cache.stats = stats;
        *slot = Some(cache);
    }
    let mut out = Vec::new();
    if let Some(cache) = slot.as_ref() {
        for level in &cache.levels {
            for hits in &level.row_hits {
                out.extend_from_slice(hits);
            }
        }
    }
    match config.nms_iou {
        Some(iou) => non_maximum_suppression(out, iou),
        None => out,
    }
}

/// Builds the full cache for `frame` — the cold path, also used on scene
/// cuts. Level construction mirrors `FeaturePyramid::from_base` exactly
/// (same rounding, same skip rule, same `scale ≈ 1` clone) so the cached
/// pyramid is the one the stateless detector would build.
fn build(
    frame: &GrayImage,
    model: &LinearSvm,
    quant: Option<&QuantModel>,
    config: &DetectorConfig,
) -> PyramidCache {
    let params = &config.params;
    let grid = CellGrid::compute(frame, params);
    let base = FeatureMap::from_cell_grid(&grid, params);
    let (bx, by) = base.cells();
    let (wc, hc) = params.window_cells();
    let levels = config
        .scales
        .iter()
        .filter_map(|&scale| {
            let nx = ((bx as f64 / scale).round() as usize).max(1);
            let ny = ((by as f64 / scale).round() as usize).max(1);
            if nx < wc || ny < hc {
                return None;
            }
            let features = if (scale - 1.0).abs() < 1e-9 {
                base.clone()
            } else {
                base.scaled_to(nx, ny)
            };
            let mut level = CachedLevel {
                scale,
                features,
                raw64: None,
                qmap: None,
                geom: LevelGeometry::for_level((nx, ny), scale, config),
                row_hits: Vec::new(),
            };
            refresh_plane(&mut level, quant.is_some(), None);
            rescan(&mut level, model, quant, config, None);
            Some(level)
        })
        .collect();
    PyramidCache {
        frame: frame.clone(),
        grid,
        base,
        levels,
        stats: TemporalStats::default(),
    }
}

/// Rebuilds a level's datapath plane — wholly (`rows == None`) or for the
/// given cell-row range.
fn refresh_plane(level: &mut CachedLevel, quantized: bool, rows: Option<Range<usize>>) {
    let (_, cy) = level.features.cells();
    let rows = rows.unwrap_or(0..cy);
    if quantized {
        let qmap = level.qmap.get_or_insert_with(|| {
            let (nx, ny) = level.features.cells();
            QuantFeatureMap::new(nx, ny, level.features.bins())
        });
        level.features.quantize_rows_into(qmap, rows);
    } else {
        let raw64 = level
            .raw64
            .get_or_insert_with(|| vec![0.0f64; level.features.as_raw().len()]);
        crate::kernel::update_rows_f64(raw64, &level.features, rows);
    }
}

/// Rescans a level's window rows — all of them (`dirty == None`, banded
/// like the stateless scan) or exactly the listed dirty rows.
fn rescan(
    level: &mut CachedLevel,
    model: &LinearSvm,
    quant: Option<&QuantModel>,
    config: &DetectorConfig,
    dirty: Option<&[usize]>,
) {
    let Some(geom) = level.geom.clone() else {
        level.row_hits.clear();
        return;
    };
    let (gx, _) = level.features.cells();
    let f = level.features.cell_features();
    let scorer = match (quant, &level.qmap, &level.raw64) {
        (Some(qm), Some(qmap), _) => RowScorer::I16 {
            qmap,
            model: qm,
            wc: geom.wc,
            hc: geom.hc,
        },
        (None, _, Some(raw64)) => RowScorer::F32(crate::kernel::F32Kernel::new(
            raw64, gx, f, geom.wc, geom.hc, model,
        )),
        // refresh_plane always ran first; this arm is unreachable.
        _ => return,
    };
    match dirty {
        None => level.row_hits = scan_level_rows(&scorer, &geom, config.threshold),
        Some(rys) => {
            if rys.len() * geom.cols < PAR_MIN_WINDOWS {
                for &ry in rys {
                    level.row_hits[ry] = scorer.row_hits(&geom, config.threshold, ry);
                }
            } else {
                let fresh =
                    rtped_core::par::map(rys, |&ry| scorer.row_hits(&geom, config.threshold, ry));
                for (&ry, hits) in rys.iter().zip(fresh) {
                    level.row_hits[ry] = hits;
                }
            }
        }
    }
}

/// Groups the `true` indices of a dirty mask into contiguous runs.
fn runs(mask: &[bool]) -> Vec<Range<usize>> {
    let mut out = Vec::new();
    let mut start = None;
    for (i, &d) in mask.iter().enumerate() {
        match (d, start) {
            (true, None) => start = Some(i),
            (false, Some(s)) => {
                out.push(s..i);
                start = None;
            }
            _ => {}
        }
    }
    if let Some(s) = start {
        out.push(s..mask.len());
    }
    out
}

/// The incremental path: diff `frame` against the cached one, walk the
/// dirtiness through grid → base → levels → window rows, recompute exactly
/// those, and fall back to a full rebuild past the scene-cut threshold.
fn update(
    cache: &mut PyramidCache,
    frame: &GrayImage,
    model: &LinearSvm,
    quant: Option<&QuantModel>,
    config: &DetectorConfig,
    stats: &mut TemporalStats,
) {
    let (w, h) = frame.dimensions();
    let old = cache.frame.as_raw();
    let new = frame.as_raw();
    let mut dirty_px = vec![false; h];
    let mut n_dirty = 0usize;
    for (y, d) in dirty_px.iter_mut().enumerate() {
        if old[y * w..(y + 1) * w] != new[y * w..(y + 1) * w] {
            *d = true;
            n_dirty += 1;
        }
    }
    if n_dirty == 0 {
        stats.unchanged += 1;
        return;
    }
    if n_dirty * 2 > h {
        // Scene cut: most rows moved, incremental bookkeeping would cost
        // more than it saves.
        let stats_now = *stats;
        *cache = build(frame, model, quant, config);
        cache.stats = stats_now;
        stats.full_builds += 1;
        return;
    }
    stats.incremental += 1;
    let params = &config.params;
    let cs = params.cell_size();
    let (_, by) = cache.base.cells();

    // Pixel rows → cell rows: cell row cy votes from pixel rows
    // cy*cs − 1 ..= (cy+1)*cs (the ±1 halo from centered differences).
    let mut dirty_cell = vec![false; by];
    for (p, _) in dirty_px.iter().enumerate().filter(|(_, &d)| d) {
        let lo = (p.saturating_sub(1)) / cs;
        let hi = ((p + 1) / cs).min(by - 1);
        for d in &mut dirty_cell[lo..=hi] {
            *d = true;
        }
    }
    for r in runs(&dirty_cell) {
        cache.grid.recompute_rows(frame, params, r);
    }

    // Cell rows → base feature rows: ±1 halo from block normalization.
    let mut dirty_base = vec![false; by];
    for (c, _) in dirty_cell.iter().enumerate().filter(|(_, &d)| d) {
        for d in &mut dirty_base[c.saturating_sub(1)..=(c + 1).min(by - 1)] {
            *d = true;
        }
    }
    for r in runs(&dirty_base) {
        cache.base.update_rows(&cache.grid, params, r);
    }

    // Base rows → each level's rows → that level's window rows.
    for level in &mut cache.levels {
        let (_, ny) = level.features.cells();
        let mut dirty_level = vec![false; ny];
        if (level.scale - 1.0).abs() < 1e-9 {
            dirty_level.copy_from_slice(&dirty_base);
        } else {
            for (oy, d) in dirty_level.iter_mut().enumerate() {
                let (y0, y1) = FeatureMap::source_rows(by, ny, oy);
                if dirty_base[y0] || dirty_base[y1] {
                    *d = true;
                }
            }
        }
        let level_runs = runs(&dirty_level);
        if level_runs.is_empty() {
            continue;
        }
        for r in &level_runs {
            cache.base.scaled_rows_into(&mut level.features, r.clone());
            refresh_plane(level, quant.is_some(), Some(r.clone()));
        }
        let Some(geom) = level.geom.clone() else {
            continue;
        };
        // Level rows → window rows: ry covers level rows
        // [ry*stride, ry*stride + hc).
        let mut dirty_ry = vec![false; geom.rows];
        for r in &level_runs {
            // Window rows whose span intersects [r.start, r.end).
            let first = (r.start + 1).saturating_sub(geom.hc).div_ceil(geom.stride);
            for (ry, d) in dirty_ry.iter_mut().enumerate().skip(first) {
                if ry * geom.stride >= r.end {
                    break;
                }
                *d = true;
            }
        }
        let rys: Vec<usize> = dirty_ry
            .iter()
            .enumerate()
            .filter_map(|(ry, &d)| d.then_some(ry))
            .collect();
        rescan(level, model, quant, config, Some(&rys));
    }
    cache.frame = frame.clone();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::{Datapath, Detect, FeaturePyramidDetector};
    use rtped_hog::params::HogParams;

    /// A deterministic model with mixed-sign weights so plenty of windows
    /// cross threshold 0.0 — detections, not empty lists, get compared.
    fn textured_model() -> LinearSvm {
        let dim = HogParams::pedestrian().cell_descriptor_len();
        let weights: Vec<f64> = (0..dim)
            .map(|i| ((i * 2654435761usize) % 2000) as f64 / 1000.0 - 1.0)
            .collect();
        LinearSvm::new(weights, 0.05)
    }

    fn base_frame(w: usize, h: usize) -> GrayImage {
        GrayImage::from_fn(w, h, |x, y| ((x * 7 + y * 13 + (x * y) % 23) % 256) as u8)
    }

    /// `frames[0]` plus a sequence of localized edits, an unchanged frame,
    /// and a near-total rewrite (scene cut).
    fn frame_sequence(w: usize, h: usize) -> Vec<GrayImage> {
        let base = base_frame(w, h);
        let stamp = |src: &GrayImage, x0: usize, y0: usize, bw: usize, bh: usize| {
            GrayImage::from_fn(w, h, |x, y| {
                if x >= x0 && x < x0 + bw && y >= y0 && y < y0 + bh {
                    255 - src.get(x, y)
                } else {
                    src.get(x, y)
                }
            })
        };
        let moved = stamp(&base, 12, 20, 24, 48);
        let moved2 = stamp(&base, 14, 26, 24, 48);
        let cut = GrayImage::from_fn(w, h, |x, y| ((x * 31 + y * 3) % 256) as u8);
        vec![
            base.clone(),
            moved.clone(),
            moved.clone(), // unchanged frame
            moved2,
            cut.clone(),
            stamp(&cut, 60, 4, 16, 30),
        ]
    }

    fn assert_temporal_matches_stateless(datapath: Datapath) {
        let mut config = crate::detector::DetectorConfig::two_scale();
        config.datapath = datapath;
        let stateless = FeaturePyramidDetector::new(textured_model(), config.clone());
        config.temporal = true;
        let temporal = FeaturePyramidDetector::new(textured_model(), config);
        for (i, frame) in frame_sequence(160, 128).iter().enumerate() {
            let got = temporal.detect(frame);
            let want = stateless.detect(frame);
            assert_eq!(got, want, "frame {i} ({datapath})");
            assert!(!want.is_empty(), "frame {i} should produce detections");
        }
        let stats = temporal.temporal_stats().expect("temporal stats");
        assert_eq!(stats.frames, 6);
        assert_eq!(stats.unchanged, 1, "{stats:?}");
        assert!(stats.incremental >= 2, "{stats:?}");
        assert!(stats.full_builds >= 2, "first frame + scene cut: {stats:?}");
    }

    #[test]
    fn f32_temporal_is_bit_identical_to_stateless() {
        assert_temporal_matches_stateless(Datapath::F32);
    }

    #[test]
    fn i16_temporal_is_bit_identical_to_stateless() {
        assert_temporal_matches_stateless(Datapath::I16);
    }

    #[test]
    fn dimension_change_rebuilds_and_reset_clears() {
        let mut config = crate::detector::DetectorConfig::two_scale();
        config.temporal = true;
        let det = FeaturePyramidDetector::new(textured_model(), config);
        det.detect(&base_frame(160, 128));
        det.detect(&base_frame(200, 144));
        let stats = det.temporal_stats().expect("stats");
        assert_eq!(stats.full_builds, 2, "{stats:?}");
        det.reset_temporal_cache();
        assert!(det.temporal_stats().is_none());
    }

    #[test]
    fn runs_groups_contiguous_true_spans() {
        assert_eq!(runs(&[]), vec![]);
        assert_eq!(runs(&[false, false]), vec![]);
        assert_eq!(runs(&[true, true, false, true]), vec![0..2, 3..4]);
        assert_eq!(runs(&[false, true]), vec![1..2]);
    }
}
