//! Multi-model single-scale detection — the alternative the paper's
//! related work discusses (Benenson et al. \[1\], Dollár et al. \[5\]):
//! instead of rescaling the *data* (image or features), train one SVM per
//! scale and slide differently-sized windows over a single feature map,
//! "transferring the computation from test time to training time" (§2).
//!
//! A scale-`s` model sees windows of `round(8·s) × round(16·s)` cells on
//! the native feature map; its training samples are the base training
//! windows up-sampled by `s`. At detection time the base map is extracted
//! once and *no* scaling of any kind happens.

use rtped_hog::feature_map::FeatureMap;
use rtped_hog::params::HogParams;
use rtped_image::resize::{scale_by, Filter};
use rtped_image::GrayImage;
use rtped_svm::dcd::{train_dcd, DcdParams};
use rtped_svm::model::Label;
use rtped_svm::LinearSvm;

use crate::bbox::BoundingBox;
use crate::detector::Detection;
use crate::nms::non_maximum_suppression;

/// One per-scale classifier: the scale, its window size in cells, and its
/// trained model (dimensionality `wc · hc · 36`).
#[derive(Debug, Clone)]
pub struct ScaleModel {
    /// The object scale this model detects.
    pub scale: f64,
    /// Window width in cells.
    pub window_cells_x: usize,
    /// Window height in cells.
    pub window_cells_y: usize,
    /// The trained classifier.
    pub model: LinearSvm,
}

/// A bank of per-scale models sharing one feature extraction.
#[derive(Debug, Clone)]
pub struct MultiModelDetector {
    models: Vec<ScaleModel>,
    params: HogParams,
    threshold: f64,
    nms_iou: Option<f64>,
}

impl MultiModelDetector {
    /// Trains one model per scale from base-scale training windows.
    ///
    /// For each scale `s`, every training window is resized by `s`
    /// (bicubic, like the §4 test-set preparation), features are
    /// extracted at the enlarged size, and a model with the enlarged
    /// window geometry is trained.
    ///
    /// # Panics
    ///
    /// Panics if `scales` is empty, any scale is not ≥ 1.0, training
    /// data is missing a class, or windows mismatch `params`.
    #[must_use]
    pub fn train(
        training: &[(GrayImage, Label)],
        scales: &[f64],
        params: &HogParams,
        svm: &DcdParams,
    ) -> Self {
        assert!(!scales.is_empty(), "need at least one scale");
        let (wc, hc) = params.window_cells();
        let mut models = Vec::with_capacity(scales.len());
        for &scale in scales {
            assert!(scale >= 1.0, "multi-model scales must be >= 1.0");
            let wcx = ((wc as f64) * scale).round() as usize;
            let wcy = ((hc as f64) * scale).round() as usize;
            let samples: Vec<(Vec<f32>, Label)> = training
                .iter()
                .map(|(img, label)| {
                    let scaled = if (scale - 1.0).abs() < 1e-9 {
                        img.clone()
                    } else {
                        scale_by(img, scale, Filter::Bicubic)
                    };
                    let map = FeatureMap::extract_centered(&scaled, params);
                    // The scaled window may come out one cell off from the
                    // target geometry; resample the features to the model
                    // grid (training-time cost only).
                    let map = map.scaled_to(wcx, wcy);
                    let mut d = Vec::with_capacity(wcx * wcy * map.cell_features());
                    for cy in 0..wcy {
                        for cx in 0..wcx {
                            d.extend_from_slice(map.cell(cx, cy));
                        }
                    }
                    (d, *label)
                })
                .collect();
            let model = train_dcd(&samples, svm);
            models.push(ScaleModel {
                scale,
                window_cells_x: wcx,
                window_cells_y: wcy,
                model,
            });
        }
        Self {
            models,
            params: params.clone(),
            threshold: 0.0,
            nms_iou: Some(0.3),
        }
    }

    /// Sets the decision threshold (default 0).
    #[must_use]
    pub fn with_threshold(mut self, threshold: f64) -> Self {
        self.threshold = threshold;
        self
    }

    /// Sets or disables NMS (default IoU 0.3).
    #[must_use]
    pub fn with_nms(mut self, iou: Option<f64>) -> Self {
        self.nms_iou = iou;
        self
    }

    /// The per-scale model bank.
    #[must_use]
    pub fn models(&self) -> &[ScaleModel] {
        &self.models
    }

    /// Detects over a frame: one extraction, every model slides its own
    /// window size over the same map.
    #[must_use]
    pub fn detect(&self, frame: &GrayImage) -> Vec<Detection> {
        let map = FeatureMap::extract(frame, &self.params);
        self.detect_on_features(&map)
    }

    /// Detects over a pre-extracted feature map.
    #[must_use]
    pub fn detect_on_features(&self, map: &FeatureMap) -> Vec<Detection> {
        let cell = self.params.cell_size();
        let (cells_x, cells_y) = map.cells();
        let f = map.cell_features();
        let mut out = Vec::new();
        for sm in &self.models {
            if cells_x < sm.window_cells_x || cells_y < sm.window_cells_y {
                continue;
            }
            let weights = sm.model.weights();
            for cy in 0..=cells_y - sm.window_cells_y {
                for cx in 0..=cells_x - sm.window_cells_x {
                    let mut acc = 0.0f64;
                    let mut widx = 0usize;
                    for dy in 0..sm.window_cells_y {
                        for dx in 0..sm.window_cells_x {
                            let cell_features = map.cell(cx + dx, cy + dy);
                            for &v in cell_features {
                                acc += weights[widx] * f64::from(v);
                                widx += 1;
                            }
                        }
                    }
                    debug_assert_eq!(widx, sm.window_cells_x * sm.window_cells_y * f);
                    let score = acc + sm.model.bias();
                    if score > self.threshold {
                        out.push(Detection {
                            bbox: BoundingBox::new(
                                (cx * cell) as i64,
                                (cy * cell) as i64,
                                (sm.window_cells_x * cell) as u64,
                                (sm.window_cells_y * cell) as u64,
                            ),
                            score,
                            scale: sm.scale,
                        });
                    }
                }
            }
        }
        match self.nms_iou {
            Some(iou) => non_maximum_suppression(out, iou),
            None => out,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtped_core::rng::SeedRng;
    use rtped_image::synthetic::clutter_background;

    /// Strong vertical bars = "positive"; clutter = "negative".
    fn training_set(rng: &mut SeedRng) -> Vec<(GrayImage, Label)> {
        let mut out = Vec::new();
        for i in 0..20 {
            let phase = i % 8;
            out.push((
                GrayImage::from_fn(
                    64,
                    128,
                    move |x, _| {
                        if (x + phase) % 16 < 8 {
                            30
                        } else {
                            220
                        }
                    },
                ),
                Label::Positive,
            ));
        }
        for _ in 0..20 {
            out.push((clutter_background(rng, 64, 128), Label::Negative));
        }
        out
    }

    fn bank(rng: &mut SeedRng) -> MultiModelDetector {
        let params = HogParams::pedestrian();
        MultiModelDetector::train(
            &training_set(rng),
            &[1.0, 1.5],
            &params,
            &DcdParams {
                c: 0.05,
                ..DcdParams::default()
            },
        )
    }

    #[test]
    fn trains_one_model_per_scale_with_scaled_geometry() {
        let mut rng = SeedRng::seed_from_u64(17);
        let det = bank(&mut rng);
        assert_eq!(det.models().len(), 2);
        let m0 = &det.models()[0];
        assert_eq!((m0.window_cells_x, m0.window_cells_y), (8, 16));
        assert_eq!(m0.model.dim(), 8 * 16 * 36);
        let m1 = &det.models()[1];
        assert_eq!((m1.window_cells_x, m1.window_cells_y), (12, 24));
        assert_eq!(m1.model.dim(), 12 * 24 * 36);
    }

    #[test]
    fn detects_pattern_at_both_sizes() {
        let mut rng = SeedRng::seed_from_u64(19);
        let det = bank(&mut rng).with_threshold(0.2).with_nms(None);
        // A frame with the bar pattern in a 96x192 region (scale 1.5).
        let mut frame = clutter_background(&mut rng, 256, 320);
        let big_pattern =
            GrayImage::from_fn(96, 192, |x, _| if (x / 12) % 2 == 0 { 30 } else { 220 });
        frame.paste(&big_pattern, 80, 64);
        let dets = det.detect(&frame);
        let gt = BoundingBox::new(80, 64, 96, 192);
        let best = dets
            .iter()
            .filter(|d| (d.scale - 1.5).abs() < 1e-9)
            .map(|d| d.bbox.iou(&gt))
            .fold(0.0f64, f64::max);
        assert!(
            best > 0.5,
            "scale-1.5 model missed the large pattern (best IoU {best})"
        );
        // Detected boxes of the 1.5-scale model are 96x192 in native
        // coordinates WITHOUT any data rescaling.
        assert!(dets
            .iter()
            .filter(|d| (d.scale - 1.5).abs() < 1e-9)
            .all(|d| d.bbox.width == 96 && d.bbox.height == 192));
    }

    #[test]
    fn clean_clutter_stays_clean() {
        let mut rng = SeedRng::seed_from_u64(23);
        let det = bank(&mut rng).with_threshold(0.5);
        let frame = clutter_background(&mut rng, 256, 320);
        let dets = det.detect(&frame);
        assert!(dets.len() <= 2, "too many false alarms: {}", dets.len());
    }

    #[test]
    #[should_panic(expected = "multi-model scales must be >= 1.0")]
    fn sub_unit_scales_rejected() {
        let mut rng = SeedRng::seed_from_u64(29);
        let params = HogParams::pedestrian();
        let _ = MultiModelDetector::train(
            &training_set(&mut rng),
            &[0.5],
            &params,
            &DcdParams::default(),
        );
    }
}
