//! Sliding-window iteration over feature maps.
//!
//! "Sliding each window by one cell either in vertical or horizontal
//! direction results in a new detection window" (paper Fig. 2) — the
//! window slides with a one-cell stride over the cell grid, which is also
//! exactly the schedule the hardware classifier follows (one window column
//! per 36 cycles along a row strip).

use rtped_hog::feature_map::FeatureMap;
use rtped_hog::params::HogParams;

/// Iterator over all window positions (in cells) of a feature map.
///
/// Yields `(cx, cy)` top-left cell coordinates in raster order — the same
/// order the streaming hardware evaluates windows in.
#[derive(Debug, Clone)]
pub struct WindowPositions {
    window_cells: (usize, usize),
    grid_cells: (usize, usize),
    stride: usize,
    next: Option<(usize, usize)>,
}

impl WindowPositions {
    /// Positions of `params`' window over `map` with a `stride`-cell step.
    ///
    /// Returns an empty iterator if the window does not fit.
    ///
    /// # Panics
    ///
    /// Panics if `stride == 0`.
    #[must_use]
    pub fn over(map: &FeatureMap, params: &HogParams, stride: usize) -> Self {
        assert!(stride > 0, "stride must be non-zero");
        let window_cells = params.window_cells();
        let grid_cells = map.cells();
        let fits = grid_cells.0 >= window_cells.0 && grid_cells.1 >= window_cells.1;
        Self {
            window_cells,
            grid_cells,
            stride,
            next: fits.then_some((0, 0)),
        }
    }

    /// Number of positions this iterator will yield.
    #[must_use]
    pub fn count_positions(&self) -> usize {
        if self.grid_cells.0 < self.window_cells.0 || self.grid_cells.1 < self.window_cells.1 {
            return 0;
        }
        let nx = (self.grid_cells.0 - self.window_cells.0) / self.stride + 1;
        let ny = (self.grid_cells.1 - self.window_cells.1) / self.stride + 1;
        nx * ny
    }
}

impl Iterator for WindowPositions {
    type Item = (usize, usize);

    fn next(&mut self) -> Option<(usize, usize)> {
        let (cx, cy) = self.next?;
        let max_x = self.grid_cells.0 - self.window_cells.0;
        let max_y = self.grid_cells.1 - self.window_cells.1;
        // Advance in raster order.
        self.next = if cx + self.stride <= max_x {
            Some((cx + self.stride, cy))
        } else if cy + self.stride <= max_y {
            Some((0, cy + self.stride))
        } else {
            None
        };
        Some((cx, cy))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        // Exact count is cheap to compute only at construction; give a
        // conservative hint.
        (0, Some(self.count_positions()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtped_hog::feature_map::FeatureMap;

    fn map(cx: usize, cy: usize) -> FeatureMap {
        FeatureMap::from_raw(cx, cy, 9, vec![0.0; cx * cy * 36])
    }

    #[test]
    fn position_count_matches_formula() {
        let p = HogParams::pedestrian();
        // HDTV cell grid: 240x135 cells; windows: (240-8+1) x (135-16+1).
        let m = map(240, 135);
        let w = WindowPositions::over(&m, &p, 1);
        assert_eq!(w.count_positions(), 233 * 120);
        assert_eq!(w.count(), 233 * 120);
    }

    #[test]
    fn exact_fit_yields_single_position() {
        let p = HogParams::pedestrian();
        let m = map(8, 16);
        let positions: Vec<_> = WindowPositions::over(&m, &p, 1).collect();
        assert_eq!(positions, vec![(0, 0)]);
    }

    #[test]
    fn too_small_grid_yields_nothing() {
        let p = HogParams::pedestrian();
        let m = map(7, 16);
        assert_eq!(WindowPositions::over(&m, &p, 1).count(), 0);
        assert_eq!(WindowPositions::over(&m, &p, 1).count_positions(), 0);
    }

    #[test]
    fn raster_order() {
        let p = HogParams::pedestrian();
        let m = map(10, 17);
        let positions: Vec<_> = WindowPositions::over(&m, &p, 1).collect();
        assert_eq!(
            positions,
            vec![(0, 0), (1, 0), (2, 0), (0, 1), (1, 1), (2, 1)]
        );
    }

    #[test]
    fn stride_two_skips_positions() {
        let p = HogParams::pedestrian();
        let m = map(12, 16);
        let positions: Vec<_> = WindowPositions::over(&m, &p, 2).collect();
        assert_eq!(positions, vec![(0, 0), (2, 0), (4, 0)]);
        assert_eq!(WindowPositions::over(&m, &p, 2).count_positions(), 3);
    }

    #[test]
    #[should_panic(expected = "stride must be non-zero")]
    fn zero_stride_panics() {
        let p = HogParams::pedestrian();
        let m = map(8, 16);
        let _ = WindowPositions::over(&m, &p, 0);
    }
}
