//! Hard-negative mining ("bootstrapping") — the Dalal–Triggs training
//! protocol behind every serious HOG+SVM pedestrian model, including the
//! INRIA models the paper trains with LibLinear.
//!
//! An initial model is trained on the seed set; the detector then scans
//! person-free scenes, and every window the model wrongly fires on (a
//! *hard negative*) is added to the training set before retraining. One
//! or two rounds typically cut the false-positive rate by an order of
//! magnitude at the same miss rate.

use rtped_hog::feature_map::FeatureMap;
use rtped_hog::params::HogParams;
use rtped_hog::pyramid::FeaturePyramid;
use rtped_image::GrayImage;
use rtped_svm::dcd::{train_dcd, DcdParams};
use rtped_svm::model::Label;
use rtped_svm::LinearSvm;

use crate::window::WindowPositions;

/// Configuration of the bootstrap loop.
#[derive(Debug, Clone)]
pub struct BootstrapParams {
    /// Mining rounds after the initial training (Dalal used 1–2).
    pub rounds: usize,
    /// Detection scales scanned for hard negatives.
    pub scales: Vec<f64>,
    /// Windows scoring above this margin in a person-free scene are hard
    /// negatives.
    pub margin: f64,
    /// Cap on new negatives per round (keeps retraining bounded).
    pub max_new_per_round: usize,
    /// SVM training hyper-parameters reused for every round.
    pub svm: DcdParams,
}

impl Default for BootstrapParams {
    fn default() -> Self {
        Self {
            rounds: 2,
            scales: vec![1.0, 1.5],
            margin: 0.0,
            max_new_per_round: 2000,
            svm: DcdParams {
                c: 0.01,
                ..DcdParams::default()
            },
        }
    }
}

/// Per-round mining statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BootstrapRound {
    /// Hard negatives found this round (before the cap).
    pub hard_negatives_found: usize,
    /// Hard negatives actually added (after the cap).
    pub hard_negatives_added: usize,
    /// Training-set size after this round's retraining.
    pub training_size: usize,
}

/// The outcome of [`bootstrap_train`].
#[derive(Debug, Clone)]
pub struct BootstrapResult {
    /// The final retrained model.
    pub model: LinearSvm,
    /// Statistics per mining round.
    pub rounds: Vec<BootstrapRound>,
}

/// Trains with hard-negative mining.
///
/// `seed_samples` is the initial labelled descriptor set;
/// `negative_scenes` are person-free frames to mine (any size that holds
/// at least one detection window).
///
/// # Panics
///
/// Panics if the seed set cannot train (empty or single-class) or
/// `params` does not describe the canonical cell-major window.
#[must_use]
pub fn bootstrap_train(
    seed_samples: Vec<(Vec<f32>, Label)>,
    negative_scenes: &[GrayImage],
    params: &HogParams,
    config: &BootstrapParams,
) -> BootstrapResult {
    let mut samples = seed_samples;
    let mut model = train_dcd(&samples, &config.svm);
    let mut rounds = Vec::new();

    for _ in 0..config.rounds {
        let mut found = 0usize;
        let mut added = 0usize;
        for scene in negative_scenes {
            let base = FeatureMap::extract(scene, params);
            let pyramid = FeaturePyramid::from_base(&base, &config.scales, params);
            for level in pyramid.levels() {
                for (cx, cy) in WindowPositions::over(&level.features, params, 1) {
                    let descriptor = level.features.window_descriptor(cx, cy, params);
                    if model.decision(&descriptor) > config.margin {
                        found += 1;
                        if added < config.max_new_per_round {
                            samples.push((descriptor, Label::Negative));
                            added += 1;
                        }
                    }
                }
            }
        }
        if added > 0 {
            model = train_dcd(&samples, &config.svm);
        }
        rounds.push(BootstrapRound {
            hard_negatives_found: found,
            hard_negatives_added: added,
            training_size: samples.len(),
        });
        if found == 0 {
            break; // converged: the model no longer fires on the scenes
        }
    }

    BootstrapResult { model, rounds }
}

/// Counts the windows a model still fires on across person-free scenes —
/// the false-positive pressure metric mining is meant to reduce.
#[must_use]
pub fn count_false_alarms(
    model: &LinearSvm,
    negative_scenes: &[GrayImage],
    params: &HogParams,
    scales: &[f64],
    margin: f64,
) -> usize {
    let mut alarms = 0;
    for scene in negative_scenes {
        let base = FeatureMap::extract(scene, params);
        let pyramid = FeaturePyramid::from_base(&base, scales, params);
        for level in pyramid.levels() {
            for (cx, cy) in WindowPositions::over(&level.features, params, 1) {
                let descriptor = level.features.window_descriptor(cx, cy, params);
                if model.decision(&descriptor) > margin {
                    alarms += 1;
                }
            }
        }
    }
    alarms
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtped_core::rng::SeedRng;
    use rtped_image::synthetic::clutter_background;

    fn seed_set(params: &HogParams, rng: &mut SeedRng) -> Vec<(Vec<f32>, Label)> {
        // Positives: strong vertical-edge pattern; negatives: clutter.
        let mut samples = Vec::new();
        for i in 0..24 {
            let phase = i % 8;
            let img = GrayImage::from_fn(
                64,
                128,
                move |x, _| {
                    if (x + phase) % 16 < 8 {
                        40
                    } else {
                        200
                    }
                },
            );
            let d = FeatureMap::extract(&img, params).window_descriptor(0, 0, params);
            samples.push((d, Label::Positive));
        }
        for _ in 0..24 {
            let img = clutter_background(rng, 64, 128);
            let d = FeatureMap::extract(&img, params).window_descriptor(0, 0, params);
            samples.push((d, Label::Negative));
        }
        samples
    }

    #[test]
    fn mining_reduces_false_alarms() {
        let params = HogParams::pedestrian();
        let mut rng = SeedRng::seed_from_u64(3);
        let samples = seed_set(&params, &mut rng);
        let scenes: Vec<GrayImage> = (0..3)
            .map(|_| clutter_background(&mut rng, 160, 192))
            .collect();

        let config = BootstrapParams {
            rounds: 2,
            scales: vec![1.0],
            ..BootstrapParams::default()
        };
        let before = train_dcd(&samples, &config.svm);
        let alarms_before =
            count_false_alarms(&before, &scenes, &params, &config.scales, config.margin);

        let result = bootstrap_train(samples, &scenes, &params, &config);
        let alarms_after = count_false_alarms(
            &result.model,
            &scenes,
            &params,
            &config.scales,
            config.margin,
        );
        assert!(
            alarms_after <= alarms_before,
            "mining increased false alarms: {alarms_before} -> {alarms_after}"
        );
        assert!(!result.rounds.is_empty());
    }

    #[test]
    fn round_statistics_are_consistent() {
        let params = HogParams::pedestrian();
        let mut rng = SeedRng::seed_from_u64(9);
        let samples = seed_set(&params, &mut rng);
        let seed_len = samples.len();
        let scenes = vec![clutter_background(&mut rng, 128, 160)];
        let config = BootstrapParams {
            rounds: 1,
            scales: vec![1.0],
            max_new_per_round: 5,
            ..BootstrapParams::default()
        };
        let result = bootstrap_train(samples, &scenes, &params, &config);
        let round = &result.rounds[0];
        assert!(round.hard_negatives_added <= 5);
        assert!(round.hard_negatives_added <= round.hard_negatives_found);
        assert_eq!(round.training_size, seed_len + round.hard_negatives_added);
    }

    #[test]
    fn converged_model_stops_early() {
        // A model with a huge negative bias never fires, so mining finds
        // nothing and stops after one round even when more are allowed.
        let params = HogParams::pedestrian();
        let mut rng = SeedRng::seed_from_u64(11);
        let samples = seed_set(&params, &mut rng);
        let scenes = vec![clutter_background(&mut rng, 128, 160)];
        let config = BootstrapParams {
            rounds: 5,
            scales: vec![1.0],
            margin: 1e9, // nothing clears this margin
            ..BootstrapParams::default()
        };
        let result = bootstrap_train(samples, &scenes, &params, &config);
        assert_eq!(result.rounds.len(), 1);
        assert_eq!(result.rounds[0].hard_negatives_found, 0);
    }
}
