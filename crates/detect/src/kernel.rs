//! Cache-blocked, autovectorizable scoring kernels for the window scan.
//!
//! [`score_window`](crate::detector::score_window) is the *reference*
//! kernel: one window at a time, one strided f64 accumulation in
//! descriptor order. This module is the raw-speed variant the scan loop
//! actually runs: the level's feature map is widened to `f64` **once**
//! (`f32 → f64` is exact, so this changes no bits and removes a per-element
//! convert from the hot loop), and then [`F32Kernel::score_window_row`]
//! scores up to [`BLOCK_WINDOWS`] horizontally-adjacent windows per pass
//! over a weight row — every loaded feature row is reused by all windows
//! in the block, and the inner loop is a fixed-width stride-1
//! multiply-accumulate rustc autovectorizes without intrinsics or
//! `unsafe`.
//!
//! ## Bit-exactness
//!
//! Each window's accumulator still receives the *same contributions in
//! the same order* as the reference kernel (window rows ascending, weight
//! index ascending, bias last), so blocked scores are bit-identical to
//! `score_window` — asserted by `tests/quant_and_temporal.rs`.

use std::ops::Range;

use rtped_hog::feature_map::FeatureMap;
use rtped_svm::LinearSvm;

/// Horizontally-adjacent windows scored per weight-row pass. Eight keeps
/// the accumulator block in registers on x86-64 and SIMD-friendly on
/// 128-bit targets.
pub const BLOCK_WINDOWS: usize = 8;

/// Widens a feature map's raw storage to `f64` (exact).
#[must_use]
pub fn to_f64(map: &FeatureMap) -> Vec<f64> {
    map.as_raw().iter().map(|&v| f64::from(v)).collect()
}

/// Re-widens only cell rows `rows` of `map` into `raw64` (the temporal
/// cache's incremental refresh of the preconverted plane).
///
/// # Panics
///
/// Panics if `raw64` does not match the map's size or `rows` is out of
/// bounds.
pub fn update_rows_f64(raw64: &mut [f64], map: &FeatureMap, rows: Range<usize>) {
    let (cells_x, cells_y) = map.cells();
    let row_len = cells_x * map.cell_features();
    assert_eq!(raw64.len(), row_len * cells_y, "f64 plane size mismatch");
    assert!(rows.end <= cells_y, "cell rows out of bounds");
    let span = rows.start * row_len..rows.end * row_len;
    for (d, &v) in raw64[span.clone()].iter_mut().zip(&map.as_raw()[span]) {
        *d = f64::from(v);
    }
}

/// The blocked f32-datapath kernel for one pyramid level: borrowed
/// preconverted features plus the model, with the level geometry baked in.
pub struct F32Kernel<'a> {
    raw64: &'a [f64],
    weights: &'a [f64],
    bias: f64,
    cells_x: usize,
    cell_features: usize,
    wc: usize,
    hc: usize,
}

impl<'a> F32Kernel<'a> {
    /// Binds the kernel to a level's preconverted features and a model.
    ///
    /// # Panics
    ///
    /// Panics if `raw64` is not `cells_x`-major with `cell_features` per
    /// cell, or the model does not match the `wc * hc`-cell window.
    #[must_use]
    pub fn new(
        raw64: &'a [f64],
        cells_x: usize,
        cell_features: usize,
        wc: usize,
        hc: usize,
        model: &'a LinearSvm,
    ) -> Self {
        assert_eq!(raw64.len() % (cells_x * cell_features), 0, "ragged plane");
        assert_eq!(
            model.dim(),
            wc * hc * cell_features,
            "model dimensionality does not match the window descriptor"
        );
        Self {
            raw64,
            weights: model.weights(),
            bias: model.bias(),
            cells_x,
            cell_features,
            wc,
            hc,
        }
    }

    /// Scores every window of window-row `cy`: window `col` has its
    /// top-left cell at `(col * stride, cy)` and its decision value
    /// `w·x + b` is written to `out[col]`.
    ///
    /// # Panics
    ///
    /// Panics if `out` is shorter than `cols` or a window runs past the
    /// feature plane.
    pub fn score_window_row(&self, cy: usize, cols: usize, stride: usize, out: &mut [f64]) {
        let f = self.cell_features;
        let gx = self.cells_x;
        let row_len = self.wc * f;
        assert!(out.len() >= cols, "output buffer too short");
        assert!(
            cols == 0
                || ((cy + self.hc - 1) * gx + (cols - 1) * stride + self.wc) * f
                    <= self.raw64.len(),
            "window out of bounds"
        );
        let mut rx = 0usize;
        while rx < cols {
            let nb = BLOCK_WINDOWS.min(cols - rx);
            let mut accs = [0.0f64; BLOCK_WINDOWS];
            for dy in 0..self.hc {
                let row_base = ((cy + dy) * gx + rx * stride) * f;
                let wrow = &self.weights[dy * row_len..(dy + 1) * row_len];
                if nb == BLOCK_WINDOWS {
                    // Full block: one pass over the weight row feeds all
                    // eight window accumulators from overlapping slices of
                    // the same feature span (loaded once, reused 8×).
                    let span = (BLOCK_WINDOWS - 1) * stride * f + row_len;
                    let frow = &self.raw64[row_base..row_base + span];
                    for (i, &w) in wrow.iter().enumerate() {
                        for (b, acc) in accs.iter_mut().enumerate() {
                            *acc += w * frow[b * stride * f + i];
                        }
                    }
                } else {
                    // Tail: plain per-window dot, same per-window order.
                    for (b, acc) in accs.iter_mut().take(nb).enumerate() {
                        let base = row_base + b * stride * f;
                        let frow = &self.raw64[base..base + row_len];
                        for (&w, &v) in wrow.iter().zip(frow) {
                            *acc += w * v;
                        }
                    }
                }
            }
            for (b, &acc) in accs.iter().take(nb).enumerate() {
                out[rx + b] = acc + self.bias;
            }
            rx += nb;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtped_hog::params::HogParams;
    use rtped_image::GrayImage;

    use crate::detector::score_window;

    #[test]
    fn blocked_rows_are_bit_identical_to_score_window() {
        let params = HogParams::pedestrian();
        let img = GrayImage::from_fn(200, 160, |x, y| ((x * 13 + y * 7 + x * y % 11) % 256) as u8);
        let map = FeatureMap::extract(&img, &params);
        let weights: Vec<f64> = (0..params.cell_descriptor_len())
            .map(|i| ((i * 2654435761usize) % 1000) as f64 / 1000.0 - 0.5)
            .collect();
        let model = LinearSvm::new(weights, 0.25);
        let raw64 = to_f64(&map);
        let (wc, hc) = params.window_cells();
        let (gx, gy) = map.cells();
        let k = F32Kernel::new(&raw64, gx, map.cell_features(), wc, hc, &model);
        for stride in [1usize, 2] {
            let rows = (gy - hc) / stride + 1;
            let cols = (gx - wc) / stride + 1;
            let mut out = vec![0.0f64; cols];
            for ry in 0..rows {
                let cy = ry * stride;
                k.score_window_row(cy, cols, stride, &mut out);
                for (col, &got) in out.iter().enumerate() {
                    let want = score_window(&map, col * stride, cy, &params, &model);
                    assert_eq!(
                        got.to_bits(),
                        want.to_bits(),
                        "stride {stride} window ({col},{ry})"
                    );
                }
            }
        }
    }

    #[test]
    fn update_rows_f64_refreshes_exactly_the_span() {
        let params = HogParams::pedestrian();
        let img = GrayImage::from_fn(96, 96, |x, y| ((x * 3 + y * 5) % 256) as u8);
        let map = FeatureMap::extract(&img, &params);
        let mut plane = vec![0.0f64; map.as_raw().len()];
        update_rows_f64(&mut plane, &map, 2..7);
        let row_len = map.cells().0 * map.cell_features();
        assert!(plane[..2 * row_len].iter().all(|&v| v == 0.0));
        assert_eq!(
            &plane[2 * row_len..7 * row_len],
            &to_f64(&map)[2 * row_len..7 * row_len]
        );
        assert!(plane[7 * row_len..].iter().all(|&v| v == 0.0));
    }
}
