//! The two multi-scale detector configurations the paper compares (Fig. 3).
//!
//! Both detectors share the scoring core (a linear SVM over cell-major HOG
//! window descriptors, sliding one cell at a time) and differ only in how
//! they obtain features for the non-native scales:
//!
//! - [`ImagePyramidDetector`] (conventional, Fig. 3a): resize the image by
//!   `1/scale`, re-extract HOG, classify.
//! - [`FeaturePyramidDetector`] (the paper's method, Fig. 3b): extract HOG
//!   once, down-sample the normalized feature map per scale, classify.

use std::fmt;
use std::str::FromStr;
use std::sync::Mutex;

use rtped_core::json::{obj, required_field};
use rtped_core::{par, Error, FromJson, Json, ToJson};
use rtped_hog::feature_map::FeatureMap;
use rtped_hog::params::HogParams;
use rtped_hog::pyramid::{FeaturePyramid, ImagePyramid, PyramidLevel};
use rtped_hog::quant::{QuantFeatureMap, FEATURE_FRAC_BITS};
use rtped_image::GrayImage;
use rtped_svm::{LinearSvm, QuantModel};

use crate::bbox::BoundingBox;
use crate::kernel::{self, F32Kernel};
use crate::nms::non_maximum_suppression;
use crate::temporal::{self, PyramidCache, TemporalStats};

/// Below this many windows per level, the scan runs serially: thread-pool
/// hand-off costs more than the scoring itself (the 640×480 parallel
/// regression in `BENCH_detect.json`).
pub(crate) const PAR_MIN_WINDOWS: usize = 8192;

/// Which arithmetic the window-scoring hot path uses.
///
/// [`Datapath::F32`] is the default and the golden reference: `f32`
/// features, `f64` accumulation, bit-identical to [`score_window`].
/// [`Datapath::I16`] mirrors the paper's fixed-point hardware on the CPU:
/// Q12 `i16` features against dynamically-scaled `i16` weights with `i32`
/// row accumulation (see `rtped_hog::quant`) — roughly 4× faster and, the
/// arithmetic being all-integer, bit-reproducible across hosts and thread
/// counts. Accuracy sits within the PR-4 quantization-ablation bound of
/// the float path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Datapath {
    /// Float features, `f64` accumulation (default, golden reference).
    #[default]
    F32,
    /// Fixed-point `i16` features and weights, integer accumulation.
    I16,
}

impl Datapath {
    /// Canonical lowercase name (`"f32"` / `"i16"`).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Datapath::F32 => "f32",
            Datapath::I16 => "i16",
        }
    }
}

impl fmt::Display for Datapath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for Datapath {
    type Err = Error;

    fn from_str(s: &str) -> Result<Self, Error> {
        match s {
            "f32" => Ok(Datapath::F32),
            "i16" => Ok(Datapath::I16),
            other => Err(Error::invalid_input(format!(
                "unknown datapath {other:?}: expected \"f32\" or \"i16\""
            ))),
        }
    }
}

/// One detected pedestrian.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Detection {
    /// Location in native frame coordinates.
    pub bbox: BoundingBox,
    /// SVM decision value (higher = more confident).
    pub score: f64,
    /// Pyramid scale the detection fired at.
    pub scale: f64,
}

impl ToJson for Detection {
    fn to_json(&self) -> Json {
        obj([
            ("bbox", self.bbox.to_json()),
            ("score", self.score.into()),
            ("scale", self.scale.into()),
        ])
    }
}

impl FromJson for Detection {
    fn from_json(json: &Json) -> Result<Self, Error> {
        let score = f64::from_json(required_field(json, "score")?)?;
        let scale = f64::from_json(required_field(json, "scale")?)?;
        if !score.is_finite() || !scale.is_finite() {
            return Err(Error::format("detection score and scale must be finite"));
        }
        Ok(Detection {
            bbox: BoundingBox::from_json(required_field(json, "bbox")?)?,
            score,
            scale,
        })
    }
}

/// Shared detector configuration.
#[derive(Debug, Clone)]
pub struct DetectorConfig {
    /// Pyramid scales (1.0 = native window size; larger = larger objects).
    pub scales: Vec<f64>,
    /// Decision threshold (paper §4: the FP/FN trade-off knob).
    pub threshold: f64,
    /// Window stride in cells (1 = the hardware schedule).
    pub stride_cells: usize,
    /// IoU threshold for NMS; `None` disables suppression.
    pub nms_iou: Option<f64>,
    /// HOG geometry.
    pub params: HogParams,
    /// Scoring arithmetic (see [`Datapath`]).
    pub datapath: Datapath,
    /// Enables the temporal incremental pyramid for video streams: the
    /// detector caches the previous frame's pyramid (and pre-NMS scan
    /// results) and rebuilds only the rows that changed, falling back to a
    /// full rebuild on scene cuts. Output stays bit-identical to the
    /// stateless path; only `FeaturePyramidDetector` honours it
    /// (`ImagePyramidDetector` re-extracts per level and ignores it).
    pub temporal: bool,
}

impl DetectorConfig {
    /// The implemented hardware configuration: two scales (§5: "Due to the
    /// memory limitations only two scales of HOG features have been
    /// considered"). The second scale sits at 1.5, the limit up to which
    /// §4 shows feature scaling outperforms image scaling.
    #[must_use]
    pub fn two_scale() -> Self {
        Self {
            scales: vec![1.0, 1.5],
            threshold: 0.0,
            stride_cells: 1,
            nms_iou: Some(0.3),
            params: HogParams::pedestrian(),
            datapath: Datapath::F32,
            temporal: false,
        }
    }

    /// A custom scale ladder with otherwise default settings.
    ///
    /// # Panics
    ///
    /// Panics if `scales` is empty.
    #[must_use]
    pub fn with_scales(scales: Vec<f64>) -> Self {
        assert!(!scales.is_empty(), "need at least one scale");
        Self {
            scales,
            ..Self::two_scale()
        }
    }
}

impl Default for DetectorConfig {
    fn default() -> Self {
        Self::two_scale()
    }
}

/// One configuration path for both detector families.
///
/// `ImagePyramidDetector::new` and `FeaturePyramidDetector::new` predate
/// this builder and panic on bad input; the builder is the preferred
/// entry point — it validates everything up front and returns
/// [`Error::InvalidInput`] instead. The target detector is chosen by the
/// annotated result type (both families implement [`BuildDetector`]):
///
/// ```
/// use rtped_detect::detector::{DetectorBuilder, FeaturePyramidDetector};
/// use rtped_hog::params::HogParams;
/// use rtped_svm::LinearSvm;
///
/// let dim = HogParams::pedestrian().cell_descriptor_len();
/// let model = LinearSvm::new(vec![0.0; dim], -0.5);
/// let detector: FeaturePyramidDetector = DetectorBuilder::new(model)
///     .scales(vec![1.0, 1.5])
///     .threshold(0.25)
///     .stride_cells(1)
///     .nms_iou(0.3)
///     .build()
///     .expect("valid configuration");
/// ```
#[derive(Debug, Clone)]
pub struct DetectorBuilder {
    model: LinearSvm,
    config: DetectorConfig,
}

impl DetectorBuilder {
    /// Starts from the paper's two-scale hardware configuration
    /// ([`DetectorConfig::two_scale`]).
    #[must_use]
    pub fn new(model: LinearSvm) -> Self {
        Self {
            model,
            config: DetectorConfig::two_scale(),
        }
    }

    /// Replaces the pyramid scale ladder.
    #[must_use]
    pub fn scales(mut self, scales: Vec<f64>) -> Self {
        self.config.scales = scales;
        self
    }

    /// Sets the decision threshold (the paper's FP/FN trade-off knob).
    #[must_use]
    pub fn threshold(mut self, threshold: f64) -> Self {
        self.config.threshold = threshold;
        self
    }

    /// Sets the window stride in cells (1 = the hardware schedule).
    #[must_use]
    pub fn stride_cells(mut self, stride_cells: usize) -> Self {
        self.config.stride_cells = stride_cells;
        self
    }

    /// Enables non-maximum suppression at the given IoU overlap.
    #[must_use]
    pub fn nms_iou(mut self, iou: f64) -> Self {
        self.config.nms_iou = Some(iou);
        self
    }

    /// Disables non-maximum suppression (every window above threshold is
    /// reported).
    #[must_use]
    pub fn no_nms(mut self) -> Self {
        self.config.nms_iou = None;
        self
    }

    /// Replaces the HOG geometry.
    #[must_use]
    pub fn params(mut self, params: HogParams) -> Self {
        self.config.params = params;
        self
    }

    /// Selects the scoring arithmetic (default [`Datapath::F32`]).
    #[must_use]
    pub fn datapath(mut self, datapath: Datapath) -> Self {
        self.config.datapath = datapath;
        self
    }

    /// Enables the temporal incremental pyramid for video streams
    /// (default off; see [`DetectorConfig::temporal`]).
    #[must_use]
    pub fn temporal(mut self, temporal: bool) -> Self {
        self.config.temporal = temporal;
        self
    }

    fn validate(&self) -> Result<(), Error> {
        let config = &self.config;
        if config.scales.is_empty() {
            return Err(Error::invalid_input("detector needs at least one scale"));
        }
        if let Some(bad) = config.scales.iter().find(|s| !s.is_finite() || **s < 1.0) {
            return Err(Error::invalid_input(format!(
                "pyramid scale {bad} is invalid: scales must be finite and >= 1.0 \
                 (1.0 = native window size; larger values detect larger objects)"
            )));
        }
        if !config.threshold.is_finite() {
            return Err(Error::invalid_input("decision threshold must be finite"));
        }
        if config.stride_cells == 0 {
            return Err(Error::invalid_input(
                "window stride must be at least 1 cell",
            ));
        }
        if let Some(iou) = config.nms_iou {
            if !(iou > 0.0 && iou < 1.0) {
                return Err(Error::invalid_input(format!(
                    "NMS IoU overlap {iou} is invalid: must be strictly between 0 and 1"
                )));
            }
        }
        if self.model.dim() != config.params.cell_descriptor_len() {
            return Err(Error::invalid_input(format!(
                "model has {} weights but the configured window descriptor has {} features",
                self.model.dim(),
                config.params.cell_descriptor_len()
            )));
        }
        Ok(())
    }

    /// Validates the configuration and constructs the detector named by
    /// the result type.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] describing the first violated
    /// constraint (empty or sub-1.0 scales, zero stride, out-of-range NMS
    /// overlap, non-finite threshold, model/descriptor dimension
    /// mismatch).
    pub fn build<D: BuildDetector>(self) -> Result<D, Error> {
        self.validate()?;
        Ok(D::from_validated(self.model, self.config))
    }
}

/// Detector families [`DetectorBuilder::build`] can construct. Sealed:
/// implemented by [`ImagePyramidDetector`] and [`FeaturePyramidDetector`].
pub trait BuildDetector: sealed::Sealed + Sized {
    /// Constructs from parts the builder has already validated.
    #[doc(hidden)]
    fn from_validated(model: LinearSvm, config: DetectorConfig) -> Self;
}

mod sealed {
    pub trait Sealed {}
    impl Sealed for super::ImagePyramidDetector {}
    impl Sealed for super::FeaturePyramidDetector {}
}

impl BuildDetector for ImagePyramidDetector {
    fn from_validated(model: LinearSvm, config: DetectorConfig) -> Self {
        Self::assemble(model, config)
    }
}

impl BuildDetector for FeaturePyramidDetector {
    fn from_validated(model: LinearSvm, config: DetectorConfig) -> Self {
        Self::assemble(model, config)
    }
}

/// Quantizes `model` for the i16 datapath if `config` selects it.
fn quantize_model(model: &LinearSvm, config: &DetectorConfig) -> Option<QuantModel> {
    (config.datapath == Datapath::I16).then(|| {
        let (wc, _) = config.params.window_cells();
        let row_terms = wc * 4 * config.params.bins();
        QuantModel::from_svm(model, FEATURE_FRAC_BITS, row_terms)
    })
}

/// A load-shedding profile for one detection call: how much of the
/// configured scan a deadline-pressed caller still wants.
///
/// The runtime's degradation controller walks these knobs in a fixed
/// order (drop pyramid levels first, then coarsen the stride) instead of
/// mutating the detector, so the same detector instance can serve healthy
/// and degraded frames concurrently.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanProfile {
    /// Keep at most this many pyramid scales, taken from the front of the
    /// configured ladder (the native scale first — nearest pedestrians,
    /// which the DAS braking envelope cares about most). `None` keeps the
    /// whole ladder.
    pub max_scales: Option<usize>,
    /// Multiplies the configured window stride (1 = configured stride;
    /// 2 = scan every other cell position — roughly a 4× window-count
    /// reduction).
    pub stride_factor: usize,
}

impl ScanProfile {
    /// The full configured scan — no shedding.
    #[must_use]
    pub fn full() -> Self {
        Self {
            max_scales: None,
            stride_factor: 1,
        }
    }

    /// Whether this profile sheds nothing relative to the configuration.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.max_scales.is_none() && self.stride_factor <= 1
    }

    /// The configuration this profile leaves in effect: the scale ladder
    /// truncated to `max_scales` (never below one scale) and the stride
    /// multiplied by `stride_factor`.
    #[must_use]
    pub fn effective(&self, config: &DetectorConfig) -> DetectorConfig {
        let mut out = config.clone();
        if let Some(max) = self.max_scales {
            out.scales.truncate(max.max(1));
        }
        out.stride_cells = config.stride_cells * self.stride_factor.max(1);
        out
    }
}

impl Default for ScanProfile {
    fn default() -> Self {
        Self::full()
    }
}

/// Common interface of the two detector configurations, so benchmarks and
/// applications can switch between them (Fig. 3's A/B comparison).
pub trait Detect {
    /// Runs detection over a full frame, returning native-coordinate
    /// detections (after NMS if configured).
    fn detect(&self, frame: &GrayImage) -> Vec<Detection>;

    /// [`Detect::detect`] under a load-shedding [`ScanProfile`].
    ///
    /// With [`ScanProfile::full`] this is exactly `detect` (bit-identical
    /// output). The default implementation ignores the profile — only
    /// detectors that know how to shed levels/stride override it; both
    /// in-tree families do.
    fn detect_with_profile(&self, frame: &GrayImage, _profile: &ScanProfile) -> Vec<Detection> {
        self.detect(frame)
    }

    /// Runs detection over a batch of frames in parallel, one result list
    /// per frame in input order (frame-level parallelism on top of the
    /// per-frame band parallelism; each entry is identical to calling
    /// [`Detect::detect`] on that frame alone).
    fn detect_frames(&self, frames: &[GrayImage]) -> Vec<Vec<Detection>>
    where
        Self: Sync + Sized,
    {
        par::map(frames, |frame| self.detect(frame))
    }

    /// The configuration in effect.
    fn config(&self) -> &DetectorConfig;

    /// Human-readable method name for reports.
    fn method_name(&self) -> &'static str;
}

/// `Detect` is object safe (`detect_frames` opts out via `Sized`), and
/// boxed trait objects forward transparently — so heterogeneous detector
/// fleets (`Vec<Box<dyn Detect + Send + Sync>>`, one tenant each) run
/// through the same engine code as concrete detectors.
impl<T: Detect + ?Sized> Detect for Box<T> {
    fn detect(&self, frame: &GrayImage) -> Vec<Detection> {
        (**self).detect(frame)
    }

    fn detect_with_profile(&self, frame: &GrayImage, profile: &ScanProfile) -> Vec<Detection> {
        (**self).detect_with_profile(frame, profile)
    }

    fn config(&self) -> &DetectorConfig {
        (**self).config()
    }

    fn method_name(&self) -> &'static str {
        (**self).method_name()
    }
}

/// Window-scan geometry of one pyramid level under a configuration.
#[derive(Debug, Clone)]
pub(crate) struct LevelGeometry {
    pub scale: f64,
    pub cell: usize,
    pub ww: usize,
    pub wh: usize,
    pub wc: usize,
    pub hc: usize,
    pub stride: usize,
    pub rows: usize,
    pub cols: usize,
}

impl LevelGeometry {
    /// Geometry for a level with `cells` under `config`, or `None` when
    /// the level is too small to hold a single window.
    pub(crate) fn for_level(
        cells: (usize, usize),
        scale: f64,
        config: &DetectorConfig,
    ) -> Option<Self> {
        let params = &config.params;
        let (wc, hc) = params.window_cells();
        let (gx, gy) = cells;
        if gx < wc || gy < hc {
            return None;
        }
        let (ww, wh) = params.window_size();
        let stride = config.stride_cells;
        Some(Self {
            scale,
            cell: params.cell_size(),
            ww,
            wh,
            wc,
            hc,
            stride,
            rows: (gy - hc) / stride + 1,
            cols: (gx - wc) / stride + 1,
        })
    }
}

/// A bound per-level scorer for one datapath: scores a whole window row
/// per call through the blocked kernels.
pub(crate) enum RowScorer<'a> {
    /// Blocked f64-accumulation kernel over preconverted features.
    F32(F32Kernel<'a>),
    /// Integer kernel over quantized features and weights.
    I16 {
        qmap: &'a QuantFeatureMap,
        model: &'a QuantModel,
        wc: usize,
        hc: usize,
    },
}

impl RowScorer<'_> {
    /// Scores window-row `ry`, returning its above-threshold detections in
    /// column order (the serial raster order within the row).
    pub(crate) fn row_hits(
        &self,
        geom: &LevelGeometry,
        threshold: f64,
        ry: usize,
    ) -> Vec<Detection> {
        let cy = ry * geom.stride;
        let mut scores = vec![0.0f64; geom.cols];
        match self {
            RowScorer::F32(kernel) => {
                kernel.score_window_row(cy, geom.cols, geom.stride, &mut scores);
            }
            RowScorer::I16 {
                qmap,
                model,
                wc,
                hc,
            } => {
                let mut acc = vec![0i64; geom.cols];
                qmap.score_window_row(
                    model.weights(),
                    *wc,
                    *hc,
                    cy,
                    geom.cols,
                    geom.stride,
                    &mut acc,
                );
                for (s, &a) in scores.iter_mut().zip(&acc) {
                    *s = model.decision(a);
                }
            }
        }
        let mut hits = Vec::new();
        for (rx, &score) in scores.iter().enumerate() {
            if score > threshold {
                let cx = rx * geom.stride;
                let native = BoundingBox::new(
                    (cx * geom.cell) as i64,
                    (cy * geom.cell) as i64,
                    geom.ww as u64,
                    geom.wh as u64,
                )
                .scaled(geom.scale);
                hits.push(Detection {
                    bbox: native,
                    score,
                    scale: geom.scale,
                });
            }
        }
        hits
    }
}

/// Scores every window row of a level, returning one hit list per window
/// row (row order). Rows are fanned across cores in contiguous bands —
/// each row's result is independent, so the per-row lists are identical
/// for any thread count — with a serial short-circuit for small levels.
pub(crate) fn scan_level_rows(
    scorer: &RowScorer<'_>,
    geom: &LevelGeometry,
    threshold: f64,
) -> Vec<Vec<Detection>> {
    if geom.rows * geom.cols < PAR_MIN_WINDOWS {
        return (0..geom.rows)
            .map(|ry| scorer.row_hits(geom, threshold, ry))
            .collect();
    }
    let bands = par::band_ranges(geom.rows, par::threads() * 4);
    let per_band = par::map(&bands, |band| {
        band.clone()
            .map(|ry| scorer.row_hits(geom, threshold, ry))
            .collect::<Vec<_>>()
    });
    per_band.into_iter().flatten().collect()
}

/// Scores every window position of one pyramid level, appending hits above
/// the configured threshold to `out` in native coordinates (serial raster
/// order). Dispatches to the blocked kernel of the configured datapath;
/// the f32 path is bit-identical to the reference [`score_window`].
fn scan_level(
    level: &PyramidLevel,
    model: &LinearSvm,
    quant: Option<&QuantModel>,
    config: &DetectorConfig,
    out: &mut Vec<Detection>,
) {
    let Some(geom) = LevelGeometry::for_level(level.features.cells(), level.scale, config) else {
        return;
    };
    let (gx, _) = level.features.cells();
    let f = level.features.cell_features();
    let per_row = match quant {
        Some(qm) => {
            let qmap = level.features.quantized();
            let scorer = RowScorer::I16 {
                qmap: &qmap,
                model: qm,
                wc: geom.wc,
                hc: geom.hc,
            };
            scan_level_rows(&scorer, &geom, config.threshold)
        }
        None => {
            let raw64 = kernel::to_f64(&level.features);
            let scorer = RowScorer::F32(F32Kernel::new(&raw64, gx, f, geom.wc, geom.hc, model));
            scan_level_rows(&scorer, &geom, config.threshold)
        }
    };
    for hits in per_row {
        out.extend(hits);
    }
}

/// Computes `w·x + b` for the window at `(cx, cy)` without materializing
/// the 4608-element descriptor: one strided dot product straight against
/// the feature-map storage. The window's `wc` cells per row are contiguous
/// in the cell-major layout, so each window row is a single dense segment
/// of `wc * cell_features` values dotted against the matching weight
/// segment — `hc` strides per window, zero copies (the same order the
/// hardware's MACBAR units consume features in).
///
/// # Panics
///
/// Panics if the model dimensionality does not match
/// `params.cell_descriptor_len()` or the window is out of bounds.
#[must_use]
pub fn score_window(
    map: &FeatureMap,
    cx: usize,
    cy: usize,
    params: &HogParams,
    model: &LinearSvm,
) -> f64 {
    let (wc, hc) = params.window_cells();
    let (gx, gy) = map.cells();
    let f = map.cell_features();
    assert_eq!(
        model.dim(),
        wc * hc * f,
        "model dimensionality does not match the window descriptor"
    );
    assert!(
        cx + wc <= gx && cy + hc <= gy,
        "window out of bounds: ({cx},{cy}) + {wc}x{hc} > {gx}x{gy}"
    );
    let raw = map.as_raw();
    let weights = model.weights();
    let row_len = wc * f;
    let mut acc = 0.0f64;
    for dy in 0..hc {
        let base = ((cy + dy) * gx + cx) * f;
        let features = &raw[base..base + row_len];
        let wrow = &weights[dy * row_len..(dy + 1) * row_len];
        for (w, &v) in wrow.iter().zip(features) {
            acc += w * f64::from(v);
        }
    }
    acc + model.bias()
}

/// Conventional multi-scale detector: image pyramid + re-extraction
/// (paper Fig. 3a).
///
/// Honours [`DetectorConfig::datapath`]; `temporal` is ignored (each level
/// re-extracts from a resized image, so there is no shared pyramid to
/// cache incrementally).
#[derive(Debug, Clone)]
pub struct ImagePyramidDetector {
    model: LinearSvm,
    config: DetectorConfig,
    quant: Option<QuantModel>,
}

impl ImagePyramidDetector {
    /// Creates the detector.
    ///
    /// # Panics
    ///
    /// Panics if the model dimensionality does not match the config's
    /// cell-major window descriptor.
    #[must_use]
    pub fn new(model: LinearSvm, config: DetectorConfig) -> Self {
        assert_eq!(
            model.dim(),
            config.params.cell_descriptor_len(),
            "model dimensionality does not match the window descriptor"
        );
        Self::assemble(model, config)
    }

    fn assemble(model: LinearSvm, config: DetectorConfig) -> Self {
        let quant = quantize_model(&model, &config);
        Self {
            model,
            config,
            quant,
        }
    }

    /// The underlying SVM model.
    #[must_use]
    pub fn model(&self) -> &LinearSvm {
        &self.model
    }

    /// The scan body, parameterized over the effective configuration so
    /// the shedding path and the plain path are the same code.
    fn detect_with_config(&self, frame: &GrayImage, config: &DetectorConfig) -> Vec<Detection> {
        let pyramid = ImagePyramid::build(frame, &config.scales, &config.params);
        let mut out = Vec::new();
        for level in pyramid.levels() {
            scan_level(level, &self.model, self.quant.as_ref(), config, &mut out);
        }
        match config.nms_iou {
            Some(iou) => non_maximum_suppression(out, iou),
            None => out,
        }
    }
}

impl Detect for ImagePyramidDetector {
    fn detect(&self, frame: &GrayImage) -> Vec<Detection> {
        self.detect_with_config(frame, &self.config)
    }

    fn detect_with_profile(&self, frame: &GrayImage, profile: &ScanProfile) -> Vec<Detection> {
        if profile.is_full() {
            return self.detect(frame);
        }
        self.detect_with_config(frame, &profile.effective(&self.config))
    }

    fn config(&self) -> &DetectorConfig {
        &self.config
    }

    fn method_name(&self) -> &'static str {
        "image-pyramid"
    }
}

/// The paper's detector: single extraction + HOG feature pyramid
/// (Fig. 3b, Fig. 6).
///
/// Honours both [`DetectorConfig::datapath`] and
/// [`DetectorConfig::temporal`]; with `temporal` on, the detector keeps a
/// [`PyramidCache`] (behind a mutex, so `&self` detection still works) and
/// serves steady-state video frames by rebuilding only the cell rows that
/// changed since the previous frame.
#[derive(Debug)]
pub struct FeaturePyramidDetector {
    model: LinearSvm,
    config: DetectorConfig,
    quant: Option<QuantModel>,
    cache: Mutex<Option<PyramidCache>>,
}

impl Clone for FeaturePyramidDetector {
    /// Clones the detector; the temporal cache is transient state and
    /// starts empty in the clone.
    fn clone(&self) -> Self {
        Self {
            model: self.model.clone(),
            config: self.config.clone(),
            quant: self.quant.clone(),
            cache: Mutex::new(None),
        }
    }
}

impl FeaturePyramidDetector {
    /// Creates the detector.
    ///
    /// # Panics
    ///
    /// Panics if the model dimensionality does not match the config's
    /// cell-major window descriptor.
    #[must_use]
    pub fn new(model: LinearSvm, config: DetectorConfig) -> Self {
        assert_eq!(
            model.dim(),
            config.params.cell_descriptor_len(),
            "model dimensionality does not match the window descriptor"
        );
        Self::assemble(model, config)
    }

    fn assemble(model: LinearSvm, config: DetectorConfig) -> Self {
        let quant = quantize_model(&model, &config);
        Self {
            model,
            config,
            quant,
            cache: Mutex::new(None),
        }
    }

    /// The underlying SVM model.
    #[must_use]
    pub fn model(&self) -> &LinearSvm {
        &self.model
    }

    /// Temporal-cache statistics, if the temporal path has run at least
    /// once (`None` otherwise or when `temporal` is off).
    #[must_use]
    pub fn temporal_stats(&self) -> Option<TemporalStats> {
        let guard = match self.cache.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        guard.as_ref().map(PyramidCache::stats)
    }

    /// Drops the temporal cache (the next temporal frame rebuilds cold).
    pub fn reset_temporal_cache(&self) {
        let mut guard = match self.cache.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        *guard = None;
    }

    /// The temporal detection path: diff against the cached frame, refresh
    /// dirty rows, rescan dirty window rows, reuse the rest.
    fn detect_temporal(&self, frame: &GrayImage) -> Vec<Detection> {
        let mut guard = match self.cache.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        temporal::detect(
            &mut guard,
            frame,
            &self.model,
            self.quant.as_ref(),
            &self.config,
        )
    }

    /// Detects over a pre-extracted base feature map (lets callers reuse
    /// the extraction across detectors or share it with the hardware
    /// model).
    #[must_use]
    pub fn detect_on_features(&self, base: &FeatureMap) -> Vec<Detection> {
        self.detect_on_features_with_config(base, &self.config)
    }

    /// The scan body, parameterized over the effective configuration so
    /// the shedding path and the plain path are the same code.
    fn detect_on_features_with_config(
        &self,
        base: &FeatureMap,
        config: &DetectorConfig,
    ) -> Vec<Detection> {
        let pyramid = FeaturePyramid::from_base(base, &config.scales, &config.params);
        let mut out = Vec::new();
        for level in pyramid.levels() {
            scan_level(level, &self.model, self.quant.as_ref(), config, &mut out);
        }
        match config.nms_iou {
            Some(iou) => non_maximum_suppression(out, iou),
            None => out,
        }
    }
}

impl Detect for FeaturePyramidDetector {
    fn detect(&self, frame: &GrayImage) -> Vec<Detection> {
        if self.config.temporal {
            // Bit-identical to the stateless path below (asserted by the
            // temporal property tests), just incremental across frames.
            return self.detect_temporal(frame);
        }
        let base = FeatureMap::extract(frame, &self.config.params);
        self.detect_on_features(&base)
    }

    fn detect_with_profile(&self, frame: &GrayImage, profile: &ScanProfile) -> Vec<Detection> {
        if profile.is_full() {
            return self.detect(frame);
        }
        // Extraction runs on the full frame either way (the paper's whole
        // point is that extraction happens once); shedding trims the
        // feature-pyramid levels and the scan density. Shed frames bypass
        // the temporal cache — its row hits are only valid for the full
        // configured scan — without invalidating it.
        let base = FeatureMap::extract(frame, &self.config.params);
        self.detect_on_features_with_config(&base, &profile.effective(&self.config))
    }

    fn detect_frames(&self, frames: &[GrayImage]) -> Vec<Vec<Detection>>
    where
        Self: Sync + Sized,
    {
        if self.config.temporal {
            // Temporal caching is inherently sequential: each frame diffs
            // against its predecessor, so the batch walks in order.
            return frames.iter().map(|frame| self.detect(frame)).collect();
        }
        par::map(frames, |frame| self.detect(frame))
    }

    fn config(&self) -> &DetectorConfig {
        &self.config
    }

    fn method_name(&self) -> &'static str {
        "feature-pyramid"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zero_model(params: &HogParams, bias: f64) -> LinearSvm {
        LinearSvm::new(vec![0.0; params.cell_descriptor_len()], bias)
    }

    fn textured(w: usize, h: usize) -> GrayImage {
        GrayImage::from_fn(w, h, |x, y| ((x * 13 + y * 7 + x * y % 11) % 256) as u8)
    }

    #[test]
    fn negative_bias_model_never_fires() {
        let config = DetectorConfig::two_scale();
        let model = zero_model(&config.params, -1.0);
        let det = FeaturePyramidDetector::new(model, config);
        assert!(det.detect(&textured(320, 240)).is_empty());
    }

    #[test]
    fn positive_bias_model_fires_everywhere_then_nms_collapses() {
        let mut config = DetectorConfig::with_scales(vec![1.0]);
        config.nms_iou = Some(0.3);
        let model = zero_model(&config.params, 1.0);
        let det = FeaturePyramidDetector::new(model, config);
        let hits = det.detect(&textured(128, 192));
        // 128x192 -> 16x24 cells -> 9x9 = 81 windows, all score 1.0; NMS
        // keeps a non-overlapping subset.
        assert!(!hits.is_empty());
        assert!(hits.len() < 81);
        for pair in hits.windows(2) {
            assert!(pair[0].score >= pair[1].score);
        }
    }

    #[test]
    fn without_nms_all_windows_fire() {
        let mut config = DetectorConfig::with_scales(vec![1.0]);
        config.nms_iou = None;
        let model = zero_model(&config.params, 1.0);
        let det = FeaturePyramidDetector::new(model, config);
        let hits = det.detect(&textured(128, 192));
        assert_eq!(hits.len(), 9 * 9);
    }

    #[test]
    fn detections_are_scaled_to_native_coordinates() {
        let mut config = DetectorConfig::with_scales(vec![2.0]);
        config.nms_iou = None;
        let model = zero_model(&config.params, 1.0);
        let det = FeaturePyramidDetector::new(model, config);
        // 256x512 image: at scale 2 the feature map is 16x32 cells,
        // 9x17 windows; boxes are 128x256 in native coordinates.
        let hits = det.detect(&textured(256, 512));
        assert!(!hits.is_empty());
        for h in &hits {
            assert_eq!(h.bbox.width, 128);
            assert_eq!(h.bbox.height, 256);
            assert_eq!(h.scale, 2.0);
        }
    }

    #[test]
    fn image_and_feature_detectors_share_the_interface() {
        let config = DetectorConfig::two_scale();
        let model = zero_model(&config.params, -1.0);
        let detectors: Vec<Box<dyn Detect>> = vec![
            Box::new(ImagePyramidDetector::new(model.clone(), config.clone())),
            Box::new(FeaturePyramidDetector::new(model, config)),
        ];
        let frame = textured(160, 256);
        for d in &detectors {
            assert!(d.detect(&frame).is_empty());
            assert_eq!(d.config().scales.len(), 2);
        }
        assert_eq!(detectors[0].method_name(), "image-pyramid");
        assert_eq!(detectors[1].method_name(), "feature-pyramid");
    }

    #[test]
    fn boxed_trait_objects_forward_identically() {
        let config = DetectorConfig::with_scales(vec![1.0]);
        let model = zero_model(&config.params, 1.0);
        let concrete = FeaturePyramidDetector::new(model, config);
        let frame = textured(128, 192);
        let direct = concrete.detect(&frame);
        let shed = ScanProfile {
            max_scales: Some(1),
            stride_factor: 2,
        };
        let direct_shed = concrete.detect_with_profile(&frame, &shed);

        let boxed: Box<dyn Detect + Send + Sync> = Box::new(concrete);
        assert_eq!(boxed.detect(&frame), direct);
        assert_eq!(boxed.detect_with_profile(&frame, &shed), direct_shed);
        assert_eq!(boxed.method_name(), "feature-pyramid");
        assert_eq!(boxed.config().scales, vec![1.0]);
    }

    #[test]
    fn detection_json_roundtrip() {
        let d = Detection {
            bbox: BoundingBox::new(8, 16, 64, 128),
            score: 1.25,
            scale: 1.5,
        };
        let json = d.to_json();
        assert_eq!(
            json.to_string(),
            r#"{"bbox":{"x":8,"y":16,"w":64,"h":128},"score":1.25,"scale":1.5}"#
        );
        assert_eq!(Detection::from_json(&json).unwrap(), d);
        assert!(Detection::from_json(&Json::Null).is_err());
    }

    #[test]
    fn score_window_matches_descriptor_dot_product() {
        let params = HogParams::pedestrian();
        let img = textured(96, 160);
        let map = FeatureMap::extract(&img, &params);
        // Random-ish deterministic weights.
        let weights: Vec<f64> = (0..params.cell_descriptor_len())
            .map(|i| ((i * 2654435761usize) % 1000) as f64 / 1000.0 - 0.5)
            .collect();
        let model = LinearSvm::new(weights, 0.25);
        let fast = score_window(&map, 2, 1, &params, &model);
        let descriptor = map.window_descriptor(2, 1, &params);
        let direct = model.decision(&descriptor);
        assert!((fast - direct).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "model dimensionality")]
    fn wrong_model_dimension_is_rejected() {
        let config = DetectorConfig::two_scale();
        let model = LinearSvm::new(vec![0.0; 100], 0.0);
        let _ = FeaturePyramidDetector::new(model, config);
    }

    #[test]
    fn threshold_filters_detections() {
        let mut config = DetectorConfig::with_scales(vec![1.0]);
        config.nms_iou = None;
        config.threshold = 2.0;
        let model = zero_model(&config.params, 1.0); // every window scores 1.0
        let det = FeaturePyramidDetector::new(model, config);
        assert!(det.detect(&textured(128, 192)).is_empty());
    }

    #[test]
    fn builder_constructs_both_families_with_one_config_path() {
        let params = HogParams::pedestrian();
        let model = zero_model(&params, 1.0);
        let image_det: ImagePyramidDetector = DetectorBuilder::new(model.clone())
            .scales(vec![1.0])
            .no_nms()
            .build()
            .unwrap();
        let feature_det: FeaturePyramidDetector = DetectorBuilder::new(model)
            .scales(vec![1.0])
            .no_nms()
            .build()
            .unwrap();
        let frame = textured(128, 192);
        // Identical configs scanning the native scale agree exactly.
        assert_eq!(
            image_det.detect(&frame).len(),
            feature_det.detect(&frame).len()
        );
        assert_eq!(image_det.config().stride_cells, 1);
        assert_eq!(feature_det.config().nms_iou, None);
    }

    #[test]
    fn builder_rejects_invalid_configurations() {
        let params = HogParams::pedestrian();
        let model = zero_model(&params, 0.0);

        let cases: Vec<(DetectorBuilder, &str)> = vec![
            (
                DetectorBuilder::new(model.clone()).scales(vec![]),
                "at least one scale",
            ),
            (
                DetectorBuilder::new(model.clone()).scales(vec![0.5]),
                "finite and >= 1.0",
            ),
            (
                DetectorBuilder::new(model.clone()).scales(vec![f64::NAN]),
                "finite and >= 1.0",
            ),
            (
                DetectorBuilder::new(model.clone()).stride_cells(0),
                "stride",
            ),
            (DetectorBuilder::new(model.clone()).nms_iou(0.0), "IoU"),
            (DetectorBuilder::new(model.clone()).nms_iou(1.5), "IoU"),
            (
                DetectorBuilder::new(model.clone()).threshold(f64::INFINITY),
                "threshold must be finite",
            ),
            (
                DetectorBuilder::new(LinearSvm::new(vec![0.0; 7], 0.0)),
                "7 weights",
            ),
        ];
        for (builder, needle) in cases {
            let err = builder.build::<FeaturePyramidDetector>().unwrap_err();
            assert!(
                matches!(err, Error::InvalidInput(_)) && err.to_string().contains(needle),
                "expected InvalidInput mentioning {needle:?}, got: {err}"
            );
        }
    }

    /// Runs `f` with `RTPED_THREADS` pinned, restoring the ambient value.
    fn with_threads<T>(threads: usize, f: impl FnOnce() -> T) -> T {
        let saved = rtped_core::env::raw(rtped_core::par::THREADS_ENV);
        std::env::set_var(rtped_core::par::THREADS_ENV, threads.to_string());
        let out = f();
        match saved {
            Some(v) => std::env::set_var(rtped_core::par::THREADS_ENV, v),
            None => std::env::remove_var(rtped_core::par::THREADS_ENV),
        }
        out
    }

    fn textured_model(params: &HogParams, bias: f64) -> LinearSvm {
        let weights: Vec<f64> = (0..params.cell_descriptor_len())
            .map(|i| ((i * 2654435761usize) % 1000) as f64 / 1000.0 - 0.5)
            .collect();
        LinearSvm::new(weights, bias)
    }

    #[test]
    fn parallel_detection_is_bit_identical_to_serial() {
        use rtped_dataset::scene::SceneBuilder;

        let scene = SceneBuilder::new(320, 256)
            .seed(5)
            .pedestrian_window(64, 128, 1.0)
            .pedestrian_window(64, 128, 1.25)
            .build();
        let config = DetectorConfig {
            // Low threshold so many windows fire and the band merge is
            // exercised on a dense hit list, not just one or two boxes.
            threshold: -1.0,
            ..DetectorConfig::two_scale()
        };
        let model = textured_model(&config.params, 0.5);
        let image_det = ImagePyramidDetector::new(model.clone(), config.clone());
        let feature_det = FeaturePyramidDetector::new(model, config);
        let detectors: [&dyn Detect; 2] = [&image_det, &feature_det];
        for det in detectors {
            let serial = with_threads(1, || det.detect(&scene.frame));
            assert!(
                !serial.is_empty(),
                "{}: scene must produce detections for the comparison to bite",
                det.method_name()
            );
            for threads in [2, 4, 7] {
                let parallel = with_threads(threads, || det.detect(&scene.frame));
                assert_eq!(
                    serial,
                    parallel,
                    "{} diverged at {threads} threads",
                    det.method_name()
                );
            }
        }
    }

    #[test]
    fn detect_frames_matches_per_frame_detect() {
        let config = DetectorConfig::two_scale();
        let model = textured_model(&config.params, 0.2);
        let det = FeaturePyramidDetector::new(model, config);
        let frames: Vec<GrayImage> = (0..3)
            .map(|k| {
                GrayImage::from_fn(160, 192, move |x, y| {
                    ((x * 13 + y * 7 + k * 31 + x * y % 11) % 256) as u8
                })
            })
            .collect();
        let batched = det.detect_frames(&frames);
        assert_eq!(batched.len(), frames.len());
        for (frame, hits) in frames.iter().zip(&batched) {
            assert_eq!(&det.detect(frame), hits);
        }
    }

    #[test]
    fn full_profile_is_bit_identical_to_plain_detect() {
        let config = DetectorConfig::two_scale();
        let model = textured_model(&config.params, 0.3);
        let frame = textured(320, 256);
        let image_det = ImagePyramidDetector::new(model.clone(), config.clone());
        let feature_det = FeaturePyramidDetector::new(model, config);
        let detectors: [&dyn Detect; 2] = [&image_det, &feature_det];
        for det in detectors {
            let plain = det.detect(&frame);
            let profiled = det.detect_with_profile(&frame, &ScanProfile::full());
            assert_eq!(plain, profiled, "{}", det.method_name());
        }
    }

    #[test]
    fn shedding_scales_drops_coarse_level_detections() {
        // Two scales, no NMS: the full scan reports scale-1.5 hits, the
        // shed scan must not.
        let mut config = DetectorConfig::two_scale();
        config.nms_iou = None;
        let model = zero_model(&config.params, 1.0);
        let det = FeaturePyramidDetector::new(model, config);
        let frame = textured(192, 256);
        let full = det.detect(&frame);
        assert!(full.iter().any(|d| d.scale > 1.0), "need coarse-level hits");
        let shed = det.detect_with_profile(
            &frame,
            &ScanProfile {
                max_scales: Some(1),
                stride_factor: 1,
            },
        );
        assert!(!shed.is_empty());
        assert!(shed.iter().all(|d| d.scale == 1.0));
        // Native-scale hits are exactly the full scan's native subset.
        let native: Vec<Detection> = full.into_iter().filter(|d| d.scale == 1.0).collect();
        assert_eq!(shed, native);
    }

    #[test]
    fn stride_factor_thins_the_scan() {
        let mut config = DetectorConfig::with_scales(vec![1.0]);
        config.nms_iou = None;
        let model = zero_model(&config.params, 1.0);
        let det = FeaturePyramidDetector::new(model, config);
        let frame = textured(128, 192); // 9x9 = 81 windows at stride 1
        let full = det.detect(&frame);
        assert_eq!(full.len(), 81);
        let coarse = det.detect_with_profile(
            &frame,
            &ScanProfile {
                max_scales: None,
                stride_factor: 2,
            },
        );
        // Stride 2 visits ceil(9/2)^2 = 25 positions.
        assert_eq!(coarse.len(), 25);
    }

    #[test]
    fn effective_never_sheds_below_one_scale() {
        let config = DetectorConfig::two_scale();
        let profile = ScanProfile {
            max_scales: Some(0),
            stride_factor: 1,
        };
        assert_eq!(profile.effective(&config).scales, vec![1.0]);
        assert!(ScanProfile::full().is_full());
        assert!(!profile.is_full());
    }

    #[test]
    fn small_frame_yields_no_detections() {
        let config = DetectorConfig::two_scale();
        let model = zero_model(&config.params, 1.0);
        let det = ImagePyramidDetector::new(model, config);
        // Smaller than one window: nothing to scan.
        assert!(det.detect(&textured(32, 32)).is_empty());
    }
}
