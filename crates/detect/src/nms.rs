//! Greedy non-maximum suppression.
//!
//! Sliding a window one cell at a time fires many overlapping detections
//! around each true pedestrian; NMS keeps the highest-scoring box of each
//! overlapping cluster.

use crate::detector::Detection;

/// Suppresses detections that overlap a higher-scoring detection by more
/// than `iou_threshold`. Returns the survivors sorted by descending score.
///
/// # Panics
///
/// Panics if `iou_threshold` is outside `[0, 1]` or any score is NaN.
#[must_use]
pub fn non_maximum_suppression(
    mut detections: Vec<Detection>,
    iou_threshold: f64,
) -> Vec<Detection> {
    assert!(
        (0.0..=1.0).contains(&iou_threshold),
        "iou threshold must be in [0, 1]"
    );
    detections.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .expect("detection scores must not be NaN")
    });
    let mut keep: Vec<Detection> = Vec::new();
    for det in detections {
        if keep
            .iter()
            .all(|kept| kept.bbox.iou(&det.bbox) <= iou_threshold)
        {
            keep.push(det);
        }
    }
    keep
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bbox::BoundingBox;

    fn det(x: i64, y: i64, w: u64, h: u64, score: f64) -> Detection {
        Detection {
            bbox: BoundingBox::new(x, y, w, h),
            score,
            scale: 1.0,
        }
    }

    #[test]
    fn keeps_the_strongest_of_a_cluster() {
        let dets = vec![
            det(0, 0, 64, 128, 1.0),
            det(4, 0, 64, 128, 2.0),
            det(8, 0, 64, 128, 1.5),
        ];
        let kept = non_maximum_suppression(dets, 0.5);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].score, 2.0);
    }

    #[test]
    fn keeps_disjoint_detections() {
        let dets = vec![det(0, 0, 64, 128, 1.0), det(500, 0, 64, 128, 0.5)];
        let kept = non_maximum_suppression(dets, 0.5);
        assert_eq!(kept.len(), 2);
    }

    #[test]
    fn result_is_sorted_by_score() {
        let dets = vec![
            det(0, 0, 10, 10, 0.2),
            det(100, 0, 10, 10, 0.9),
            det(200, 0, 10, 10, 0.5),
        ];
        let kept = non_maximum_suppression(dets, 0.5);
        let scores: Vec<f64> = kept.iter().map(|d| d.score).collect();
        assert_eq!(scores, vec![0.9, 0.5, 0.2]);
    }

    #[test]
    fn threshold_zero_suppresses_any_overlap() {
        let dets = vec![det(0, 0, 10, 10, 1.0), det(9, 9, 10, 10, 0.9)];
        let kept = non_maximum_suppression(dets, 0.0);
        assert_eq!(kept.len(), 1);
    }

    #[test]
    fn threshold_one_keeps_everything_but_exact_duplicates_too() {
        // IoU <= 1.0 is always true except... nothing exceeds 1.0, so all
        // boxes are kept.
        let dets = vec![det(0, 0, 10, 10, 1.0), det(0, 0, 10, 10, 0.9)];
        let kept = non_maximum_suppression(dets, 1.0);
        assert_eq!(kept.len(), 2);
    }

    #[test]
    fn empty_input_is_fine() {
        assert!(non_maximum_suppression(Vec::new(), 0.5).is_empty());
    }

    #[test]
    #[should_panic(expected = "iou threshold must be in [0, 1]")]
    fn invalid_threshold_panics() {
        let _ = non_maximum_suppression(Vec::new(), 1.5);
    }

    #[test]
    fn chain_of_overlaps_collapses_transitively() {
        // A overlaps B, B overlaps C, but A and C are disjoint: greedy NMS
        // keeps A (strongest) and C (disjoint from A), suppressing only B.
        let dets = vec![
            det(0, 0, 20, 20, 3.0),  // A
            det(15, 0, 20, 20, 2.0), // B overlaps A and C
            det(30, 0, 20, 20, 1.0), // C disjoint from A
        ];
        let kept = non_maximum_suppression(dets, 0.1);
        assert_eq!(kept.len(), 2);
        assert_eq!(kept[0].score, 3.0);
        assert_eq!(kept[1].score, 1.0);
    }
}
