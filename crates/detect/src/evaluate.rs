//! Scene-level detector evaluation: greedy IoU matching of detections
//! against ground-truth boxes, with precision / recall / F1 — the
//! PASCAL-style protocol used to compare full detectors (as opposed to
//! the per-window protocol of the paper's Table 1).

use crate::bbox::BoundingBox;
use crate::detector::Detection;

/// The outcome of matching one scene's detections to its ground truth.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MatchResult {
    /// Detections matched to a ground-truth box (IoU above threshold).
    pub true_positives: usize,
    /// Detections with no ground-truth match.
    pub false_positives: usize,
    /// Ground-truth boxes no detection matched.
    pub missed: usize,
    /// The IoU of each matched pair, in matching order.
    pub match_ious: Vec<f64>,
}

impl MatchResult {
    /// `TP / (TP + FP)`; 1.0 when nothing was detected (no false alarms).
    #[must_use]
    pub fn precision(&self) -> f64 {
        let det = self.true_positives + self.false_positives;
        if det == 0 {
            1.0
        } else {
            self.true_positives as f64 / det as f64
        }
    }

    /// `TP / (TP + missed)`; 1.0 when the scene has no ground truth.
    #[must_use]
    pub fn recall(&self) -> f64 {
        let gt = self.true_positives + self.missed;
        if gt == 0 {
            1.0
        } else {
            self.true_positives as f64 / gt as f64
        }
    }

    /// Harmonic mean of precision and recall; 0 when undefined.
    #[must_use]
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Accumulates another scene's result into this one.
    pub fn merge(&mut self, other: &MatchResult) {
        self.true_positives += other.true_positives;
        self.false_positives += other.false_positives;
        self.missed += other.missed;
        self.match_ious.extend_from_slice(&other.match_ious);
    }
}

/// Greedily matches detections (highest score first) to ground truth:
/// each ground-truth box is matched at most once, to the best remaining
/// detection with `IoU >= iou_threshold`.
///
/// # Panics
///
/// Panics if `iou_threshold` is outside `(0, 1]` or a score is NaN.
#[must_use]
pub fn match_detections(
    detections: &[Detection],
    ground_truth: &[BoundingBox],
    iou_threshold: f64,
) -> MatchResult {
    assert!(
        iou_threshold > 0.0 && iou_threshold <= 1.0,
        "iou threshold must be in (0, 1]"
    );
    let mut order: Vec<usize> = (0..detections.len()).collect();
    order.sort_by(|&a, &b| {
        detections[b]
            .score
            .partial_cmp(&detections[a].score)
            .expect("detection scores must not be NaN")
    });

    let mut gt_taken = vec![false; ground_truth.len()];
    let mut result = MatchResult::default();
    for &di in &order {
        let det = &detections[di];
        // Best unmatched ground-truth box for this detection.
        let mut best: Option<(usize, f64)> = None;
        for (gi, gt) in ground_truth.iter().enumerate() {
            if gt_taken[gi] {
                continue;
            }
            let iou = det.bbox.iou(gt);
            if iou >= iou_threshold && best.is_none_or(|(_, b)| iou > b) {
                best = Some((gi, iou));
            }
        }
        match best {
            Some((gi, iou)) => {
                gt_taken[gi] = true;
                result.true_positives += 1;
                result.match_ious.push(iou);
            }
            None => result.false_positives += 1,
        }
    }
    result.missed = gt_taken.iter().filter(|&&t| !t).count();
    result
}

/// One point of a precision–recall curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrPoint {
    /// Score threshold producing this point.
    pub threshold: f64,
    /// Precision at the threshold.
    pub precision: f64,
    /// Recall at the threshold.
    pub recall: f64,
}

/// Detector-level precision–recall curve over per-scene detections and
/// ground truth, built by sweeping the score threshold (PASCAL-style).
///
/// `scenes` pairs each scene's raw detections (pre-threshold) with its
/// ground-truth boxes.
///
/// # Panics
///
/// Panics if `iou_threshold` is outside `(0, 1]`, a score is NaN, or
/// there is no ground truth at all (recall would be undefined).
#[must_use]
pub fn pr_curve(scenes: &[(Vec<Detection>, Vec<BoundingBox>)], iou_threshold: f64) -> Vec<PrPoint> {
    assert!(
        iou_threshold > 0.0 && iou_threshold <= 1.0,
        "iou threshold must be in (0, 1]"
    );
    let total_gt: usize = scenes.iter().map(|(_, gt)| gt.len()).sum();
    assert!(total_gt > 0, "need at least one ground-truth box");

    // Sweep over every distinct detection score.
    let mut thresholds: Vec<f64> = scenes
        .iter()
        .flat_map(|(dets, _)| dets.iter().map(|d| d.score))
        .collect();
    thresholds.sort_by(|a, b| b.partial_cmp(a).expect("scores must not be NaN"));
    thresholds.dedup();

    let mut points = Vec::with_capacity(thresholds.len());
    for &t in &thresholds {
        let mut result = MatchResult::default();
        for (dets, gt) in scenes {
            let kept: Vec<Detection> = dets.iter().filter(|d| d.score >= t).copied().collect();
            result.merge(&match_detections(&kept, gt, iou_threshold));
        }
        points.push(PrPoint {
            threshold: t,
            precision: result.precision(),
            recall: result.recall(),
        });
    }
    points
}

/// Average precision: area under the precision–recall curve with the
/// standard right-envelope interpolation (precision at recall `r` = max
/// precision at any recall ≥ `r`).
///
/// # Panics
///
/// Panics if `curve` is empty.
#[must_use]
pub fn average_precision(curve: &[PrPoint]) -> f64 {
    assert!(!curve.is_empty(), "need at least one PR point");
    let mut pts: Vec<(f64, f64)> = curve.iter().map(|p| (p.recall, p.precision)).collect();
    pts.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("recall must not be NaN"));
    let mut envelope = pts;
    for i in (0..envelope.len().saturating_sub(1)).rev() {
        envelope[i].1 = envelope[i].1.max(envelope[i + 1].1);
    }
    let mut ap = 0.0;
    let mut prev_recall = 0.0;
    for (recall, precision) in envelope {
        if recall > prev_recall {
            ap += (recall - prev_recall) * precision;
            prev_recall = recall;
        }
    }
    ap
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det(x: i64, y: i64, score: f64) -> Detection {
        Detection {
            bbox: BoundingBox::new(x, y, 64, 128),
            score,
            scale: 1.0,
        }
    }

    #[test]
    fn perfect_match() {
        let gt = vec![BoundingBox::new(10, 10, 64, 128)];
        let dets = vec![det(10, 10, 1.0)];
        let m = match_detections(&dets, &gt, 0.5);
        assert_eq!(m.true_positives, 1);
        assert_eq!(m.false_positives, 0);
        assert_eq!(m.missed, 0);
        assert_eq!(m.precision(), 1.0);
        assert_eq!(m.recall(), 1.0);
        assert!((m.f1() - 1.0).abs() < 1e-12);
        assert!((m.match_ious[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn each_ground_truth_matches_once() {
        // Two detections over the same pedestrian: one TP, one FP.
        let gt = vec![BoundingBox::new(0, 0, 64, 128)];
        let dets = vec![det(0, 0, 2.0), det(4, 4, 1.0)];
        let m = match_detections(&dets, &gt, 0.5);
        assert_eq!(m.true_positives, 1);
        assert_eq!(m.false_positives, 1);
        assert_eq!(m.missed, 0);
        assert_eq!(m.precision(), 0.5);
    }

    #[test]
    fn higher_scores_get_matching_priority() {
        // Both detections overlap the GT; the stronger one must take it.
        let gt = vec![BoundingBox::new(0, 0, 64, 128)];
        let dets = vec![det(8, 8, 0.5), det(0, 0, 2.0)];
        let m = match_detections(&dets, &gt, 0.3);
        assert_eq!(m.true_positives, 1);
        // The match IoU must be the perfect one (from the stronger det).
        assert!((m.match_ious[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn missed_pedestrians_are_counted() {
        let gt = vec![
            BoundingBox::new(0, 0, 64, 128),
            BoundingBox::new(500, 0, 64, 128),
        ];
        let dets = vec![det(0, 0, 1.0)];
        let m = match_detections(&dets, &gt, 0.5);
        assert_eq!(m.true_positives, 1);
        assert_eq!(m.missed, 1);
        assert_eq!(m.recall(), 0.5);
    }

    #[test]
    fn empty_cases_are_well_defined() {
        let m = match_detections(&[], &[], 0.5);
        assert_eq!(m.precision(), 1.0);
        assert_eq!(m.recall(), 1.0);
        let m = match_detections(&[], &[BoundingBox::new(0, 0, 1, 1)], 0.5);
        assert_eq!(m.recall(), 0.0);
        assert_eq!(m.precision(), 1.0);
        let m = match_detections(&[det(0, 0, 1.0)], &[], 0.5);
        assert_eq!(m.precision(), 0.0);
        assert_eq!(m.f1(), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let gt = vec![BoundingBox::new(0, 0, 64, 128)];
        let mut total = match_detections(&[det(0, 0, 1.0)], &gt, 0.5);
        let second = match_detections(&[det(300, 0, 1.0)], &gt, 0.5);
        total.merge(&second);
        assert_eq!(total.true_positives, 1);
        assert_eq!(total.false_positives, 1);
        assert_eq!(total.missed, 1);
    }

    #[test]
    #[should_panic(expected = "iou threshold must be in (0, 1]")]
    fn zero_threshold_rejected() {
        let _ = match_detections(&[], &[], 0.0);
    }

    #[test]
    fn pr_curve_of_perfect_detector_has_ap_one() {
        let gt = vec![BoundingBox::new(0, 0, 64, 128)];
        let scenes = vec![(vec![det(0, 0, 2.0)], gt)];
        let curve = pr_curve(&scenes, 0.5);
        assert_eq!(curve.len(), 1);
        assert_eq!(curve[0].precision, 1.0);
        assert_eq!(curve[0].recall, 1.0);
        assert!((average_precision(&curve) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pr_curve_trades_precision_for_recall() {
        // Two scenes: one has a high-scoring TP, the other a mid-scoring
        // FP plus a low-scoring TP. Lowering the threshold raises recall
        // but passes the FP first, denting precision.
        let scene_a = (vec![det(0, 0, 3.0)], vec![BoundingBox::new(0, 0, 64, 128)]);
        let scene_b = (
            vec![det(500, 0, 2.0), det(0, 0, 1.0)],
            vec![BoundingBox::new(0, 0, 64, 128)],
        );
        let curve = pr_curve(&[scene_a, scene_b], 0.5);
        assert_eq!(curve.len(), 3);
        // At t=3: 1 TP, recall 0.5, precision 1.
        assert_eq!(curve[0].recall, 0.5);
        assert_eq!(curve[0].precision, 1.0);
        // At t=2: FP enters: precision 0.5, recall still 0.5.
        assert_eq!(curve[1].precision, 0.5);
        assert_eq!(curve[1].recall, 0.5);
        // At t=1: second TP: recall 1, precision 2/3.
        assert_eq!(curve[2].recall, 1.0);
        assert!((curve[2].precision - 2.0 / 3.0).abs() < 1e-12);
        let ap = average_precision(&curve);
        // AP = 0.5 * 1.0 + 0.5 * (2/3) = 5/6.
        assert!((ap - 5.0 / 6.0).abs() < 1e-12, "ap = {ap}");
    }

    #[test]
    fn pr_curve_recall_is_monotone_in_threshold() {
        let scenes = vec![(
            vec![det(0, 0, 3.0), det(4, 0, 2.0), det(500, 0, 1.0)],
            vec![BoundingBox::new(0, 0, 64, 128)],
        )];
        let curve = pr_curve(&scenes, 0.5);
        for pair in curve.windows(2) {
            assert!(pair[1].recall >= pair[0].recall);
            assert!(pair[1].threshold < pair[0].threshold);
        }
    }

    #[test]
    #[should_panic(expected = "need at least one ground-truth box")]
    fn pr_curve_requires_ground_truth() {
        let scenes = vec![(vec![det(0, 0, 1.0)], vec![])];
        let _ = pr_curve(&scenes, 0.5);
    }

    #[test]
    #[should_panic(expected = "need at least one PR point")]
    fn ap_requires_points() {
        let _ = average_precision(&[]);
    }
}
