//! The INRIA-style evaluation protocol (paper §4).
//!
//! Fixed-size train/test splits of positive and negative 64×128 windows,
//! with up-sampled test variants at the paper's scale factors 1.1–2.0.
//! Everything is deterministic in the builder seed; train and test draws
//! use disjoint RNG streams so changing one count never perturbs the other
//! split.

use rtped_core::rng::SeedRng;
use rtped_core::Error;

use rtped_image::resize::{scale_by, Filter};
use rtped_image::GrayImage;

use crate::negatives::render_negatives;
use crate::pedestrian::render_pedestrian;

/// Default window width (the paper's detection window).
pub const WINDOW_WIDTH: usize = 64;
/// Default window height.
pub const WINDOW_HEIGHT: usize = 128;

/// Paper §4 test-set size: positive windows.
pub const PAPER_TEST_POSITIVES: usize = 1126;
/// Paper §4 test-set size: negative windows.
pub const PAPER_TEST_NEGATIVES: usize = 4530;
/// INRIA training-set size: positive windows (2416 in the original set).
pub const PAPER_TRAIN_POSITIVES: usize = 2416;
/// INRIA-style training negatives (sampled from negative images).
pub const PAPER_TRAIN_NEGATIVES: usize = 12180;

/// The scale ladder of §4: 1.1 to 2.0 in steps of 0.1.
#[must_use]
pub fn paper_scales() -> Vec<f64> {
    (1..=10).map(|i| 1.0 + f64::from(i) * 0.1).collect()
}

/// A complete train/test dataset of pedestrian and background windows.
///
/// # Example
///
/// ```
/// use rtped_dataset::InriaProtocol;
///
/// # fn main() -> Result<(), rtped_core::Error> {
/// let ds = InriaProtocol::builder()
///     .train_positives(4)
///     .train_negatives(8)
///     .test_positives(2)
///     .test_negatives(4)
///     .seed(42)
///     .build()?;
/// assert_eq!(ds.test_positives().len(), 2);
/// let upsampled = ds.upsampled_test_positives(1.5);
/// assert_eq!(upsampled[0].dimensions(), (96, 192));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct InriaProtocol {
    train_pos: Vec<GrayImage>,
    train_neg: Vec<GrayImage>,
    test_pos: Vec<GrayImage>,
    test_neg: Vec<GrayImage>,
    window: (usize, usize),
    seed: u64,
}

impl InriaProtocol {
    /// Starts building a dataset. Defaults use the paper's counts — call
    /// the count setters for smaller, faster sets in tests.
    #[must_use]
    pub fn builder() -> InriaProtocolBuilder {
        InriaProtocolBuilder::new()
    }

    /// Training pedestrian windows.
    #[must_use]
    pub fn train_positives(&self) -> &[GrayImage] {
        &self.train_pos
    }

    /// Training background windows.
    #[must_use]
    pub fn train_negatives(&self) -> &[GrayImage] {
        &self.train_neg
    }

    /// Test pedestrian windows (base scale).
    #[must_use]
    pub fn test_positives(&self) -> &[GrayImage] {
        &self.test_pos
    }

    /// Test background windows (base scale).
    #[must_use]
    pub fn test_negatives(&self) -> &[GrayImage] {
        &self.test_neg
    }

    /// Window size `(width, height)` of every sample.
    #[must_use]
    pub fn window(&self) -> (usize, usize) {
        self.window
    }

    /// The seed the dataset was built with.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The §4 up-sampled positive test set: every test positive resized by
    /// `scale` (bicubic, like MATLAB's default `imresize`).
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not positive and finite.
    #[must_use]
    pub fn upsampled_test_positives(&self, scale: f64) -> Vec<GrayImage> {
        self.test_pos
            .iter()
            .map(|img| scale_by(img, scale, Filter::Bicubic))
            .collect()
    }

    /// The §4 up-sampled negative test set.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not positive and finite.
    #[must_use]
    pub fn upsampled_test_negatives(&self, scale: f64) -> Vec<GrayImage> {
        self.test_neg
            .iter()
            .map(|img| scale_by(img, scale, Filter::Bicubic))
            .collect()
    }

    /// Iterates the labelled training set as `(image, is_positive)`.
    pub fn labelled_train(&self) -> impl Iterator<Item = (&GrayImage, bool)> {
        self.train_pos
            .iter()
            .map(|i| (i, true))
            .chain(self.train_neg.iter().map(|i| (i, false)))
    }

    /// Iterates the labelled base-scale test set as `(image, is_positive)`.
    pub fn labelled_test(&self) -> impl Iterator<Item = (&GrayImage, bool)> {
        self.test_pos
            .iter()
            .map(|i| (i, true))
            .chain(self.test_neg.iter().map(|i| (i, false)))
    }
}

/// Builder for [`InriaProtocol`].
#[derive(Debug, Clone)]
pub struct InriaProtocolBuilder {
    train_pos: usize,
    train_neg: usize,
    test_pos: usize,
    test_neg: usize,
    window: (usize, usize),
    noise: u8,
    test_noise: Option<u8>,
    seed: u64,
}

impl InriaProtocolBuilder {
    fn new() -> Self {
        Self {
            train_pos: PAPER_TRAIN_POSITIVES,
            train_neg: PAPER_TRAIN_NEGATIVES,
            test_pos: PAPER_TEST_POSITIVES,
            test_neg: PAPER_TEST_NEGATIVES,
            window: (WINDOW_WIDTH, WINDOW_HEIGHT),
            noise: 6,
            test_noise: None,
            seed: 0x000D_AC17,
        }
    }

    /// Number of positive training windows.
    #[must_use]
    pub fn train_positives(mut self, n: usize) -> Self {
        self.train_pos = n;
        self
    }

    /// Number of negative training windows.
    #[must_use]
    pub fn train_negatives(mut self, n: usize) -> Self {
        self.train_neg = n;
        self
    }

    /// Number of positive test windows.
    #[must_use]
    pub fn test_positives(mut self, n: usize) -> Self {
        self.test_pos = n;
        self
    }

    /// Number of negative test windows.
    #[must_use]
    pub fn test_negatives(mut self, n: usize) -> Self {
        self.test_neg = n;
        self
    }

    /// Window size in pixels (default 64×128).
    #[must_use]
    pub fn window(mut self, width: usize, height: usize) -> Self {
        self.window = (width, height);
        self
    }

    /// Sensor-noise amplitude added to every window (default ±6).
    #[must_use]
    pub fn noise(mut self, amplitude: u8) -> Self {
        self.noise = amplitude;
        self
    }

    /// Separate noise amplitude for the *test* split (defaults to the
    /// training amplitude). Real train/test splits come from different
    /// capture sessions; a small mismatch models that domain shift and
    /// keeps the synthetic task from saturating.
    #[must_use]
    pub fn test_noise(mut self, amplitude: u8) -> Self {
        self.test_noise = Some(amplitude);
        self
    }

    /// Master seed; every split derives its own sub-stream.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates the dataset.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] if any count is zero or the window
    /// is degenerate (smaller than 16×32 pixels).
    pub fn build(self) -> Result<InriaProtocol, Error> {
        if self.train_pos == 0 || self.train_neg == 0 || self.test_pos == 0 || self.test_neg == 0 {
            return Err(Error::invalid_input(
                "invalid dataset configuration: every split needs at least one sample",
            ));
        }
        let (w, h) = self.window;
        if w < 16 || h < 32 {
            return Err(Error::invalid_input(format!(
                "invalid dataset configuration: window {w}x{h} too small to render a figure (min 16x32)"
            )));
        }
        // Independent sub-streams per split.
        let mut rng_train_pos = SeedRng::seed_from_u64(self.seed.wrapping_add(0x01));
        let mut rng_train_neg = SeedRng::seed_from_u64(self.seed.wrapping_add(0x02));
        let mut rng_test_pos = SeedRng::seed_from_u64(self.seed.wrapping_add(0x03));
        let mut rng_test_neg = SeedRng::seed_from_u64(self.seed.wrapping_add(0x04));

        let test_noise = self.test_noise.unwrap_or(self.noise);
        let train_pos = (0..self.train_pos)
            .map(|_| render_pedestrian(&mut rng_train_pos, w, h, self.noise))
            .collect();
        let train_neg = render_negatives(&mut rng_train_neg, self.train_neg, w, h, self.noise);
        let test_pos = (0..self.test_pos)
            .map(|_| render_pedestrian(&mut rng_test_pos, w, h, test_noise))
            .collect();
        let test_neg = render_negatives(&mut rng_test_neg, self.test_neg, w, h, test_noise);

        Ok(InriaProtocol {
            train_pos,
            train_neg,
            test_pos,
            test_neg,
            window: self.window,
            seed: self.seed,
        })
    }
}

impl Default for InriaProtocolBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> InriaProtocol {
        InriaProtocol::builder()
            .train_positives(3)
            .train_negatives(5)
            .test_positives(2)
            .test_negatives(4)
            .seed(1)
            .build()
            .unwrap()
    }

    #[test]
    fn counts_match_configuration() {
        let ds = tiny();
        assert_eq!(ds.train_positives().len(), 3);
        assert_eq!(ds.train_negatives().len(), 5);
        assert_eq!(ds.test_positives().len(), 2);
        assert_eq!(ds.test_negatives().len(), 4);
    }

    #[test]
    fn windows_have_default_size() {
        let ds = tiny();
        assert_eq!(ds.window(), (64, 128));
        for (img, _) in ds.labelled_train() {
            assert_eq!(img.dimensions(), (64, 128));
        }
    }

    #[test]
    fn dataset_is_deterministic_in_seed() {
        let a = tiny();
        let b = tiny();
        assert_eq!(a.train_positives(), b.train_positives());
        assert_eq!(a.test_negatives(), b.test_negatives());
    }

    #[test]
    fn test_split_is_independent_of_train_count() {
        // Growing the training set must not change the test windows.
        let small = InriaProtocol::builder()
            .train_positives(2)
            .train_negatives(2)
            .test_positives(3)
            .test_negatives(3)
            .seed(9)
            .build()
            .unwrap();
        let big = InriaProtocol::builder()
            .train_positives(10)
            .train_negatives(10)
            .test_positives(3)
            .test_negatives(3)
            .seed(9)
            .build()
            .unwrap();
        assert_eq!(small.test_positives(), big.test_positives());
        assert_eq!(small.test_negatives(), big.test_negatives());
    }

    #[test]
    fn upsampled_positives_have_scaled_dimensions() {
        let ds = tiny();
        for (scale, (w, h)) in [(1.1, (70, 141)), (1.5, (96, 192)), (2.0, (128, 256))] {
            let up = ds.upsampled_test_positives(scale);
            assert_eq!(up[0].dimensions(), (w, h), "scale {scale}");
        }
    }

    #[test]
    fn paper_scales_ladder() {
        let scales = paper_scales();
        assert_eq!(scales.len(), 10);
        assert!((scales[0] - 1.1).abs() < 1e-12);
        assert!((scales[9] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn labelled_iterators_cover_both_classes() {
        let ds = tiny();
        let train: Vec<bool> = ds.labelled_train().map(|(_, l)| l).collect();
        assert_eq!(train.iter().filter(|&&l| l).count(), 3);
        assert_eq!(train.iter().filter(|&&l| !l).count(), 5);
        let test: Vec<bool> = ds.labelled_test().map(|(_, l)| l).collect();
        assert_eq!(test.len(), 6);
    }

    #[test]
    fn rejects_zero_counts() {
        assert!(InriaProtocol::builder().train_positives(0).build().is_err());
    }

    #[test]
    fn rejects_tiny_window() {
        let err = InriaProtocol::builder()
            .window(8, 16)
            .train_positives(1)
            .train_negatives(1)
            .test_positives(1)
            .test_negatives(1)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("too small"));
    }

    #[test]
    fn default_counts_are_papers() {
        let b = InriaProtocol::builder();
        assert_eq!(b.test_pos, PAPER_TEST_POSITIVES);
        assert_eq!(b.test_neg, PAPER_TEST_NEGATIVES);
        assert_eq!(b.train_pos, PAPER_TRAIN_POSITIVES);
    }
}
