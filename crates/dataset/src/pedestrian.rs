//! Procedural articulated pedestrian renderer.
//!
//! Draws a randomized human silhouette — head, torso, pelvis, two arms and
//! two legs with gait articulation — into a 64×128 window over a cluttered
//! background. The figure's limb layout and proportions follow the upright
//! pedestrian poses HOG was designed for; randomized pose, body intensity,
//! contrast, position jitter, and sensor noise provide the intra-class
//! variation a trainable dataset needs.

use rtped_core::rng::Rng;

use rtped_image::draw::{draw_capsule, fill_ellipse};
use rtped_image::synthetic::{add_uniform_noise, clutter_background};
use rtped_image::GrayImage;

/// Pose and appearance parameters of one rendered pedestrian.
///
/// All lengths are fractions of the window height so the same pose renders
/// consistently at any window size.
#[derive(Debug, Clone, PartialEq)]
pub struct Pose {
    /// Total figure height as a fraction of the window height (~0.75,
    /// following the INRIA annotation convention of generous margins).
    pub height_frac: f64,
    /// Horizontal center offset from the window center, as a fraction of
    /// the window width.
    pub center_offset: f64,
    /// Gait angle of the leading leg in radians (0 = standing).
    pub leg_swing: f64,
    /// Arm swing angle in radians.
    pub arm_swing: f64,
    /// Torso lean in radians.
    pub lean: f64,
    /// Body intensity (0–255).
    pub body_value: u8,
    /// Head intensity (0–255); usually close to the body value.
    pub head_value: u8,
}

impl Pose {
    /// Samples a random walking/standing pose.
    pub fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // Body either dark on light background or light on dark; pick the
        // intensity first, the background generator is independent.
        let body_value = if rng.gen_bool(0.5) {
            rng.gen_range(10..=70)
        } else {
            rng.gen_range(185..=245)
        };
        let head_delta: i16 = rng.gen_range(-25..=25);
        Self {
            height_frac: rng.gen_range(0.70..=0.82),
            center_offset: rng.gen_range(-0.06..=0.06),
            leg_swing: rng.gen_range(0.0..=0.45),
            arm_swing: rng.gen_range(0.0..=0.5),
            lean: rng.gen_range(-0.06..=0.06),
            body_value,
            head_value: (i16::from(body_value) + head_delta).clamp(0, 255) as u8,
        }
    }
}

/// Renders one pedestrian window.
///
/// The background is procedural urban clutter; the figure is drawn with
/// anti-aliased capsules and ellipses; uniform sensor noise of amplitude
/// `noise` is applied last. Deterministic in `rng`.
///
/// # Panics
///
/// Panics if `width` or `height` is zero.
#[must_use]
pub fn render_pedestrian<R: Rng + ?Sized>(
    rng: &mut R,
    width: usize,
    height: usize,
    noise: u8,
) -> GrayImage {
    let mut img = clutter_background(rng, width, height);
    let pose = Pose::sample(rng);
    draw_figure(&mut img, &pose);
    add_uniform_noise(&mut img, rng, noise);
    img
}

/// Draws `pose` into `img` (exposed so scenes can place figures over their
/// own backgrounds).
pub fn draw_figure(img: &mut GrayImage, pose: &Pose) {
    let w = img.width() as f64;
    let h = img.height() as f64;
    let fig_h = h * pose.height_frac;
    let cx = w / 2.0 + pose.center_offset * w;
    let top = (h - fig_h) / 2.0;

    // Proportions (fractions of figure height), loosely anatomical.
    let head_r = fig_h * 0.065;
    let neck_y = top + fig_h * 0.16;
    let shoulder_y = top + fig_h * 0.20;
    let hip_y = top + fig_h * 0.52;
    let knee_len = fig_h * 0.24;
    let shin_len = fig_h * 0.24;
    let arm_len = fig_h * 0.26;
    let forearm_len = fig_h * 0.20;
    let torso_w = fig_h * 0.14;
    let limb_w = fig_h * 0.055;

    let lean_dx = pose.lean * fig_h * 0.3;
    let body = pose.body_value;
    let alpha = 1.0;

    // Torso: thick capsule from shoulders to hips.
    draw_capsule(
        img,
        cx + lean_dx,
        shoulder_y,
        cx,
        hip_y,
        torso_w,
        body,
        alpha,
    );
    // Head.
    fill_ellipse(
        img,
        cx + lean_dx,
        top + head_r + fig_h * 0.01,
        head_r,
        head_r * 1.15,
        pose.head_value,
        alpha,
    );
    // Neck.
    draw_capsule(
        img,
        cx + lean_dx,
        top + head_r * 2.0,
        cx + lean_dx,
        neck_y,
        limb_w,
        body,
        alpha,
    );

    // Legs: thigh + shin, mirrored swing.
    for side in [-1.0, 1.0] {
        let swing = pose.leg_swing * side;
        let hip_x = cx + side * torso_w * 0.25;
        let knee_x = hip_x + swing.sin() * knee_len;
        let knee_y = hip_y + swing.cos() * knee_len;
        // Shin swings back toward vertical.
        let shin_angle = swing * 0.4;
        let foot_x = knee_x + shin_angle.sin() * shin_len;
        let foot_y = knee_y + shin_angle.cos() * shin_len;
        draw_capsule(img, hip_x, hip_y, knee_x, knee_y, limb_w, body, alpha);
        draw_capsule(
            img,
            knee_x,
            knee_y,
            foot_x,
            foot_y,
            limb_w * 0.9,
            body,
            alpha,
        );
    }

    // Arms: upper arm + forearm, opposite phase to the legs.
    for side in [-1.0, 1.0] {
        let swing = pose.arm_swing * -side;
        let shoulder_x = cx + lean_dx + side * torso_w * 0.55;
        let elbow_x = shoulder_x + swing.sin() * arm_len;
        let elbow_y = shoulder_y + swing.cos() * arm_len;
        let fore_angle = swing * 0.6;
        let hand_x = elbow_x + fore_angle.sin() * forearm_len;
        let hand_y = elbow_y + fore_angle.cos() * forearm_len;
        draw_capsule(
            img,
            shoulder_x,
            shoulder_y,
            elbow_x,
            elbow_y,
            limb_w * 0.8,
            body,
            alpha,
        );
        draw_capsule(
            img,
            elbow_x,
            elbow_y,
            hand_x,
            hand_y,
            limb_w * 0.7,
            body,
            alpha,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtped_core::rng::SeedRng;

    #[test]
    fn render_is_deterministic() {
        let mut a = SeedRng::seed_from_u64(3);
        let mut b = SeedRng::seed_from_u64(3);
        let img_a = render_pedestrian(&mut a, 64, 128, 6);
        let img_b = render_pedestrian(&mut b, 64, 128, 6);
        assert_eq!(img_a, img_b);
    }

    #[test]
    fn different_seeds_give_different_windows() {
        let mut a = SeedRng::seed_from_u64(3);
        let mut b = SeedRng::seed_from_u64(4);
        assert_ne!(
            render_pedestrian(&mut a, 64, 128, 6),
            render_pedestrian(&mut b, 64, 128, 6)
        );
    }

    #[test]
    fn figure_adds_central_structure() {
        // The figure must change the central columns relative to the
        // background alone: re-render background with same rng stream,
        // then compare central region variance.
        let mut rng = SeedRng::seed_from_u64(9);
        let img = render_pedestrian(&mut rng, 64, 128, 0);
        // Central vertical strip should contain body pixels of the pose's
        // body_value family: verify a long vertical run of similar value
        // exists near the center (the torso).
        let mut best_run = 0;
        for x in 24..40 {
            let mut run = 0;
            let mut max_run = 0;
            for y in 1..128 {
                let a = i16::from(img.get(x, y));
                let b = i16::from(img.get(x, y - 1));
                if (a - b).abs() <= 12 {
                    run += 1;
                    max_run = max_run.max(run);
                } else {
                    run = 0;
                }
            }
            best_run = best_run.max(max_run);
        }
        assert!(
            best_run >= 20,
            "expected a smooth vertical torso run, best = {best_run}"
        );
    }

    #[test]
    fn pose_sample_within_documented_ranges() {
        let mut rng = SeedRng::seed_from_u64(1);
        for _ in 0..100 {
            let p = Pose::sample(&mut rng);
            assert!((0.70..=0.82).contains(&p.height_frac));
            assert!((-0.06..=0.06).contains(&p.center_offset));
            assert!((0.0..=0.45).contains(&p.leg_swing));
            assert!(p.body_value <= 245);
        }
    }

    #[test]
    fn draw_figure_respects_bounds() {
        // Must not panic on tiny windows.
        let mut rng = SeedRng::seed_from_u64(5);
        let pose = Pose::sample(&mut rng);
        let mut img = GrayImage::new(16, 32);
        draw_figure(&mut img, &pose);
    }

    #[test]
    fn render_at_double_scale_is_larger_figure() {
        let mut rng = SeedRng::seed_from_u64(12);
        let img = render_pedestrian(&mut rng, 128, 256, 0);
        assert_eq!(img.dimensions(), (128, 256));
        assert!(img.variance() > 100.0);
    }
}
