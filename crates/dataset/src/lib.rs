//! Seeded synthetic pedestrian dataset following the paper's INRIA
//! evaluation protocol.
//!
//! The DAC'17 paper validates its HOG-feature-scaling method on the INRIA
//! person dataset (§4): an SVM is trained on 64×128 windows, then the test
//! windows (1126 positives, 4530 negatives, the negatives "randomly sampled
//! from INRIA negative images") are *up-sampled* by factors 1.1 to 2.0 and
//! pushed through the two detector configurations of Fig. 3.
//!
//! INRIA imagery cannot ship inside this repository, so this crate provides
//! a **deterministic procedural substitute** (see DESIGN.md §2): positives
//! are articulated pedestrian silhouettes rendered over cluttered urban
//! backgrounds with randomized pose, contrast, illumination, and sensor
//! noise; negatives are the same backgrounds without a figure. What the
//! experiment measures — the *relative* accuracy of image-scaling versus
//! HOG-feature-scaling on the same classifier — is preserved, because both
//! methods see exactly the same windows.
//!
//! - [`pedestrian`]: the procedural articulated-figure renderer.
//! - [`negatives`]: hard-negative clutter windows.
//! - [`protocol`]: train/test splits with the paper's counts and the
//!   up-sampled test sets of §4.
//! - [`scene`]: full frames with ground-truth boxes for detector-level
//!   tests and the HDTV throughput experiments.

pub mod io;
pub mod negatives;
pub mod pedestrian;
pub mod protocol;
pub mod scene;

pub use protocol::InriaProtocol;
