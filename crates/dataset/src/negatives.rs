//! Negative (background) window sampling.
//!
//! The INRIA protocol samples negative test windows "randomly ... from
//! INRIA negative images" (paper §4 after [Dalal & Triggs]). We mirror
//! that: large person-free clutter scenes are generated procedurally and
//! windows are cropped from them at random positions, with a minimum
//! texture-variance filter so the set is dominated by *hard* negatives
//! (smooth sky patches teach the classifier nothing).

use rtped_core::rng::Rng;

use rtped_image::draw::{draw_capsule, fill_ellipse};
use rtped_image::synthetic::{add_uniform_noise, clutter_background};
use rtped_image::{GrayImage, IntegralImage};

/// Stamps pedestrian-*like* distractors into a window: vertical capsules
/// (poles, tree trunks, door frames) and blobs that share low-order
/// gradient statistics with limbs and heads. These are the hard negatives
/// that give an HOG+SVM classifier its residual false-positive pressure —
/// without them the synthetic task saturates.
fn add_distractors<R: Rng + ?Sized>(img: &mut GrayImage, rng: &mut R) {
    let w = img.width() as f64;
    let h = img.height() as f64;
    let count = rng.gen_range(0..=3);
    for _ in 0..count {
        let value = if rng.gen_bool(0.5) {
            rng.gen_range(10..=70)
        } else {
            rng.gen_range(185..=245)
        };
        let x = rng.gen_range(0.1..0.9) * w;
        match rng.gen_range(0..3) {
            // Vertical capsule: pole / trunk / frame edge.
            0 => {
                let top = rng.gen_range(0.0..0.4) * h;
                let len = rng.gen_range(0.3..0.9) * h;
                let thickness = rng.gen_range(0.04..0.16) * w;
                draw_capsule(
                    img,
                    x,
                    top,
                    x + rng.gen_range(-4.0..4.0),
                    top + len,
                    thickness,
                    value,
                    1.0,
                );
            }
            // Slanted capsule: railing / branch.
            1 => {
                let top = rng.gen_range(0.0..0.6) * h;
                let len = rng.gen_range(0.2..0.5) * h;
                let dx = rng.gen_range(-0.3..0.3) * w;
                draw_capsule(
                    img,
                    x,
                    top,
                    x + dx,
                    top + len,
                    rng.gen_range(2.0..6.0),
                    value,
                    1.0,
                );
            }
            // Blob: head-sized round structure (lamp, sign disc).
            _ => {
                let cy = rng.gen_range(0.1..0.9) * h;
                let r = rng.gen_range(0.05..0.12) * h;
                fill_ellipse(img, x, cy, r, r * rng.gen_range(0.8..1.3), value, 1.0);
            }
        }
    }
}

/// Generates one negative window by cropping a random position of a fresh
/// clutter scene. Deterministic in `rng`.
///
/// # Panics
///
/// Panics if `width` or `height` is zero.
#[must_use]
pub fn render_negative<R: Rng + ?Sized>(
    rng: &mut R,
    width: usize,
    height: usize,
    noise: u8,
) -> GrayImage {
    // A scene larger than the window so crops differ in content.
    let scene_w = width * 3;
    let scene_h = height * 2;
    let scene = clutter_background(rng, scene_w, scene_h);
    let integral = IntegralImage::new(&scene);

    // Rejection-sample a crop with enough texture; fall back to the best
    // seen if nothing clears the bar.
    let mut best: Option<(f64, usize, usize)> = None;
    for _ in 0..16 {
        let x = rng.gen_range(0..=scene_w - width);
        let y = rng.gen_range(0..=scene_h - height);
        let var = integral.window_variance(x, y, width, height);
        if var >= 64.0 {
            let mut crop = scene.crop(x, y, width, height);
            add_distractors(&mut crop, rng);
            add_uniform_noise(&mut crop, rng, noise);
            return crop;
        }
        if best.is_none_or(|(v, _, _)| var > v) {
            best = Some((var, x, y));
        }
    }
    let (_, x, y) = best.expect("at least one candidate was sampled");
    let mut crop = scene.crop(x, y, width, height);
    add_distractors(&mut crop, rng);
    add_uniform_noise(&mut crop, rng, noise);
    crop
}

/// Generates a batch of negative windows.
#[must_use]
pub fn render_negatives<R: Rng + ?Sized>(
    rng: &mut R,
    count: usize,
    width: usize,
    height: usize,
    noise: u8,
) -> Vec<GrayImage> {
    (0..count)
        .map(|_| render_negative(rng, width, height, noise))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtped_core::rng::SeedRng;

    #[test]
    fn negatives_are_deterministic() {
        let mut a = SeedRng::seed_from_u64(21);
        let mut b = SeedRng::seed_from_u64(21);
        assert_eq!(
            render_negative(&mut a, 64, 128, 6),
            render_negative(&mut b, 64, 128, 6)
        );
    }

    #[test]
    fn negatives_have_texture() {
        let mut rng = SeedRng::seed_from_u64(2);
        for _ in 0..8 {
            let img = render_negative(&mut rng, 64, 128, 6);
            assert!(
                img.variance() > 20.0,
                "negative too flat: {}",
                img.variance()
            );
        }
    }

    #[test]
    fn batch_produces_distinct_windows() {
        let mut rng = SeedRng::seed_from_u64(7);
        let batch = render_negatives(&mut rng, 6, 64, 128, 6);
        assert_eq!(batch.len(), 6);
        for i in 0..batch.len() {
            for j in i + 1..batch.len() {
                assert_ne!(batch[i], batch[j], "windows {i} and {j} identical");
            }
        }
    }

    #[test]
    fn respects_requested_dimensions() {
        let mut rng = SeedRng::seed_from_u64(3);
        let img = render_negative(&mut rng, 48, 96, 0);
        assert_eq!(img.dimensions(), (48, 96));
    }
}
