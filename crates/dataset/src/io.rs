//! Dataset import/export as PGM directories.
//!
//! Two purposes:
//!
//! 1. **Export** the synthetic dataset so humans can inspect it and other
//!    tools can consume it.
//! 2. **Import** window directories — users who hold a copy of the real
//!    INRIA person dataset (which cannot ship in this repository) can
//!    crop it to 64×128 windows, drop the files in `positives/` and
//!    `negatives/` folders, and run every experiment harness on the real
//!    data.

use std::fs;
use std::path::{Path, PathBuf};

use rtped_core::retry::RetryPolicy;
use rtped_core::Error;
use rtped_image::pnm::{load_pnm, save_pgm};
use rtped_image::GrayImage;

/// A labelled window set loaded from or saved to disk.
#[derive(Debug, Clone)]
pub struct WindowSet {
    /// Pedestrian windows.
    pub positives: Vec<GrayImage>,
    /// Background windows.
    pub negatives: Vec<GrayImage>,
}

/// Writes a window set as `<root>/positives/NNNNN.pgm` and
/// `<root>/negatives/NNNNN.pgm`.
///
/// # Errors
///
/// Returns [`Error::Io`] on filesystem failures.
pub fn export_windows(root: impl AsRef<Path>, set: &WindowSet) -> Result<(), Error> {
    let root = root.as_ref();
    for (sub, windows) in [("positives", &set.positives), ("negatives", &set.negatives)] {
        let dir = root.join(sub);
        fs::create_dir_all(&dir)?;
        for (i, window) in windows.iter().enumerate() {
            save_pgm(dir.join(format!("{i:05}.pgm")), window).map_err(|e| {
                Error::format(format!(
                    "bad window file {}: {e}",
                    dir.join(format!("{i:05}.pgm")).display()
                ))
            })?;
        }
    }
    Ok(())
}

/// Loads a window set from `<root>/positives` and `<root>/negatives`.
///
/// Files are read in lexicographic order so loads are deterministic.
/// Every window must have exactly `window` dimensions (pass the detector
/// geometry, normally `(64, 128)`).
///
/// # Errors
///
/// Returns [`Error::Io`] for missing directories and [`Error::Format`]
/// for empty directories, unparsable files, or size mismatches.
pub fn import_windows(root: impl AsRef<Path>, window: (usize, usize)) -> Result<WindowSet, Error> {
    let root = root.as_ref();
    let positives = load_dir(&root.join("positives"), window)?;
    let negatives = load_dir(&root.join("negatives"), window)?;
    Ok(WindowSet {
        positives,
        negatives,
    })
}

/// [`import_windows`] hardened against transient filesystem failures.
///
/// Only [`Error::Io`] is treated as transient and retried under `policy`
/// (a network mount hiccup, a directory mid-rsync); [`Error::Format`]
/// means the bytes themselves are bad, and retrying a malformed file
/// cannot help, so format errors fail fast on the first attempt.
///
/// # Errors
///
/// Returns the last [`Error::Io`] once the retry budget is exhausted, or
/// the first [`Error::Format`] immediately.
pub fn import_windows_retry(
    root: impl AsRef<Path>,
    window: (usize, usize),
    policy: &RetryPolicy,
) -> Result<WindowSet, Error> {
    let root = root.as_ref();
    let attempts = policy.max_attempts.max(1);
    let mut last_err = None;
    for attempt in 0..attempts {
        if attempt > 0 {
            let pause = policy.backoff_for(attempt - 1);
            if !pause.is_zero() {
                std::thread::sleep(pause);
            }
        }
        match import_windows(root, window) {
            Ok(set) => return Ok(set),
            Err(err @ Error::Io(_)) => last_err = Some(err),
            // Bad bytes, wrong dimensions, empty dirs: retrying cannot
            // change the outcome, so surface the error right away.
            Err(err) => return Err(err),
        }
    }
    Err(last_err.expect("at least one attempt ran"))
}

fn load_dir(dir: &Path, window: (usize, usize)) -> Result<Vec<GrayImage>, Error> {
    let mut paths: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| {
            p.extension()
                .and_then(|e| e.to_str())
                .map(|e| matches!(e.to_ascii_lowercase().as_str(), "pgm" | "ppm" | "pnm"))
                .unwrap_or(false)
        })
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(Error::format(format!(
            "no windows found in {}",
            dir.display()
        )));
    }
    let mut windows = Vec::with_capacity(paths.len());
    for path in paths {
        let img = load_pnm(&path)
            .map_err(|e| Error::format(format!("bad window file {}: {e}", path.display())))?;
        if img.dimensions() != window {
            return Err(Error::format(format!(
                "window {} is {}x{}, expected {}x{}",
                path.display(),
                img.dimensions().0,
                img.dimensions().1,
                window.0,
                window.1
            )));
        }
        windows.push(img);
    }
    Ok(windows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::InriaProtocol;

    fn temp_root(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("rtped_dataset_io").join(name);
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_set() -> WindowSet {
        let ds = InriaProtocol::builder()
            .train_positives(1)
            .train_negatives(1)
            .test_positives(3)
            .test_negatives(5)
            .seed(77)
            .build()
            .unwrap();
        WindowSet {
            positives: ds.test_positives().to_vec(),
            negatives: ds.test_negatives().to_vec(),
        }
    }

    #[test]
    fn export_import_roundtrip() {
        let root = temp_root("roundtrip");
        let set = tiny_set();
        export_windows(&root, &set).unwrap();
        let back = import_windows(&root, (64, 128)).unwrap();
        assert_eq!(back.positives, set.positives);
        assert_eq!(back.negatives, set.negatives);
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn import_checks_window_size() {
        let root = temp_root("wrong_size");
        let set = tiny_set();
        export_windows(&root, &set).unwrap();
        let err = import_windows(&root, (32, 64)).unwrap_err();
        assert!(matches!(err, Error::Format(_)));
        assert!(err.to_string().contains("expected 32x64"));
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn empty_directory_is_an_error() {
        let root = temp_root("empty");
        fs::create_dir_all(root.join("positives")).unwrap();
        fs::create_dir_all(root.join("negatives")).unwrap();
        let err = import_windows(&root, (64, 128)).unwrap_err();
        assert!(matches!(err, Error::Format(_)));
        assert!(err.to_string().contains("no windows found"));
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn missing_directory_is_an_io_error() {
        let err = import_windows("/nonexistent/rtped/ds", (64, 128)).unwrap_err();
        assert!(matches!(err, Error::Io(_)));
    }

    #[test]
    fn retry_succeeds_like_plain_import() {
        let root = temp_root("retry_ok");
        let set = tiny_set();
        export_windows(&root, &set).unwrap();
        let back = import_windows_retry(&root, (64, 128), &RetryPolicy::immediate(3)).unwrap();
        assert_eq!(back.positives, set.positives);
        assert_eq!(back.negatives, set.negatives);
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn retry_exhausts_budget_on_persistent_io_error() {
        // Missing directory is Error::Io, hence transient from the
        // policy's point of view: all attempts run, last error surfaces.
        let err = import_windows_retry(
            "/nonexistent/rtped/ds",
            (64, 128),
            &RetryPolicy::immediate(3),
        )
        .unwrap_err();
        assert!(matches!(err, Error::Io(_)));
    }

    #[test]
    fn retry_fails_fast_on_format_errors() {
        // A size mismatch is permanent — wrong on every attempt — so the
        // policy must not sleep through its whole backoff schedule.
        let root = temp_root("retry_format");
        let set = tiny_set();
        export_windows(&root, &set).unwrap();
        let policy = RetryPolicy {
            max_attempts: 4,
            base_backoff: std::time::Duration::from_millis(200),
            jitter_seed: None,
        };
        let start = rtped_core::timer::Stopwatch::start();
        let err = import_windows_retry(&root, (32, 64), &policy).unwrap_err();
        assert!(matches!(err, Error::Format(_)));
        assert!(
            start.elapsed() < std::time::Duration::from_millis(200),
            "format errors must not trigger backoff sleeps"
        );
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn retry_recovers_when_directory_appears_mid_budget() {
        // Simulate a transient failure window: the dataset root does not
        // exist for the first attempts and is created from another thread
        // while the importer is still inside its retry budget.
        let root = temp_root("retry_recover");
        let set = tiny_set();
        let writer = {
            let root = root.clone();
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(60));
                export_windows(&root, &set).unwrap();
            })
        };
        let policy = RetryPolicy {
            max_attempts: 10,
            base_backoff: std::time::Duration::from_millis(40),
            jitter_seed: None,
        };
        let back = import_windows_retry(&root, (64, 128), &policy).unwrap();
        writer.join().unwrap();
        assert!(!back.positives.is_empty());
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn loads_are_deterministically_ordered() {
        let root = temp_root("ordering");
        let set = tiny_set();
        export_windows(&root, &set).unwrap();
        let a = import_windows(&root, (64, 128)).unwrap();
        let b = import_windows(&root, (64, 128)).unwrap();
        assert_eq!(a.positives, b.positives);
        fs::remove_dir_all(&root).ok();
    }
}
