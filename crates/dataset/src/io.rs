//! Dataset import/export as PGM directories.
//!
//! Two purposes:
//!
//! 1. **Export** the synthetic dataset so humans can inspect it and other
//!    tools can consume it.
//! 2. **Import** window directories — users who hold a copy of the real
//!    INRIA person dataset (which cannot ship in this repository) can
//!    crop it to 64×128 windows, drop the files in `positives/` and
//!    `negatives/` folders, and run every experiment harness on the real
//!    data.

use std::fs;
use std::path::{Path, PathBuf};

use rtped_core::Error;
use rtped_image::pnm::{load_pnm, save_pgm};
use rtped_image::GrayImage;

/// A labelled window set loaded from or saved to disk.
#[derive(Debug, Clone)]
pub struct WindowSet {
    /// Pedestrian windows.
    pub positives: Vec<GrayImage>,
    /// Background windows.
    pub negatives: Vec<GrayImage>,
}

/// Writes a window set as `<root>/positives/NNNNN.pgm` and
/// `<root>/negatives/NNNNN.pgm`.
///
/// # Errors
///
/// Returns [`Error::Io`] on filesystem failures.
pub fn export_windows(root: impl AsRef<Path>, set: &WindowSet) -> Result<(), Error> {
    let root = root.as_ref();
    for (sub, windows) in [("positives", &set.positives), ("negatives", &set.negatives)] {
        let dir = root.join(sub);
        fs::create_dir_all(&dir)?;
        for (i, window) in windows.iter().enumerate() {
            save_pgm(dir.join(format!("{i:05}.pgm")), window).map_err(|e| {
                Error::format(format!(
                    "bad window file {}: {e}",
                    dir.join(format!("{i:05}.pgm")).display()
                ))
            })?;
        }
    }
    Ok(())
}

/// Loads a window set from `<root>/positives` and `<root>/negatives`.
///
/// Files are read in lexicographic order so loads are deterministic.
/// Every window must have exactly `window` dimensions (pass the detector
/// geometry, normally `(64, 128)`).
///
/// # Errors
///
/// Returns [`Error::Io`] for missing directories and [`Error::Format`]
/// for empty directories, unparsable files, or size mismatches.
pub fn import_windows(root: impl AsRef<Path>, window: (usize, usize)) -> Result<WindowSet, Error> {
    let root = root.as_ref();
    let positives = load_dir(&root.join("positives"), window)?;
    let negatives = load_dir(&root.join("negatives"), window)?;
    Ok(WindowSet {
        positives,
        negatives,
    })
}

fn load_dir(dir: &Path, window: (usize, usize)) -> Result<Vec<GrayImage>, Error> {
    let mut paths: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| {
            p.extension()
                .and_then(|e| e.to_str())
                .map(|e| matches!(e.to_ascii_lowercase().as_str(), "pgm" | "ppm" | "pnm"))
                .unwrap_or(false)
        })
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(Error::format(format!(
            "no windows found in {}",
            dir.display()
        )));
    }
    let mut windows = Vec::with_capacity(paths.len());
    for path in paths {
        let img = load_pnm(&path)
            .map_err(|e| Error::format(format!("bad window file {}: {e}", path.display())))?;
        if img.dimensions() != window {
            return Err(Error::format(format!(
                "window {} is {}x{}, expected {}x{}",
                path.display(),
                img.dimensions().0,
                img.dimensions().1,
                window.0,
                window.1
            )));
        }
        windows.push(img);
    }
    Ok(windows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::InriaProtocol;

    fn temp_root(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("rtped_dataset_io").join(name);
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_set() -> WindowSet {
        let ds = InriaProtocol::builder()
            .train_positives(1)
            .train_negatives(1)
            .test_positives(3)
            .test_negatives(5)
            .seed(77)
            .build()
            .unwrap();
        WindowSet {
            positives: ds.test_positives().to_vec(),
            negatives: ds.test_negatives().to_vec(),
        }
    }

    #[test]
    fn export_import_roundtrip() {
        let root = temp_root("roundtrip");
        let set = tiny_set();
        export_windows(&root, &set).unwrap();
        let back = import_windows(&root, (64, 128)).unwrap();
        assert_eq!(back.positives, set.positives);
        assert_eq!(back.negatives, set.negatives);
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn import_checks_window_size() {
        let root = temp_root("wrong_size");
        let set = tiny_set();
        export_windows(&root, &set).unwrap();
        let err = import_windows(&root, (32, 64)).unwrap_err();
        assert!(matches!(err, Error::Format(_)));
        assert!(err.to_string().contains("expected 32x64"));
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn empty_directory_is_an_error() {
        let root = temp_root("empty");
        fs::create_dir_all(root.join("positives")).unwrap();
        fs::create_dir_all(root.join("negatives")).unwrap();
        let err = import_windows(&root, (64, 128)).unwrap_err();
        assert!(matches!(err, Error::Format(_)));
        assert!(err.to_string().contains("no windows found"));
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn missing_directory_is_an_io_error() {
        let err = import_windows("/nonexistent/rtped/ds", (64, 128)).unwrap_err();
        assert!(matches!(err, Error::Io(_)));
    }

    #[test]
    fn loads_are_deterministically_ordered() {
        let root = temp_root("ordering");
        let set = tiny_set();
        export_windows(&root, &set).unwrap();
        let a = import_windows(&root, (64, 128)).unwrap();
        let b = import_windows(&root, (64, 128)).unwrap();
        assert_eq!(a.positives, b.positives);
        fs::remove_dir_all(&root).ok();
    }
}
