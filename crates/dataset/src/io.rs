//! Dataset import/export as PGM directories.
//!
//! Two purposes:
//!
//! 1. **Export** the synthetic dataset so humans can inspect it and other
//!    tools can consume it.
//! 2. **Import** window directories — users who hold a copy of the real
//!    INRIA person dataset (which cannot ship in this repository) can
//!    crop it to 64×128 windows, drop the files in `positives/` and
//!    `negatives/` folders, and run every experiment harness on the real
//!    data.

use std::fs;
use std::path::{Path, PathBuf};

use rtped_image::pnm::{load_pnm, save_pgm};
use rtped_image::{GrayImage, ImageError};

/// A labelled window set loaded from or saved to disk.
#[derive(Debug, Clone)]
pub struct WindowSet {
    /// Pedestrian windows.
    pub positives: Vec<GrayImage>,
    /// Background windows.
    pub negatives: Vec<GrayImage>,
}

/// Errors from dataset directory I/O.
#[derive(Debug)]
pub enum DatasetIoError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// A window file failed to parse.
    Image(PathBuf, ImageError),
    /// A window has unexpected dimensions.
    WrongSize {
        /// Offending file.
        path: PathBuf,
        /// Dimensions found.
        found: (usize, usize),
        /// Dimensions expected.
        expected: (usize, usize),
    },
    /// A directory held no windows.
    Empty(PathBuf),
}

impl std::fmt::Display for DatasetIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DatasetIoError::Io(e) => write!(f, "dataset i/o error: {e}"),
            DatasetIoError::Image(p, e) => write!(f, "bad window file {}: {e}", p.display()),
            DatasetIoError::WrongSize {
                path,
                found,
                expected,
            } => write!(
                f,
                "window {} is {}x{}, expected {}x{}",
                path.display(),
                found.0,
                found.1,
                expected.0,
                expected.1
            ),
            DatasetIoError::Empty(p) => write!(f, "no windows found in {}", p.display()),
        }
    }
}

impl std::error::Error for DatasetIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DatasetIoError::Io(e) => Some(e),
            DatasetIoError::Image(_, e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DatasetIoError {
    fn from(e: std::io::Error) -> Self {
        DatasetIoError::Io(e)
    }
}

/// Writes a window set as `<root>/positives/NNNNN.pgm` and
/// `<root>/negatives/NNNNN.pgm`.
///
/// # Errors
///
/// Returns [`DatasetIoError::Io`] on filesystem failures.
pub fn export_windows(root: impl AsRef<Path>, set: &WindowSet) -> Result<(), DatasetIoError> {
    let root = root.as_ref();
    for (sub, windows) in [("positives", &set.positives), ("negatives", &set.negatives)] {
        let dir = root.join(sub);
        fs::create_dir_all(&dir)?;
        for (i, window) in windows.iter().enumerate() {
            save_pgm(dir.join(format!("{i:05}.pgm")), window)
                .map_err(|e| DatasetIoError::Image(dir.join(format!("{i:05}.pgm")), e))?;
        }
    }
    Ok(())
}

/// Loads a window set from `<root>/positives` and `<root>/negatives`.
///
/// Files are read in lexicographic order so loads are deterministic.
/// Every window must have exactly `window` dimensions (pass the detector
/// geometry, normally `(64, 128)`).
///
/// # Errors
///
/// Returns [`DatasetIoError`] variants for missing/empty directories,
/// unparsable files, or size mismatches.
pub fn import_windows(
    root: impl AsRef<Path>,
    window: (usize, usize),
) -> Result<WindowSet, DatasetIoError> {
    let root = root.as_ref();
    let positives = load_dir(&root.join("positives"), window)?;
    let negatives = load_dir(&root.join("negatives"), window)?;
    Ok(WindowSet {
        positives,
        negatives,
    })
}

fn load_dir(dir: &Path, window: (usize, usize)) -> Result<Vec<GrayImage>, DatasetIoError> {
    let mut paths: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| {
            p.extension()
                .and_then(|e| e.to_str())
                .map(|e| matches!(e.to_ascii_lowercase().as_str(), "pgm" | "ppm" | "pnm"))
                .unwrap_or(false)
        })
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(DatasetIoError::Empty(dir.to_path_buf()));
    }
    let mut windows = Vec::with_capacity(paths.len());
    for path in paths {
        let img = load_pnm(&path).map_err(|e| DatasetIoError::Image(path.clone(), e))?;
        if img.dimensions() != window {
            return Err(DatasetIoError::WrongSize {
                path,
                found: img.dimensions(),
                expected: window,
            });
        }
        windows.push(img);
    }
    Ok(windows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::InriaProtocol;

    fn temp_root(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("rtped_dataset_io").join(name);
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_set() -> WindowSet {
        let ds = InriaProtocol::builder()
            .train_positives(1)
            .train_negatives(1)
            .test_positives(3)
            .test_negatives(5)
            .seed(77)
            .build()
            .unwrap();
        WindowSet {
            positives: ds.test_positives().to_vec(),
            negatives: ds.test_negatives().to_vec(),
        }
    }

    #[test]
    fn export_import_roundtrip() {
        let root = temp_root("roundtrip");
        let set = tiny_set();
        export_windows(&root, &set).unwrap();
        let back = import_windows(&root, (64, 128)).unwrap();
        assert_eq!(back.positives, set.positives);
        assert_eq!(back.negatives, set.negatives);
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn import_checks_window_size() {
        let root = temp_root("wrong_size");
        let set = tiny_set();
        export_windows(&root, &set).unwrap();
        let err = import_windows(&root, (32, 64)).unwrap_err();
        assert!(matches!(err, DatasetIoError::WrongSize { .. }));
        assert!(err.to_string().contains("expected 32x64"));
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn empty_directory_is_an_error() {
        let root = temp_root("empty");
        fs::create_dir_all(root.join("positives")).unwrap();
        fs::create_dir_all(root.join("negatives")).unwrap();
        let err = import_windows(&root, (64, 128)).unwrap_err();
        assert!(matches!(err, DatasetIoError::Empty(_)));
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn missing_directory_is_an_io_error() {
        let err = import_windows("/nonexistent/rtped/ds", (64, 128)).unwrap_err();
        assert!(matches!(err, DatasetIoError::Io(_)));
    }

    #[test]
    fn loads_are_deterministically_ordered() {
        let root = temp_root("ordering");
        let set = tiny_set();
        export_windows(&root, &set).unwrap();
        let a = import_windows(&root, (64, 128)).unwrap();
        let b = import_windows(&root, (64, 128)).unwrap();
        assert_eq!(a.positives, b.positives);
        fs::remove_dir_all(&root).ok();
    }
}
