//! Full-frame scene composition with ground truth.
//!
//! Detector-level tests and the HDTV throughput experiments need complete
//! frames containing pedestrians at known positions and sizes. A
//! [`SceneBuilder`] composes a clutter background with figures rendered at
//! arbitrary scales and records their bounding boxes.

use rtped_core::rng::Rng;
use rtped_core::rng::SeedRng;

use rtped_image::draw::fill_rect;
use rtped_image::synthetic::{add_uniform_noise, clutter_background};
use rtped_image::GrayImage;

use crate::pedestrian::{draw_figure, Pose};

/// An axis-aligned ground-truth box (pixel coordinates, top-left origin).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GroundTruthBox {
    /// Left edge.
    pub x: usize,
    /// Top edge.
    pub y: usize,
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
}

/// A composed frame plus its ground-truth pedestrian boxes.
#[derive(Debug, Clone)]
pub struct Scene {
    /// The rendered frame.
    pub frame: GrayImage,
    /// One box per placed pedestrian.
    pub ground_truth: Vec<GroundTruthBox>,
}

/// Builder for synthetic street scenes.
///
/// # Example
///
/// ```
/// use rtped_dataset::scene::SceneBuilder;
///
/// let scene = SceneBuilder::new(640, 480)
///     .seed(7)
///     .pedestrian_window(64, 128, 1.0)
///     .pedestrian_window(64, 128, 1.5)
///     .build();
/// assert_eq!(scene.frame.dimensions(), (640, 480));
/// assert_eq!(scene.ground_truth.len(), 2);
/// ```
/// One queued pedestrian placement.
#[derive(Debug, Clone, Copy)]
struct Placement {
    base_w: usize,
    base_h: usize,
    scale: f64,
    at: Option<(usize, usize)>,
}

#[derive(Debug, Clone)]
pub struct SceneBuilder {
    width: usize,
    height: usize,
    seed: u64,
    noise: u8,
    defocus_sigma: Option<f64>,
    pedestrians: Vec<Placement>,
}

impl SceneBuilder {
    /// Starts a scene of the given frame size.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `height` is zero.
    #[must_use]
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "scene must be non-empty");
        Self {
            width,
            height,
            seed: 0x000D_AC17,
            noise: 5,
            defocus_sigma: None,
            pedestrians: Vec::new(),
        }
    }

    /// Sets the master seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the sensor-noise amplitude (default ±5).
    #[must_use]
    pub fn noise(mut self, amplitude: u8) -> Self {
        self.noise = amplitude;
        self
    }

    /// Applies a Gaussian defocus of `sigma` pixels to the composed frame
    /// (before sensor noise) — models an imperfectly focused automotive
    /// camera.
    ///
    /// # Panics
    ///
    /// `build` panics if `sigma` is not finite and positive.
    #[must_use]
    pub fn defocus(mut self, sigma: f64) -> Self {
        self.defocus_sigma = Some(sigma);
        self
    }

    /// Adds a pedestrian whose window is `base_w x base_h` scaled by
    /// `scale`, at a random in-bounds position.
    #[must_use]
    pub fn pedestrian_window(mut self, base_w: usize, base_h: usize, scale: f64) -> Self {
        self.pedestrians.push(Placement {
            base_w,
            base_h,
            scale,
            at: None,
        });
        self
    }

    /// Adds a pedestrian at an explicit top-left position.
    #[must_use]
    pub fn pedestrian_at(
        mut self,
        base_w: usize,
        base_h: usize,
        scale: f64,
        x: usize,
        y: usize,
    ) -> Self {
        self.pedestrians.push(Placement {
            base_w,
            base_h,
            scale,
            at: Some((x, y)),
        });
        self
    }

    /// Renders the scene. Pedestrians that do not fit the frame are
    /// skipped (and absent from the ground truth).
    #[must_use]
    pub fn build(self) -> Scene {
        let mut rng = SeedRng::seed_from_u64(self.seed);
        let mut frame = clutter_background(&mut rng, self.width, self.height);
        let mut ground_truth = Vec::new();

        for p in &self.pedestrians {
            let w = ((p.base_w as f64) * p.scale).round() as usize;
            let h = ((p.base_h as f64) * p.scale).round() as usize;
            if w == 0 || h == 0 || w > self.width || h > self.height {
                continue;
            }
            let (x, y) = match p.at {
                Some(pos) => pos,
                None => (
                    rng.gen_range(0..=self.width - w),
                    rng.gen_range(0..=self.height - h),
                ),
            };
            if x + w > self.width || y + h > self.height {
                continue;
            }
            // Render the figure into a window-sized patch over the frame's
            // local content so edges stay coherent, then paste back.
            let mut patch = frame.crop(x, y, w, h);
            // Slightly flatten the local background so the figure is the
            // dominant structure within its box (as in real photos where
            // the person occludes the background).
            let mean = patch.mean().round().clamp(0.0, 255.0) as u8;
            fill_rect(&mut patch, 0, 0, w, h, mean, 0.35);
            let pose = Pose::sample(&mut rng);
            draw_figure(&mut patch, &pose);
            frame.paste(&patch, x as isize, y as isize);
            ground_truth.push(GroundTruthBox {
                x,
                y,
                width: w,
                height: h,
            });
        }

        if let Some(sigma) = self.defocus_sigma {
            frame = rtped_image::blur::gaussian_blur(&frame, sigma);
        }
        add_uniform_noise(&mut frame, &mut rng, self.noise);
        Scene {
            frame,
            ground_truth,
        }
    }
}

/// Convenience: an HDTV (1920×1080) street scene with `pedestrians` figures
/// at mixed scales — the workload of the paper's throughput claim.
#[must_use]
pub fn hdtv_scene(seed: u64, pedestrians: usize) -> Scene {
    let mut builder = SceneBuilder::new(1920, 1080).seed(seed);
    let mut rng = SeedRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9));
    for _ in 0..pedestrians {
        let scale = rng.gen_range(1.0..2.0);
        builder = builder.pedestrian_window(64, 128, scale);
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scene_is_deterministic() {
        let a = SceneBuilder::new(320, 240)
            .seed(5)
            .pedestrian_window(64, 128, 1.0)
            .build();
        let b = SceneBuilder::new(320, 240)
            .seed(5)
            .pedestrian_window(64, 128, 1.0)
            .build();
        assert_eq!(a.frame, b.frame);
        assert_eq!(a.ground_truth, b.ground_truth);
    }

    #[test]
    fn ground_truth_boxes_are_in_bounds() {
        let scene = SceneBuilder::new(400, 300)
            .seed(8)
            .pedestrian_window(64, 128, 1.0)
            .pedestrian_window(64, 128, 1.8)
            .build();
        for b in &scene.ground_truth {
            assert!(b.x + b.width <= 400);
            assert!(b.y + b.height <= 300);
        }
        assert_eq!(scene.ground_truth.len(), 2);
    }

    #[test]
    fn oversized_pedestrians_are_skipped() {
        let scene = SceneBuilder::new(100, 100)
            .seed(3)
            .pedestrian_window(64, 128, 1.0) // 64x128 does not fit 100x100
            .build();
        assert!(scene.ground_truth.is_empty());
    }

    #[test]
    fn explicit_placement_is_respected() {
        let scene = SceneBuilder::new(320, 240)
            .seed(4)
            .pedestrian_at(64, 128, 1.0, 10, 20)
            .build();
        assert_eq!(
            scene.ground_truth,
            vec![GroundTruthBox {
                x: 10,
                y: 20,
                width: 64,
                height: 128
            }]
        );
    }

    #[test]
    fn scaled_boxes_have_scaled_sizes() {
        let scene = SceneBuilder::new(640, 480)
            .seed(6)
            .pedestrian_at(64, 128, 1.5, 0, 0)
            .build();
        assert_eq!(scene.ground_truth[0].width, 96);
        assert_eq!(scene.ground_truth[0].height, 192);
    }

    #[test]
    fn defocus_softens_the_frame() {
        let sharp = SceneBuilder::new(160, 120)
            .seed(5)
            .noise(0)
            .pedestrian_at(64, 128, 0.8, 40, 0)
            .build();
        let soft = SceneBuilder::new(160, 120)
            .seed(5)
            .noise(0)
            .defocus(2.0)
            .pedestrian_at(64, 128, 0.8, 40, 0)
            .build();
        assert!(soft.frame.variance() < sharp.frame.variance());
        assert_eq!(soft.ground_truth, sharp.ground_truth);
    }

    #[test]
    fn hdtv_scene_dimensions() {
        let scene = hdtv_scene(1, 3);
        assert_eq!(scene.frame.dimensions(), (1920, 1080));
        assert!(scene.ground_truth.len() <= 3);
        assert!(!scene.ground_truth.is_empty());
    }
}
