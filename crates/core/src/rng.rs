//! Seeded, deterministic pseudo-random numbers.
//!
//! The whole workspace draws randomness through the [`Rng`] trait so every
//! experiment is reproducible from a single `u64` seed — the same posture
//! as the paper's offline training flow, where a fixed dataset and a fixed
//! optimizer schedule yield one canonical model. The concrete generator is
//! xoshiro256++ (Blackman & Vigna, 2019) seeded through SplitMix64, the
//! standard pairing: SplitMix64 decorrelates arbitrary user seeds, and
//! xoshiro256++ passes the usual statistical batteries while costing a few
//! shifts and adds per draw — cheap enough for the inner loops of the
//! synthetic renderer.
//!
//! # Example
//!
//! ```
//! use rtped_core::rng::{Rng, SeedRng};
//!
//! let mut rng = SeedRng::seed_from_u64(42);
//! let coin = rng.gen_bool(0.5);
//! let cell = rng.gen_range(0..8usize);
//! let scale = rng.gen_range(1.0..2.0f64);
//! let mut order: Vec<u32> = (0..10).collect();
//! rng.shuffle(&mut order);
//! # let _ = (coin, cell, scale);
//! // Re-seeding replays the identical stream.
//! assert_eq!(
//!     SeedRng::seed_from_u64(7).next_u64(),
//!     SeedRng::seed_from_u64(7).next_u64(),
//! );
//! ```

/// Advances a SplitMix64 state and returns the next output.
///
/// This is the reference mixer from Steele, Lea & Flood (2014); it is used
/// both to expand single-`u64` seeds into xoshiro state and by callers that
/// need a cheap stateless stream (`state` is the stream position).
#[must_use]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The workspace's seedable generator: xoshiro256++.
///
/// 256 bits of state, period `2^256 - 1`, and equidistributed 64-bit
/// outputs. Construct it with [`SeedRng::seed_from_u64`]; all randomized
/// code in the workspace threads one of these (or a `&mut impl Rng`)
/// explicitly, so determinism is visible in every signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeedRng {
    s: [u64; 4],
}

impl SeedRng {
    /// Creates a generator from a 64-bit seed, expanding it to the full
    /// 256-bit state with SplitMix64 (so similar seeds yield uncorrelated
    /// streams, and the all-zero state is unreachable).
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { s }
    }

    /// Derives an independent child generator for a named sub-stream.
    ///
    /// Splitting by a stream index keeps separate concerns (e.g. the train
    /// and test halves of a dataset) on disjoint streams, so changing how
    /// much one consumes never perturbs the other.
    #[must_use]
    pub fn split(&self, stream: u64) -> Self {
        let mut sm = self.s[0] ^ self.s[2] ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { s }
    }
}

impl Rng for SeedRng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++ step.
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// The random-draw surface every randomized call site uses.
///
/// Only [`Rng::next_u64`] is required; everything else is derived, so a
/// test double can wrap a counter or a fixed tape.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (the upper half of a 64-bit draw,
    /// which for xoshiro-family generators is the better-mixed half).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `f32` in `[0, 1)` with 24 bits of precision.
    fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// A uniform draw from `range` (`a..b` or `a..=b`, integer or float).
    ///
    /// Integer draws are unbiased (Lemire rejection); float draws are
    /// `low + u * (high - low)` with `u` in `[0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.next_f64() < p
    }

    /// Uniform Fisher–Yates shuffle of `slice` in place.
    fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = uniform_u64(self, i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// A uniformly chosen element of `slice`, or `None` if it is empty.
    fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[uniform_u64(self, slice.len() as u64) as usize])
        }
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// An unbiased uniform draw from `[0, span)`; `span == 0` means the full
/// 64-bit range. Lemire's multiply-shift rejection method.
fn uniform_u64<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    let mut m = u128::from(rng.next_u64()) * u128::from(span);
    let mut low = m as u64;
    if low < span {
        let threshold = span.wrapping_neg() % span;
        while low < threshold {
            m = u128::from(rng.next_u64()) * u128::from(span);
            low = m as u64;
        }
    }
    (m >> 64) as u64
}

/// Types [`Rng::gen_range`] can draw uniformly.
pub trait SampleUniform: PartialOrd + Copy {
    /// Draws uniformly from `[low, high)` (`inclusive = false`) or
    /// `[low, high]` (`inclusive = true`). Bounds are already validated.
    fn sample_uniform<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self, inclusive: bool)
        -> Self;

    /// One step of a value toward `low` (for test-case shrinking); `None`
    /// once `value` cannot move further.
    fn shrink_toward(low: Self, value: Self) -> Option<Self>;
}

macro_rules! impl_sample_uniform_int {
    ($($ty:ty => $wide:ty),+ $(,)?) => {$(
        impl SampleUniform for $ty {
            fn sample_uniform<R: Rng + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                // Width of the range as an (possibly wrapping) u64 offset.
                let lo = low as $wide as i128;
                let hi = high as $wide as i128;
                let span = (hi - lo) as u64;
                let span = if inclusive { span.wrapping_add(1) } else { span };
                let offset = uniform_u64(rng, span);
                ((lo as u64).wrapping_add(offset)) as $ty
            }

            fn shrink_toward(low: Self, value: Self) -> Option<Self> {
                if value == low {
                    None
                } else {
                    // Halve the distance to the target; terminates because
                    // the distance strictly decreases.
                    let lo = low as $wide as i128;
                    let v = value as $wide as i128;
                    Some((lo + (v - lo) / 2) as $ty)
                }
            }
        }
    )+};
}

impl_sample_uniform_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => u64,
    i8 => i8, i16 => i16, i32 => i32, i64 => i64, isize => i64,
);

macro_rules! impl_sample_uniform_float {
    ($($ty:ty, $next:ident);+ $(;)?) => {$(
        impl SampleUniform for $ty {
            fn sample_uniform<R: Rng + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let u = rng.$next();
                let v = low + u * (high - low);
                // `u < 1` keeps `v < high` mathematically, but rounding can
                // land exactly on `high`; redraw from `low` keeps half-open
                // ranges honest (a one-in-2^53 event).
                if !inclusive && v >= high { low } else { v }
            }

            fn shrink_toward(low: Self, value: Self) -> Option<Self> {
                if value == low || !value.is_finite() {
                    None
                } else {
                    let mid = low + (value - low) / 2.0;
                    if mid == value { None } else { Some(mid) }
                }
            }
        }
    )+};
}

impl_sample_uniform_float!(f32, next_f32; f64, next_f64);

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T: SampleUniform> {
    /// Draws one value.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample from an empty range");
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        assert!(low <= high, "cannot sample from an empty range");
        T::sample_uniform(rng, low, high, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix64_matches_reference_vector() {
        // First outputs of the reference SplitMix64 implementation for
        // seed 0 (widely published known-answer values).
        let mut state = 0u64;
        assert_eq!(splitmix64(&mut state), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(&mut state), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(splitmix64(&mut state), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SeedRng::seed_from_u64(123);
        let mut b = SeedRng::seed_from_u64(123);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SeedRng::seed_from_u64(1);
        let mut b = SeedRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn split_streams_are_independent_of_parent_consumption() {
        let parent = SeedRng::seed_from_u64(9);
        let mut consumed = parent.clone();
        let _ = consumed.next_u64();
        // split() reads state, so derive both from the same snapshot.
        assert_eq!(parent.split(1), parent.split(1));
        assert_ne!(parent.split(1), parent.split(2));
    }

    #[test]
    fn next_f64_is_in_unit_interval_with_plausible_mean() {
        let mut rng = SeedRng::seed_from_u64(7);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_range_integer_covers_all_values_without_escaping() {
        let mut rng = SeedRng::seed_from_u64(11);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = rng.gen_range(0..10usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "some bucket never drawn: {seen:?}");
    }

    #[test]
    fn gen_range_inclusive_hits_both_endpoints() {
        let mut rng = SeedRng::seed_from_u64(13);
        let (mut lo_hit, mut hi_hit) = (false, false);
        for _ in 0..500 {
            match rng.gen_range(-3..=3i32) {
                -3 => lo_hit = true,
                3 => hi_hit = true,
                v => assert!((-3..=3).contains(&v)),
            }
        }
        assert!(lo_hit && hi_hit);
    }

    #[test]
    fn gen_range_is_unbiased_within_tolerance() {
        // Chi-square-lite: 6 buckets over 60k draws; each expectation is
        // 10k, and a fair generator stays within ±3%.
        let mut rng = SeedRng::seed_from_u64(17);
        let mut counts = [0u32; 6];
        for _ in 0..60_000 {
            counts[rng.gen_range(0..6usize)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (9_700..=10_300).contains(&c),
                "bucket {i} count {c} outside tolerance"
            );
        }
    }

    #[test]
    fn gen_range_float_respects_bounds() {
        let mut rng = SeedRng::seed_from_u64(19);
        for _ in 0..1_000 {
            let v = rng.gen_range(1.5..2.5f64);
            assert!((1.5..2.5).contains(&v));
            let w = rng.gen_range(-0.06..=0.06f64);
            assert!((-0.06..=0.06).contains(&w));
        }
    }

    #[test]
    fn gen_range_negative_integer_ranges() {
        let mut rng = SeedRng::seed_from_u64(23);
        for _ in 0..500 {
            let v = rng.gen_range(-25..=25i16);
            assert!((-25..=25).contains(&v));
        }
    }

    #[test]
    fn gen_bool_frequency_tracks_p() {
        let mut rng = SeedRng::seed_from_u64(29);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_200..=2_800).contains(&hits), "hits = {hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation_and_seeded() {
        let mut rng = SeedRng::seed_from_u64(31);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");

        let mut rng2 = SeedRng::seed_from_u64(31);
        let mut v2: Vec<u32> = (0..50).collect();
        rng2.shuffle(&mut v2);
        assert_eq!(v, v2);
    }

    #[test]
    fn choose_picks_in_bounds_and_handles_empty() {
        let mut rng = SeedRng::seed_from_u64(37);
        let items = [10, 20, 30];
        for _ in 0..50 {
            assert!(items.contains(rng.choose(&items).unwrap()));
        }
        assert_eq!(rng.choose::<u8>(&[]), None);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SeedRng::seed_from_u64(1);
        let _ = rng.gen_range(5..5usize);
    }

    #[test]
    #[should_panic(expected = "probability must be in [0, 1]")]
    fn out_of_range_probability_panics() {
        let mut rng = SeedRng::seed_from_u64(1);
        let _ = rng.gen_bool(1.5);
    }

    #[test]
    fn rng_is_usable_through_mut_references() {
        fn takes_generic<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.next_u64()
        }
        let mut rng = SeedRng::seed_from_u64(5);
        let mut reference = SeedRng::seed_from_u64(5);
        assert_eq!(takes_generic(&mut rng), reference.next_u64());
    }
}
