//! A wall-clock micro-benchmark harness.
//!
//! This replaces `criterion` for the `crates/bench` benches: each bench
//! target is a plain binary (`harness = false`) whose `main` builds a
//! [`Bench`] group and calls [`Bench::run`] per case. The harness warms
//! the case up, sizes batches so timer overhead is amortized, takes many
//! batch samples, and prints min/median/mean — the median is the headline
//! number because it is robust to scheduler noise.
//!
//! ```no_run
//! use rtped_core::timer::{black_box, Bench};
//!
//! let mut bench = Bench::new("hog");
//! let stats = bench.run("gradient_8x8", || {
//!     let mut acc = 0u64;
//!     for i in 0..64u64 {
//!         acc = acc.wrapping_add(black_box(i) * i);
//!     }
//!     acc
//! });
//! assert!(stats.median_ns > 0.0);
//! ```

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// A started wall-clock stopwatch.
///
/// This is the sanctioned way to *measure* elapsed time outside the
/// bench binaries (`rtped-lint` forbids raw `Instant`/`SystemTime`
/// elsewhere): examples report it, tests bound it, but control decisions
/// must never consume it — the runtime schedules on the modeled cost
/// clock so reports stay byte-identical across hosts.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    #[must_use]
    pub fn start() -> Self {
        Self {
            start: Instant::now(),
        }
    }

    /// Time elapsed since [`Stopwatch::start`].
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed milliseconds as a float (convenience for report lines).
    #[must_use]
    pub fn elapsed_ms(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1.0e3
    }
}

/// Summary of one benchmark case.
#[derive(Debug, Clone)]
pub struct Stats {
    /// `group/name` label.
    pub label: String,
    /// Fastest batch, per iteration, in nanoseconds.
    pub min_ns: f64,
    /// Median batch, per iteration, in nanoseconds.
    pub median_ns: f64,
    /// Mean over all batches, per iteration, in nanoseconds.
    pub mean_ns: f64,
    /// Total iterations measured (excluding warmup).
    pub iters: u64,
}

impl Stats {
    /// The headline (median) time as a [`Duration`].
    #[must_use]
    pub fn median(&self) -> Duration {
        Duration::from_nanos(self.median_ns as u64)
    }

    /// Iterations per second implied by the median time.
    #[must_use]
    pub fn throughput(&self) -> f64 {
        if self.median_ns > 0.0 {
            1.0e9 / self.median_ns
        } else {
            f64::INFINITY
        }
    }
}

/// Formats a nanosecond count with an adaptive unit (`ns`/`µs`/`ms`/`s`).
#[must_use]
pub fn format_ns(ns: f64) -> String {
    if ns < 1.0e3 {
        format!("{ns:.1} ns")
    } else if ns < 1.0e6 {
        format!("{:.2} µs", ns / 1.0e3)
    } else if ns < 1.0e9 {
        format!("{:.2} ms", ns / 1.0e6)
    } else {
        format!("{:.3} s", ns / 1.0e9)
    }
}

/// Summarizes per-iteration batch samples (nanoseconds). Exposed for the
/// harness's own tests; [`Bench::run`] is the public entry point.
#[must_use]
pub fn summarize(label: &str, samples: &mut [f64], iters: u64) -> Stats {
    assert!(!samples.is_empty(), "summarize needs at least one sample");
    samples.sort_by(f64::total_cmp);
    let min_ns = samples[0];
    let n = samples.len();
    let median_ns = if n % 2 == 1 {
        samples[n / 2]
    } else {
        (samples[n / 2 - 1] + samples[n / 2]) / 2.0
    };
    let mean_ns = samples.iter().sum::<f64>() / n as f64;
    Stats {
        label: label.to_string(),
        min_ns,
        median_ns,
        mean_ns,
        iters,
    }
}

/// A named group of benchmark cases sharing timing budgets.
pub struct Bench {
    group: String,
    warmup: Duration,
    measure: Duration,
    batches: u32,
}

impl Bench {
    /// A group with the default budgets: 100 ms warmup, 500 ms measure,
    /// 25 batch samples.
    #[must_use]
    pub fn new(group: &str) -> Self {
        Bench {
            group: group.to_string(),
            warmup: Duration::from_millis(100),
            measure: Duration::from_millis(500),
            batches: 25,
        }
    }

    /// Overrides the warmup budget.
    #[must_use]
    pub fn warmup(mut self, warmup: Duration) -> Self {
        self.warmup = warmup;
        self
    }

    /// Overrides the measurement budget (split across all batches).
    #[must_use]
    pub fn measure(mut self, measure: Duration) -> Self {
        self.measure = measure;
        self
    }

    /// Overrides the number of batch samples (minimum 1).
    #[must_use]
    pub fn batches(mut self, batches: u32) -> Self {
        self.batches = batches.max(1);
        self
    }

    /// Benchmarks `f`, prints one report line, and returns the stats.
    ///
    /// Wrap inputs you want kept live in [`black_box`]; the return value
    /// of `f` is black-boxed by the harness.
    pub fn run<T>(&mut self, name: &str, mut f: impl FnMut() -> T) -> Stats {
        let label = format!("{}/{name}", self.group);

        // Warmup: run for the budget, learning the per-iteration cost.
        let start = Instant::now();
        let mut warm_iters: u64 = 0;
        while start.elapsed() < self.warmup || warm_iters == 0 {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = start.elapsed().as_secs_f64() / warm_iters as f64;

        // Size batches so each takes ~ measure/batches, with at least one
        // iteration per batch so ultra-slow cases still measure.
        let batch_budget = self.measure.as_secs_f64() / f64::from(self.batches);
        let batch_iters = ((batch_budget / per_iter).round() as u64).max(1);

        let mut samples = Vec::with_capacity(self.batches as usize);
        let mut total_iters: u64 = 0;
        for _ in 0..self.batches {
            let t0 = Instant::now();
            for _ in 0..batch_iters {
                black_box(f());
            }
            let elapsed = t0.elapsed().as_nanos() as f64;
            samples.push(elapsed / batch_iters as f64);
            total_iters += batch_iters;
        }

        let stats = summarize(&label, &mut samples, total_iters);
        println!(
            "{:<44} {:>12}  (min {}, mean {}, {} iters)",
            stats.label,
            format_ns(stats.median_ns),
            format_ns(stats.min_ns),
            format_ns(stats.mean_ns),
            stats.iters,
        );
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarize_computes_order_statistics() {
        let mut odd = [30.0, 10.0, 20.0];
        let s = summarize("g/odd", &mut odd, 300);
        assert_eq!(s.min_ns, 10.0);
        assert_eq!(s.median_ns, 20.0);
        assert_eq!(s.mean_ns, 20.0);
        assert_eq!(s.iters, 300);

        let mut even = [40.0, 10.0, 20.0, 30.0];
        let s = summarize("g/even", &mut even, 4);
        assert_eq!(s.median_ns, 25.0);
        assert_eq!(s.label, "g/even");
    }

    #[test]
    fn format_ns_picks_adaptive_units() {
        assert_eq!(format_ns(999.0), "999.0 ns");
        assert_eq!(format_ns(1_500.0), "1.50 µs");
        assert_eq!(format_ns(2_500_000.0), "2.50 ms");
        assert_eq!(format_ns(3_000_000_000.0), "3.000 s");
    }

    #[test]
    fn throughput_inverts_median() {
        let s = Stats {
            label: "x".into(),
            min_ns: 1.0,
            median_ns: 2.0,
            mean_ns: 3.0,
            iters: 1,
        };
        assert_eq!(s.throughput(), 5.0e8);
        assert_eq!(s.median(), Duration::from_nanos(2));
    }

    #[test]
    fn bench_run_smoke_test() {
        // Tiny budgets keep the test fast while exercising the full path.
        let mut bench = Bench::new("smoke")
            .warmup(Duration::from_millis(2))
            .measure(Duration::from_millis(10))
            .batches(5);
        let stats = bench.run("accumulate", || (0..64u64).map(black_box).sum::<u64>());
        assert!(stats.median_ns > 0.0);
        assert!(stats.iters >= 5);
        assert_eq!(stats.label, "smoke/accumulate");
    }
}
