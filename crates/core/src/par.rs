//! Data-parallel primitives over scoped threads — the software mirror of
//! the paper's pipelined datapath.
//!
//! The detection chain scores tens of thousands of independent windows
//! per frame and builds pyramid levels that do not depend on each other;
//! this module fans that work across the available cores with
//! `std::thread::scope` — no extra dependencies, deterministic output
//! ordering, and a thread-count override for benchmarking and tests.
//!
//! Three primitives cover the workspace's shapes of parallelism:
//!
//! - [`map`]: element-wise map with order-preserving output (pyramid
//!   levels, frames, dataset windows). Work is claimed in contiguous
//!   index chunks so one atomic RMW amortizes over many items.
//! - [`map_chunks`]: map over *contiguous runs* of the input — the right
//!   granularity when individual items are too cheap to claim one by one
//!   (window positions along a row band).
//! - [`for_each_band`]: in-place fill of disjoint bands of an output
//!   buffer (feature-map resampling writes each output row exactly once).
//!
//! # Thread count
//!
//! All entry points size their worker pool from [`threads`]: the
//! `RTPED_THREADS` environment variable when set (clamped to
//! `1..=MAX_THREADS`), otherwise `std::thread::available_parallelism`.
//! `RTPED_THREADS=1` forces the serial path everywhere, which is how the
//! benchmarks time serial baselines and how the determinism tests pin
//! both sides of a comparison.
//!
//! # Determinism
//!
//! Every primitive yields output identical to its serial equivalent —
//! same values, same order — for any thread count. Parallelism only
//! changes *when* an element is computed, never *where* its result lands.
//!
//! # Panic isolation
//!
//! Worker bodies run under `catch_unwind`, so a panicking closure can
//! never take the whole pool down silently: [`try_map`] reports the
//! panic as a typed [`MapPanic`] (item index plus the payload text), and
//! [`map`] re-panics with that same message — callers see the original
//! payload text instead of the scope's opaque "a scoped thread
//! panicked". Once a panic is observed the remaining workers stop
//! claiming work, and every already-computed result is dropped, so the
//! error path neither deadlocks nor leaks.

use std::any::Any;
use std::fmt;
use std::mem::{ManuallyDrop, MaybeUninit};
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

/// Environment variable overriding the worker-pool size.
pub const THREADS_ENV: &str = "RTPED_THREADS";

/// Upper bound on the worker-pool size (sanity clamp for the override).
pub const MAX_THREADS: usize = 256;

/// The worker-pool size: `RTPED_THREADS` if set to a positive integer
/// (clamped to [`MAX_THREADS`]), otherwise the OS-reported available
/// parallelism (1 if unknown). An unparsable or zero value is ignored
/// with a once-per-process stderr warning rather than silently falling
/// back.
#[must_use]
pub fn threads() -> usize {
    let fallback = || {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    };
    match crate::env::typed::<usize>(THREADS_ENV) {
        crate::env::EnvValue::Valid { value, .. } if value >= 1 => value.min(MAX_THREADS),
        crate::env::EnvValue::Valid { raw, .. } | crate::env::EnvValue::Invalid { raw } => {
            crate::env::warn_once(THREADS_ENV, &raw, "OS available parallelism");
            fallback()
        }
        crate::env::EnvValue::Unset => fallback(),
    }
}

/// A worker panic captured by [`try_map`] / surfaced by [`map`].
///
/// `index` is the item whose closure panicked; `message` is the panic
/// payload rendered as text (`&str` and `String` payloads verbatim,
/// anything else summarized). When several items panic concurrently the
/// lowest *observed* index wins; with a single panicking item — the
/// common case, and the only deterministic one — the report is exact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MapPanic {
    /// Index of the item whose closure panicked.
    pub index: usize,
    /// The panic payload as text.
    pub message: String,
}

impl fmt::Display for MapPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parallel worker panicked at item {}: {}",
            self.index, self.message
        )
    }
}

impl std::error::Error for MapPanic {}

/// Renders a panic payload as text without consuming it.
fn payload_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Applies `f` to every element of `items`, in parallel, preserving order.
///
/// Worker threads claim contiguous chunks of indices from one atomic
/// counter (a handful of items per RMW, so the counter cache line is not
/// thrashed on fine-grained work) and write results straight into their
/// final slots — each result is stored exactly once. Falls back to a
/// serial loop for small inputs or a single-thread pool.
///
/// # Panics
///
/// If `f` panics, re-panics with the worker's payload text and the item
/// index (see [`MapPanic`]) after every worker has stopped — the original
/// message is preserved, nothing deadlocks, and completed results are
/// dropped. Use [`try_map`] to receive the panic as a value instead.
pub fn map<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    map_with_threads(items, threads(), f)
}

/// [`map`] with an explicit thread count (used by the property tests and
/// anything that must pin the pool size without touching the
/// environment).
pub fn map_with_threads<T: Sync, R: Send>(
    items: &[T],
    threads: usize,
    f: impl Fn(&T) -> R + Sync,
) -> Vec<R> {
    let n = items.len();
    let threads = threads.max(1).min(n.max(1));
    if threads <= 1 || n < 2 {
        // Serial fast path: call `f` directly so panics propagate with
        // their original payload and zero wrapping overhead.
        return items.iter().map(f).collect();
    }
    match parallel_try_map(items, threads, &f) {
        Ok(out) => out,
        // Re-panic with the worker's payload text so callers (and
        // `#[should_panic(expected = ...)]` tests) still see the original
        // message instead of the scope's opaque "a scoped thread panicked".
        // rtped-lint: allow(unwrap-in-library, "documented contract: map re-raises the worker's original panic; try_map is the non-panicking path")
        Err(p) => panic!("{p}"),
    }
}

/// [`map`] with panic isolation: a panicking closure yields a typed
/// [`MapPanic`] instead of unwinding through the caller.
///
/// The panic is caught in both the serial and the parallel path, so the
/// behavior does not depend on the pool size. On error, results computed
/// before the panic are dropped; no work is leaked and no worker is left
/// running.
///
/// # Errors
///
/// Returns the first (lowest-index observed) worker panic.
pub fn try_map<T: Sync, R: Send>(
    items: &[T],
    f: impl Fn(&T) -> R + Sync,
) -> Result<Vec<R>, MapPanic> {
    try_map_with_threads(items, threads(), f)
}

/// [`try_map`] with an explicit thread count.
///
/// # Errors
///
/// Returns the first (lowest-index observed) worker panic.
pub fn try_map_with_threads<T: Sync, R: Send>(
    items: &[T],
    threads: usize,
    f: impl Fn(&T) -> R + Sync,
) -> Result<Vec<R>, MapPanic> {
    let n = items.len();
    let threads = threads.max(1).min(n.max(1));
    if threads <= 1 || n < 2 {
        let mut out = Vec::with_capacity(n);
        for (index, item) in items.iter().enumerate() {
            match catch_unwind(AssertUnwindSafe(|| f(item))) {
                Ok(result) => out.push(result),
                Err(payload) => {
                    return Err(MapPanic {
                        index,
                        message: payload_message(payload.as_ref()),
                    })
                }
            }
        }
        return Ok(out);
    }
    parallel_try_map(items, threads, &f)
}

/// The shared parallel engine behind [`map`] and [`try_map`].
///
/// Each closure call runs under `catch_unwind` (via `AssertUnwindSafe`:
/// the only shared state a panic can leave behind is the slot buffer,
/// which the error path cleans up below, so observing it is safe). On
/// panic the stop flag halts further claiming, the lowest observed
/// panicking index is recorded, and every fully-written slot — tracked as
/// completed ranges — is dropped so the error path leaks nothing.
fn parallel_try_map<T: Sync, R: Send>(
    items: &[T],
    threads: usize,
    f: &(impl Fn(&T) -> R + Sync),
) -> Result<Vec<R>, MapPanic> {
    let n = items.len();
    // Contiguous chunk claiming: one fetch_add hands a worker `claim`
    // consecutive indices. Small enough to balance uneven costs, large
    // enough that the atomic counter is off the hot path.
    let claim = claim_size(n, threads);
    let next = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let mut slots = uninit_slots::<R>(n);
    let slots_ptr = SendPtr(slots.as_mut_ptr());
    let first_panic: Mutex<Option<MapPanic>> = Mutex::new(None);
    let completed: Mutex<Vec<Range<usize>>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        for _ in 0..threads {
            let next = &next;
            let stop = &stop;
            let first_panic = &first_panic;
            let completed = &completed;
            let f = &f;
            scope.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let start = next.fetch_add(claim, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    let end = (start + claim).min(n);
                    let mut filled = start;
                    let mut panicked = false;
                    for (offset, item) in items[start..end].iter().enumerate() {
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                        match catch_unwind(AssertUnwindSafe(|| f(item))) {
                            Ok(result) => {
                                // SAFETY: exclusive chunk claim — the atomic
                                // counter hands each index range to exactly
                                // one worker, so no two threads ever write
                                // the same slot, and the slot buffer outlives
                                // the scope that borrows it.
                                unsafe {
                                    slots_ptr
                                        .get()
                                        .add(start + offset)
                                        .write(MaybeUninit::new(result));
                                }
                                filled = start + offset + 1;
                            }
                            Err(payload) => {
                                stop.store(true, Ordering::Relaxed);
                                let index = start + offset;
                                let message = payload_message(payload.as_ref());
                                let mut slot =
                                    first_panic.lock().unwrap_or_else(PoisonError::into_inner);
                                if slot.as_ref().is_none_or(|p| index < p.index) {
                                    *slot = Some(MapPanic { index, message });
                                }
                                panicked = true;
                                break;
                            }
                        }
                    }
                    if filled > start {
                        completed
                            .lock()
                            .unwrap_or_else(PoisonError::into_inner)
                            .push(start..filled);
                    }
                    if panicked {
                        break;
                    }
                }
            });
        }
    });

    match first_panic
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner)
    {
        None => {
            // SAFETY: init-before-read — no worker panicked, so the claim
            // counter monotonically covered 0..n and every slot was written
            // exactly once before this single post-scope read.
            Ok(unsafe { assume_init_vec(slots) })
        }
        Some(panic) => {
            // Drop every result produced before the panic; the completed
            // ranges are disjoint (each was claimed by exactly one worker)
            // and cover precisely the initialized slots. `slots` itself then
            // drops as Vec<MaybeUninit<R>>, which frees the buffer without
            // touching any element again.
            let ranges = completed
                .into_inner()
                .unwrap_or_else(PoisonError::into_inner);
            for range in ranges {
                for i in range {
                    // SAFETY: leak-free cleanup on panic — slot `i` lies in a
                    // completed (fully written, disjoint) range, so it holds
                    // an initialized value that is dropped exactly once;
                    // never-written slots stay MaybeUninit and are freed
                    // without being read.
                    unsafe { (*slots_ptr.get().add(i)).assume_init_drop() };
                }
            }
            drop(slots);
            Err(panic)
        }
    }
}

/// Applies `f` to contiguous chunks of `items` (each at most `chunk_len`
/// long), in parallel, returning per-chunk results in chunk order.
///
/// `f` receives the index of the chunk's first item and the chunk slice.
/// This is the right primitive when per-item work is too cheap to claim
/// individually: the caller picks the batch granularity and the claiming
/// cost is paid once per chunk.
///
/// # Panics
///
/// Panics if `chunk_len == 0`.
pub fn map_chunks<T: Sync, R: Send>(
    items: &[T],
    chunk_len: usize,
    f: impl Fn(usize, &[T]) -> R + Sync,
) -> Vec<R> {
    assert!(chunk_len > 0, "chunk_len must be non-zero");
    let chunks: Vec<(usize, &[T])> = items
        .chunks(chunk_len)
        .enumerate()
        .map(|(c, s)| (c * chunk_len, s))
        .collect();
    map(&chunks, |&(start, slice)| f(start, slice))
}

/// Splits `data` into consecutive bands of `band_len` elements (the last
/// band may be shorter) and runs `f(start_index, band)` on each, in
/// parallel. Bands are disjoint `&mut` slices, so the fill is safe and
/// the result is independent of the thread count.
///
/// # Panics
///
/// Panics if `band_len == 0` while `data` is non-empty.
pub fn for_each_band<T: Send>(data: &mut [T], band_len: usize, f: impl Fn(usize, &mut [T]) + Sync) {
    if data.is_empty() {
        return;
    }
    assert!(band_len > 0, "band_len must be non-zero");
    let workers = threads().min(data.len().div_ceil(band_len));
    if workers <= 1 {
        for (b, band) in data.chunks_mut(band_len).enumerate() {
            f(b * band_len, band);
        }
        return;
    }
    // Bands are coarse by construction, so a mutex-guarded iterator is a
    // perfectly good (and fully safe) work queue.
    let queue = Mutex::new(data.chunks_mut(band_len).enumerate());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let queue = &queue;
            let f = &f;
            scope.spawn(move || loop {
                // A panic in a sibling's `f` poisons the queue; recover the
                // guard so the survivors drain cleanly and the scope can
                // propagate the original panic instead of a poisoned-lock one.
                let item = queue.lock().unwrap_or_else(PoisonError::into_inner).next();
                match item {
                    Some((b, band)) => f(b * band_len, band),
                    None => break,
                }
            });
        }
    });
}

/// Runs `f(0), f(1), ..., f(workers - 1)` on one scoped thread each and
/// blocks until every worker returns — the long-lived worker-pool
/// primitive (daemon request loops, load-generator clients), as opposed
/// to the per-call data parallelism of [`map`].
///
/// `workers` is clamped to `1..=MAX_THREADS`. Workers are expected to
/// exit on their own (e.g. when a shared shutdown flag flips); a panic in
/// any worker propagates once all threads have been joined.
pub fn run_workers(workers: usize, f: impl Fn(usize) + Sync) {
    let workers = workers.clamp(1, MAX_THREADS);
    let f = &f;
    std::thread::scope(|scope| {
        for w in 0..workers {
            scope.spawn(move || f(w));
        }
    });
}

/// Evenly partitions `0..n` into at most `max_bands` contiguous ranges
/// (fewer when `n < max_bands`; empty when `n == 0`). Deterministic in
/// its inputs — band `b` always covers the same range.
#[must_use]
pub fn band_ranges(n: usize, max_bands: usize) -> Vec<Range<usize>> {
    if n == 0 || max_bands == 0 {
        return Vec::new();
    }
    let bands = max_bands.min(n);
    let base = n / bands;
    let extra = n % bands;
    let mut out = Vec::with_capacity(bands);
    let mut start = 0;
    for b in 0..bands {
        let len = base + usize::from(b < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Claim granularity for [`map_with_threads`]: small enough that uneven
/// item costs still balance across the pool, large enough that the shared
/// counter sees ~32 RMWs per thread rather than one per item.
fn claim_size(n: usize, threads: usize) -> usize {
    (n / (threads * 32)).clamp(1, 64)
}

/// An uninitialized result buffer of length `n`.
fn uninit_slots<R>(n: usize) -> Vec<MaybeUninit<R>> {
    let mut slots = Vec::with_capacity(n);
    slots.resize_with(n, MaybeUninit::uninit);
    slots
}

/// Converts a fully initialized `Vec<MaybeUninit<R>>` into `Vec<R>`.
///
/// # Safety
///
/// Every element must be initialized.
unsafe fn assume_init_vec<R>(slots: Vec<MaybeUninit<R>>) -> Vec<R> {
    let mut slots = ManuallyDrop::new(slots);
    let (ptr, len, cap) = (slots.as_mut_ptr(), slots.len(), slots.capacity());
    // SAFETY: MaybeUninit<R> has the same layout as R, the caller
    // guarantees initialization, and ManuallyDrop relinquishes ownership.
    unsafe { Vec::from_raw_parts(ptr.cast::<R>(), len, cap) }
}

/// A raw pointer wrapper that is `Send`/`Copy` so scoped threads can write
/// disjoint slots of the output buffer.
struct SendPtr<R>(*mut MaybeUninit<R>);

impl<R> Clone for SendPtr<R> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<R> Copy for SendPtr<R> {}

impl<R> SendPtr<R> {
    /// Accessor so closures capture the whole `Send` wrapper rather than
    /// the raw-pointer field (edition-2021 disjoint capture).
    fn get(self) -> *mut MaybeUninit<R> {
        self.0
    }
}

// SAFETY: the pointer is only dereferenced at indices uniquely claimed via
// the atomic counter; disjoint writes from multiple threads are safe.
unsafe impl<R: Send> Send for SendPtr<R> {}
// SAFETY: same disjointness argument — the shared reference is only used
// to copy the pointer into worker threads.
unsafe impl<R: Send> Sync for SendPtr<R> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<usize> = (0..1000).collect();
        let out = map(&items, |&x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = map(&[] as &[u32], |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn small_input_matches_serial() {
        let out = map(&[1, 2, 3], |&x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn run_workers_runs_each_index_once_and_blocks_until_done() {
        let hits: Vec<AtomicUsize> = (0..5).map(|_| AtomicUsize::new(0)).collect();
        run_workers(5, |w| {
            hits[w].fetch_add(1, Ordering::SeqCst);
        });
        for (w, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::SeqCst), 1, "worker {w}");
        }
        // Zero workers clamps to one.
        let ran = AtomicUsize::new(0);
        run_workers(0, |_| {
            ran.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(ran.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn works_with_non_copy_results() {
        let items = vec!["a", "bb", "ccc"];
        let out = map(&items, |s| s.to_string());
        assert_eq!(out, vec!["a".to_string(), "bb".into(), "ccc".into()]);
    }

    #[test]
    fn explicit_thread_counts_agree() {
        let items: Vec<u64> = (0..257).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x * 3 + 1).collect();
        for threads in 1..=8 {
            let out = map_with_threads(&items, threads, |&x| x * 3 + 1);
            assert_eq!(out, serial, "threads={threads}");
        }
    }

    #[test]
    fn claim_size_is_bounded() {
        assert_eq!(claim_size(10, 4), 1);
        assert_eq!(claim_size(1_000_000, 4), 64);
        let mid = claim_size(4096, 8);
        assert!((1..=64).contains(&mid));
    }

    #[test]
    fn map_chunks_covers_every_item_in_order() {
        let items: Vec<usize> = (0..103).collect();
        let sums = map_chunks(&items, 10, |start, chunk| {
            assert_eq!(chunk[0], start);
            chunk.iter().sum::<usize>()
        });
        assert_eq!(sums.len(), 11);
        assert_eq!(sums.iter().sum::<usize>(), items.iter().sum::<usize>());
        // First chunk is 0..10, last chunk is 100..103.
        assert_eq!(sums[0], (0..10).sum::<usize>());
        assert_eq!(sums[10], 100 + 101 + 102);
    }

    #[test]
    #[should_panic(expected = "chunk_len must be non-zero")]
    fn map_chunks_rejects_zero_chunk() {
        let _ = map_chunks(&[1, 2, 3], 0, |_, c| c.len());
    }

    #[test]
    fn for_each_band_fills_every_element() {
        let mut data = vec![0usize; 1003];
        for_each_band(&mut data, 64, |start, band| {
            for (i, v) in band.iter_mut().enumerate() {
                *v = (start + i) * 7;
            }
        });
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, i * 7);
        }
    }

    #[test]
    fn for_each_band_empty_is_noop() {
        let mut data: Vec<u8> = Vec::new();
        for_each_band(&mut data, 0, |_, _| panic!("no bands expected"));
    }

    #[test]
    fn band_ranges_partition_the_domain() {
        for n in [0usize, 1, 7, 64, 135, 1000] {
            for bands in [1usize, 2, 3, 8, 200] {
                let ranges = band_ranges(n, bands);
                let mut covered = 0;
                let mut expect_start = 0;
                for r in &ranges {
                    assert_eq!(r.start, expect_start, "bands must be contiguous");
                    assert!(!r.is_empty(), "no empty bands");
                    covered += r.len();
                    expect_start = r.end;
                }
                assert_eq!(covered, n, "n={n} bands={bands}");
                assert!(ranges.len() <= bands.min(n.max(1)));
                // Even split: band lengths differ by at most one.
                if let (Some(min), Some(max)) = (
                    ranges.iter().map(|r| r.len()).min(),
                    ranges.iter().map(|r| r.len()).max(),
                ) {
                    assert!(max - min <= 1);
                }
            }
        }
    }

    #[test]
    fn try_map_matches_map_on_success() {
        let items: Vec<u64> = (0..300).collect();
        for threads in [1usize, 2, 4, 8] {
            let ok =
                try_map_with_threads(&items, threads, |&x| x * x).expect("no closure panicked");
            assert_eq!(ok, items.iter().map(|&x| x * x).collect::<Vec<_>>());
        }
    }

    #[test]
    fn try_map_reports_panic_without_deadlock_or_message_loss() {
        // Panic on item k of n: the pool must drain (no deadlock), the
        // typed error must carry the original payload text, and — with a
        // single panicking item — the exact index.
        let n = 500;
        let k = 311;
        let items: Vec<usize> = (0..n).collect();
        for threads in [1usize, 2, 3, 8] {
            let err = try_map_with_threads(&items, threads, |&x| {
                if x == k {
                    panic!("injected failure on item {x}");
                }
                x * 2
            })
            .expect_err("the panic must surface as an error");
            assert_eq!(err.index, k, "threads={threads}");
            assert_eq!(err.message, format!("injected failure on item {k}"));
            assert!(err.to_string().contains("item 311"));
        }
    }

    #[test]
    fn try_map_serial_path_catches_panics_too() {
        // n < 2 forces the serial fast path; isolation must not depend on
        // the pool actually spawning.
        let err = try_map_with_threads(&[7u32], 4, |_| -> u32 { panic!("lone item") })
            .expect_err("serial path must catch");
        assert_eq!(err.index, 0);
        assert_eq!(err.message, "lone item");
    }

    #[test]
    fn try_map_string_payloads_survive() {
        let items = [0u8, 1, 2];
        let err = try_map_with_threads(&items, 2, |&x| {
            if x == 1 {
                std::panic::panic_any(format!("owned payload {x}"));
            }
            x
        })
        .expect_err("panic expected");
        assert_eq!(err.message, "owned payload 1");
    }

    #[test]
    fn try_map_error_path_drops_completed_results() {
        use std::sync::atomic::AtomicUsize;

        static LIVE: AtomicUsize = AtomicUsize::new(0);
        #[derive(Debug)]
        struct Counted;
        impl Counted {
            fn new() -> Self {
                LIVE.fetch_add(1, Ordering::SeqCst);
                Counted
            }
        }
        impl Drop for Counted {
            fn drop(&mut self) {
                LIVE.fetch_sub(1, Ordering::SeqCst);
            }
        }

        let items: Vec<usize> = (0..400).collect();
        let err = try_map_with_threads(&items, 4, |&x| {
            if x == 250 {
                panic!("boom");
            }
            Counted::new()
        })
        .expect_err("panic expected");
        assert_eq!(err.message, "boom");
        // Every result constructed before the panic was dropped exactly
        // once: nothing leaks, nothing double-frees.
        assert_eq!(LIVE.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn map_repanics_with_original_message() {
        let items: Vec<usize> = (0..200).collect();
        let caught = catch_unwind(AssertUnwindSafe(|| {
            map_with_threads(&items, 4, |&x| {
                if x == 90 {
                    panic!("original payload text");
                }
                x
            })
        }))
        .expect_err("map must re-panic");
        let text = payload_message(caught.as_ref());
        assert!(
            text.contains("original payload text"),
            "re-panic lost the payload: {text}"
        );
        assert!(text.contains("item 90"), "re-panic lost the index: {text}");
    }

    crate::check! {
        #![cases = 48]
        fn par_map_matches_serial_under_uneven_costs(
            items in crate::check::vec_of(0u64..1000, 0..=96),
            threads in 1usize..=8,
        ) {
            // Per-item cost varies with the value, so chunk claiming and
            // work stealing both get exercised.
            let cost = |&x: &u64| {
                let mut acc = x;
                for i in 0..(x % 13) * 50 {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
                }
                (x, acc)
            };
            let serial: Vec<(u64, u64)> = items.iter().map(cost).collect();
            let parallel = map_with_threads(&items, threads, cost);
            crate::check_assert_eq!(serial, parallel);
        }
    }
}
