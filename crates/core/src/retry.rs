//! Bounded retry-with-backoff for transient failures.
//!
//! Real sensors and filesystems hiccup: an NFS-mounted dataset directory
//! returns a spurious `EIO`, a frame grabber drops one DMA transfer, a
//! model file is mid-write by another process. Those faults are
//! *transient* — the correct response is a small, bounded number of
//! retries with a growing pause, then a typed give-up that preserves the
//! last underlying error. [`RetryPolicy`] captures that contract in one
//! place so every call site in the workspace ages out failures the same
//! way.
//!
//! The policy is deliberately tiny: a maximum attempt count and a base
//! backoff that doubles per retry (50 ms, 100 ms, 200 ms, ...), capped so
//! a misconfigured policy cannot stall a real-time pipeline for seconds.
//! Tests use [`RetryPolicy::immediate`] to retry without sleeping.
//!
//! # Example
//!
//! ```
//! use rtped_core::retry::RetryPolicy;
//!
//! let mut calls = 0;
//! let out: Result<u32, &str> = RetryPolicy::immediate(3).run(|attempt| {
//!     calls += 1;
//!     if attempt < 2 { Err("transient") } else { Ok(7) }
//! });
//! assert_eq!(out, Ok(7));
//! assert_eq!(calls, 3);
//! ```

use std::time::Duration;

/// Upper bound on a single backoff pause, whatever the policy says.
/// A detection chain with a ~15 ms frame budget must never sleep a
/// second waiting on IO.
const MAX_BACKOFF: Duration = Duration::from_millis(500);

/// A bounded retry schedule: at most `max_attempts` tries, doubling the
/// pause between consecutive tries starting from `base_backoff`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total number of attempts (the first try counts; `0` is promoted
    /// to `1` so `run` always invokes the operation at least once).
    pub max_attempts: u32,
    /// Pause before the second attempt; doubles per subsequent retry and
    /// is capped at 500 ms.
    pub base_backoff: Duration,
}

impl Default for RetryPolicy {
    /// Three attempts, 50 ms initial backoff — tolerates a momentary
    /// hiccup without materially delaying batch work.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(50),
        }
    }
}

impl RetryPolicy {
    /// A policy that retries up to `max_attempts` times with no pause —
    /// for tests and for in-memory operations where backoff is pointless.
    #[must_use]
    pub fn immediate(max_attempts: u32) -> Self {
        RetryPolicy {
            max_attempts,
            base_backoff: Duration::ZERO,
        }
    }

    /// The pause taken after failed attempt `attempt` (0-based): the base
    /// backoff doubled `attempt` times, capped at 500 ms.
    #[must_use]
    pub fn backoff_for(&self, attempt: u32) -> Duration {
        let factor = 1u32 << attempt.min(16);
        (self.base_backoff * factor).min(MAX_BACKOFF)
    }

    /// Runs `op` until it succeeds or the attempt budget is exhausted,
    /// sleeping the scheduled backoff between tries. `op` receives the
    /// 0-based attempt number so callers can log or vary behavior.
    ///
    /// # Errors
    ///
    /// Returns the error from the **last** attempt once the budget is
    /// spent; earlier errors are discarded.
    pub fn run<T, E>(&self, mut op: impl FnMut(u32) -> Result<T, E>) -> Result<T, E> {
        let attempts = self.max_attempts.max(1);
        let mut attempt = 0;
        loop {
            if attempt > 0 {
                let pause = self.backoff_for(attempt - 1);
                if !pause.is_zero() {
                    std::thread::sleep(pause);
                }
            }
            match op(attempt) {
                Ok(value) => return Ok(value),
                Err(err) if attempt + 1 >= attempts => return Err(err),
                Err(_) => attempt += 1,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_success_returns_immediately() {
        let mut calls = 0;
        let out: Result<u32, ()> = RetryPolicy::default().run(|_| {
            calls += 1;
            Ok(5)
        });
        assert_eq!(out, Ok(5));
        assert_eq!(calls, 1);
    }

    #[test]
    fn retries_until_budget_then_returns_last_error() {
        let mut calls = 0;
        let out: Result<(), String> = RetryPolicy::immediate(4).run(|attempt| {
            calls += 1;
            Err(format!("fail {attempt}"))
        });
        assert_eq!(out, Err("fail 3".to_string()));
        assert_eq!(calls, 4);
    }

    #[test]
    fn transient_failure_recovers_mid_budget() {
        let out: Result<&str, &str> =
            RetryPolicy::immediate(5)
                .run(|attempt| if attempt == 2 { Ok("ok") } else { Err("no") });
        assert_eq!(out, Ok("ok"));
    }

    #[test]
    fn zero_attempts_still_runs_once() {
        let mut calls = 0;
        let out: Result<(), ()> = RetryPolicy::immediate(0).run(|_| {
            calls += 1;
            Err(())
        });
        assert!(out.is_err());
        assert_eq!(calls, 1);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let policy = RetryPolicy {
            max_attempts: 10,
            base_backoff: Duration::from_millis(50),
        };
        assert_eq!(policy.backoff_for(0), Duration::from_millis(50));
        assert_eq!(policy.backoff_for(1), Duration::from_millis(100));
        assert_eq!(policy.backoff_for(2), Duration::from_millis(200));
        // Cap: 50 ms << 4 = 800 ms clamps to 500 ms, as does anything larger.
        assert_eq!(policy.backoff_for(4), MAX_BACKOFF);
        assert_eq!(policy.backoff_for(63), MAX_BACKOFF);
    }

    #[test]
    fn immediate_policy_never_sleeps() {
        let policy = RetryPolicy::immediate(8);
        for attempt in 0..8 {
            assert_eq!(policy.backoff_for(attempt), Duration::ZERO);
        }
    }
}
