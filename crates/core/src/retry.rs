//! Bounded retry-with-backoff for transient failures.
//!
//! Real sensors and filesystems hiccup: an NFS-mounted dataset directory
//! returns a spurious `EIO`, a frame grabber drops one DMA transfer, a
//! model file is mid-write by another process. Those faults are
//! *transient* — the correct response is a small, bounded number of
//! retries with a growing pause, then a typed give-up that preserves the
//! last underlying error. [`RetryPolicy`] captures that contract in one
//! place so every call site in the workspace ages out failures the same
//! way.
//!
//! The policy is deliberately tiny: a maximum attempt count and a base
//! backoff that doubles per retry (50 ms, 100 ms, 200 ms, ...), capped so
//! a misconfigured policy cannot stall a real-time pipeline for seconds.
//! Tests use [`RetryPolicy::immediate`] to retry without sleeping.
//!
//! # Determinism
//!
//! Two knobs keep retrying compatible with the workspace's
//! byte-identical-replay posture:
//!
//! - **Seeded jitter** ([`RetryPolicy::with_jitter`]): backoff jitter —
//!   needed so a fleet of clients retrying against one daemon does not
//!   thunder in lockstep — is drawn from [`crate::rng`], not from entropy.
//!   The pause schedule is a pure function of `(policy, attempt)`.
//! - **Injectable sleeper** ([`RetryPolicy::run_with_sleeper`]): the
//!   *decision* to pause is separated from the *act* of pausing, so
//!   deterministic campaigns and tests account for backoff in modeled
//!   time (or not at all) while production call sites keep
//!   [`RetryPolicy::run`]'s real `thread::sleep`.
//!
//! # Example
//!
//! ```
//! use rtped_core::retry::RetryPolicy;
//!
//! let mut calls = 0;
//! let out: Result<u32, &str> = RetryPolicy::immediate(3).run(|attempt| {
//!     calls += 1;
//!     if attempt < 2 { Err("transient") } else { Ok(7) }
//! });
//! assert_eq!(out, Ok(7));
//! assert_eq!(calls, 3);
//! ```

use std::time::Duration;

use crate::rng::{Rng, SeedRng};

/// Upper bound on a single backoff pause, whatever the policy says.
/// A detection chain with a ~15 ms frame budget must never sleep a
/// second waiting on IO.
const MAX_BACKOFF: Duration = Duration::from_millis(500);

/// Largest fractional increase seeded jitter can add to a pause: the
/// jittered backoff lies in `[base, base × 1.5)`, still capped at
/// [`MAX_BACKOFF`]. Jitter only ever lengthens a pause, so it cannot
/// defeat the backoff's purpose of spacing retries out.
const JITTER_MAX_FRACTION: f64 = 0.5;

/// A bounded retry schedule: at most `max_attempts` tries, doubling the
/// pause between consecutive tries starting from `base_backoff`, with
/// optional seeded jitter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total number of attempts (the first try counts; `0` is promoted
    /// to `1` so `run` always invokes the operation at least once).
    pub max_attempts: u32,
    /// Pause before the second attempt; doubles per subsequent retry and
    /// is capped at 500 ms.
    pub base_backoff: Duration,
    /// Seed for deterministic backoff jitter; `None` disables jitter and
    /// keeps the exact doubling schedule. Equal seeds produce equal
    /// pause schedules on every host.
    pub jitter_seed: Option<u64>,
}

impl Default for RetryPolicy {
    /// Three attempts, 50 ms initial backoff, no jitter — tolerates a
    /// momentary hiccup without materially delaying batch work.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(50),
            jitter_seed: None,
        }
    }
}

impl RetryPolicy {
    /// A policy that retries up to `max_attempts` times with no pause —
    /// for tests and for in-memory operations where backoff is pointless.
    #[must_use]
    pub fn immediate(max_attempts: u32) -> Self {
        RetryPolicy {
            max_attempts,
            base_backoff: Duration::ZERO,
            jitter_seed: None,
        }
    }

    /// The same policy with seeded backoff jitter: each pause is
    /// stretched by a factor in `[1, 1.5)` drawn from a [`SeedRng`]
    /// stream keyed on `(seed, attempt)`. Deterministic — equal seeds
    /// replay equal schedules — yet distinct seeds decorrelate a fleet
    /// of clients so their retries do not synchronize.
    #[must_use]
    pub fn with_jitter(mut self, seed: u64) -> Self {
        self.jitter_seed = Some(seed);
        self
    }

    /// The pause taken after failed attempt `attempt` (0-based): the base
    /// backoff doubled `attempt` times, stretched by the seeded jitter
    /// factor when one is configured, capped at 500 ms. Pure: equal
    /// `(policy, attempt)` pairs yield equal pauses.
    #[must_use]
    pub fn backoff_for(&self, attempt: u32) -> Duration {
        let factor = 1u32 << attempt.min(16);
        let base = (self.base_backoff * factor).min(MAX_BACKOFF);
        match self.jitter_seed {
            None => base,
            Some(seed) => {
                // One draw from a per-attempt split: consuming jitter for
                // attempt k never perturbs attempt k+1's draw.
                let mut rng = SeedRng::seed_from_u64(seed).split(u64::from(attempt));
                let stretch = 1.0 + rng.next_f64() * JITTER_MAX_FRACTION;
                Duration::from_secs_f64(base.as_secs_f64() * stretch).min(MAX_BACKOFF)
            }
        }
    }

    /// Runs `op` until it succeeds or the attempt budget is exhausted,
    /// sleeping the scheduled backoff between tries. `op` receives the
    /// 0-based attempt number so callers can log or vary behavior.
    ///
    /// # Errors
    ///
    /// Returns the error from the **last** attempt once the budget is
    /// spent; earlier errors are discarded.
    pub fn run<T, E>(&self, op: impl FnMut(u32) -> Result<T, E>) -> Result<T, E> {
        self.run_with_sleeper(
            |pause| {
                if !pause.is_zero() {
                    std::thread::sleep(pause);
                }
            },
            op,
        )
    }

    /// [`RetryPolicy::run`] with the pause mechanism injected: `sleeper`
    /// receives every scheduled backoff instead of `thread::sleep`.
    /// Deterministic campaigns pass a sleeper that *accounts* for the
    /// pause in modeled time (or ignores it) so retrying never touches
    /// the wall clock; tests pass a recorder to assert the schedule.
    ///
    /// # Errors
    ///
    /// Returns the error from the **last** attempt once the budget is
    /// spent; earlier errors are discarded.
    pub fn run_with_sleeper<T, E>(
        &self,
        mut sleeper: impl FnMut(Duration),
        mut op: impl FnMut(u32) -> Result<T, E>,
    ) -> Result<T, E> {
        let attempts = self.max_attempts.max(1);
        let mut attempt = 0;
        loop {
            if attempt > 0 {
                sleeper(self.backoff_for(attempt - 1));
            }
            match op(attempt) {
                Ok(value) => return Ok(value),
                Err(err) if attempt + 1 >= attempts => return Err(err),
                Err(_) => attempt += 1,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_success_returns_immediately() {
        let mut calls = 0;
        let out: Result<u32, ()> = RetryPolicy::default().run(|_| {
            calls += 1;
            Ok(5)
        });
        assert_eq!(out, Ok(5));
        assert_eq!(calls, 1);
    }

    #[test]
    fn retries_until_budget_then_returns_last_error() {
        let mut calls = 0;
        let out: Result<(), String> = RetryPolicy::immediate(4).run(|attempt| {
            calls += 1;
            Err(format!("fail {attempt}"))
        });
        assert_eq!(out, Err("fail 3".to_string()));
        assert_eq!(calls, 4);
    }

    #[test]
    fn transient_failure_recovers_mid_budget() {
        let out: Result<&str, &str> =
            RetryPolicy::immediate(5)
                .run(|attempt| if attempt == 2 { Ok("ok") } else { Err("no") });
        assert_eq!(out, Ok("ok"));
    }

    #[test]
    fn zero_attempts_still_runs_once() {
        let mut calls = 0;
        let out: Result<(), ()> = RetryPolicy::immediate(0).run(|_| {
            calls += 1;
            Err(())
        });
        assert!(out.is_err());
        assert_eq!(calls, 1);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let policy = RetryPolicy {
            max_attempts: 10,
            base_backoff: Duration::from_millis(50),
            jitter_seed: None,
        };
        assert_eq!(policy.backoff_for(0), Duration::from_millis(50));
        assert_eq!(policy.backoff_for(1), Duration::from_millis(100));
        assert_eq!(policy.backoff_for(2), Duration::from_millis(200));
        // Cap: 50 ms << 4 = 800 ms clamps to 500 ms, as does anything larger.
        assert_eq!(policy.backoff_for(4), MAX_BACKOFF);
        assert_eq!(policy.backoff_for(63), MAX_BACKOFF);
    }

    #[test]
    fn immediate_policy_never_sleeps() {
        let policy = RetryPolicy::immediate(8);
        for attempt in 0..8 {
            assert_eq!(policy.backoff_for(attempt), Duration::ZERO);
        }
    }

    #[test]
    fn jitter_is_deterministic_bounded_and_seed_sensitive() {
        let base = RetryPolicy {
            max_attempts: 6,
            base_backoff: Duration::from_millis(40),
            jitter_seed: None,
        };
        let jittered = base.clone().with_jitter(7);
        for attempt in 0..4 {
            let plain = base.backoff_for(attempt);
            let j = jittered.backoff_for(attempt);
            // Replaying the same (seed, attempt) yields the same pause.
            assert_eq!(j, jittered.backoff_for(attempt));
            // Jitter only stretches, never shrinks, and stays bounded.
            assert!(j >= plain, "attempt {attempt}: {j:?} < {plain:?}");
            let ceiling =
                Duration::from_secs_f64(plain.as_secs_f64() * (1.0 + JITTER_MAX_FRACTION))
                    .min(MAX_BACKOFF);
            assert!(j <= ceiling, "attempt {attempt}: {j:?} > {ceiling:?}");
        }
        // Different seeds decorrelate the schedules.
        let other = base.with_jitter(8);
        assert!((0..4).any(|a| other.backoff_for(a) != jittered.backoff_for(a)));
        // Jitter over a zero base stays zero (immediate policies remain
        // immediate even when a seed is attached).
        assert_eq!(
            RetryPolicy::immediate(3).with_jitter(9).backoff_for(2),
            Duration::ZERO
        );
    }

    #[test]
    fn injected_sleeper_sees_the_exact_schedule_without_sleeping() {
        let policy = RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(10),
            jitter_seed: Some(42),
        };
        let mut pauses = Vec::new();
        let out: Result<(), &str> =
            policy.run_with_sleeper(|pause| pauses.push(pause), |_| Err("always"));
        assert!(out.is_err());
        assert_eq!(
            pauses,
            vec![
                policy.backoff_for(0),
                policy.backoff_for(1),
                policy.backoff_for(2)
            ]
        );
    }
}
