//! Hermetic zero-dependency substrate for the `rtped` workspace.
//!
//! Real-time HOG+SVM deployments target self-contained embedded platforms
//! (the paper's ZC7020 SoC has no package manager), and the workspace
//! mirrors that posture: `cargo build --offline` must succeed on a machine
//! with an empty registry. This crate supplies the four capabilities that
//! previously came from third-party crates, each redesigned as one small,
//! documented API:
//!
//! - [`rng`]: seeded deterministic pseudo-randomness (xoshiro256++ seeded
//!   via SplitMix64) behind the [`Rng`] trait — replaces `rand`.
//! - [`json`]: a minimal JSON value type with strict parsing, canonical
//!   serialization, and [`ToJson`]/[`FromJson`] conversions — replaces
//!   `serde`/`serde_json`.
//! - [`check`]: a seeded property-testing harness with shrink-on-failure
//!   via the [`check!`] macro — replaces `proptest`.
//! - [`timer`]: a wall-clock micro-benchmark harness for the
//!   `harness = false` bench binaries — replaces `criterion`.
//! - [`par`]: scoped-thread data-parallel primitives (order-preserving
//!   `map`, chunked `map_chunks`, in-place `for_each_band`) with an
//!   `RTPED_THREADS` override — replaces `rayon`.
//! - [`retry`]: bounded retry-with-backoff ([`retry::RetryPolicy`]) for
//!   transient IO failures.
//! - [`env`]: typed, warn-once environment-variable parsing shared by
//!   every `RTPED_*` knob (a malformed value is rejected on stderr, never
//!   silently ignored).
//! - [`wire`]: length-prefixed message framing for the serving protocol,
//!   with typed oversize/truncation errors and a clean-EOF signal.
//! - [`error`]: the workspace-wide [`Error`] type every fallible `rtped`
//!   API returns.
//!
//! Everything here is `std`-only. The `rtped` facade re-exports this crate
//! as `rtped::core`.
//!
//! # Example
//!
//! ```
//! use rtped_core::{Json, Rng, SeedRng};
//!
//! // One seed reproduces an entire experiment.
//! let mut rng = SeedRng::seed_from_u64(42);
//! let jitter = rng.gen_range(-0.06..=0.06f64);
//!
//! // Canonical, insertion-ordered JSON for artifacts on disk.
//! let meta = rtped_core::json::obj([
//!     ("format", 1u64.into()),
//!     ("jitter", jitter.into()),
//! ]);
//! assert!(meta.to_string().starts_with("{\"format\":1,"));
//! ```

pub mod check;
pub mod env;
pub mod error;
pub mod json;
pub mod par;
pub mod retry;
pub mod rng;
pub mod timer;
pub mod wire;

pub use error::Error;
pub use json::{FromJson, Json, JsonError, ToJson};
pub use rng::{Rng, SeedRng};
