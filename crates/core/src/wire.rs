//! Length-prefixed message framing for the serving protocol.
//!
//! One frame is a 4-byte big-endian payload length followed by exactly
//! that many payload bytes (canonical JSON in the rtped protocol, but the
//! framing layer is payload-agnostic). The decoder is hostile-input safe:
//!
//! - a length claim above the caller's cap fails fast with
//!   [`WireError::Oversized`] **before any allocation**;
//! - a stream that ends mid-header or mid-payload is
//!   [`WireError::Truncated`], never a panic or a partial frame;
//! - EOF exactly on a frame boundary is the clean end of the
//!   conversation (`Ok(None)`), so connection teardown is typed apart
//!   from corruption.

use std::fmt;
use std::io::{ErrorKind, Read, Write};

use crate::Error;

/// Default cap on one frame's payload (4 MiB): comfortably above any
/// protocol message, far below an allocation that could hurt the daemon.
pub const MAX_FRAME_BYTES: usize = 4 << 20;

/// Typed framing failures.
#[derive(Debug)]
pub enum WireError {
    /// The header claims a payload larger than the cap in force.
    Oversized {
        /// Claimed payload length.
        len: usize,
        /// The cap it exceeded.
        max: usize,
    },
    /// The stream ended inside a frame.
    Truncated {
        /// Bytes the frame still owed.
        expected: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// The underlying reader or writer failed.
    Io(std::io::Error),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Oversized { len, max } => {
                write!(f, "frame claims {len} bytes, cap is {max}")
            }
            WireError::Truncated { expected, got } => {
                write!(f, "truncated frame: expected {expected} bytes, got {got}")
            }
            WireError::Io(e) => write!(f, "frame i/o error: {e}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            WireError::Oversized { .. } | WireError::Truncated { .. } => None,
        }
    }
}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

impl From<WireError> for Error {
    fn from(e: WireError) -> Self {
        match e {
            WireError::Io(io) => Error::Io(io),
            other => Error::format(other.to_string()),
        }
    }
}

/// Whether this error is a read timeout (the poll tick of a daemon using
/// `set_read_timeout`), as opposed to a real framing failure.
#[must_use]
pub fn is_timeout(err: &WireError) -> bool {
    matches!(
        err,
        WireError::Io(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
    )
}

/// Frames `payload` into a fresh buffer (header + payload).
///
/// # Errors
///
/// Returns [`WireError::Oversized`] when the payload exceeds
/// [`MAX_FRAME_BYTES`].
pub fn encode_frame(payload: &[u8]) -> Result<Vec<u8>, WireError> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(WireError::Oversized {
            len: payload.len(),
            max: MAX_FRAME_BYTES,
        });
    }
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(payload);
    Ok(out)
}

/// Writes one frame to `writer`.
///
/// # Errors
///
/// [`WireError::Oversized`] for payloads above [`MAX_FRAME_BYTES`],
/// [`WireError::Io`] on write failure.
pub fn write_frame<W: Write>(mut writer: W, payload: &[u8]) -> Result<(), WireError> {
    let frame = encode_frame(payload)?;
    writer.write_all(&frame)?;
    writer.flush()?;
    Ok(())
}

/// Reads one frame's payload from `reader`, capping the claimed length at
/// `max` bytes. Returns `Ok(None)` on clean EOF (the stream ended exactly
/// on a frame boundary).
///
/// # Errors
///
/// [`WireError::Oversized`] for a length claim above `max` (checked
/// before any allocation), [`WireError::Truncated`] when the stream ends
/// inside a frame, [`WireError::Io`] on read failure.
pub fn read_frame<R: Read>(mut reader: R, max: usize) -> Result<Option<Vec<u8>>, WireError> {
    let mut header = [0u8; 4];
    let mut filled = 0usize;
    while filled < header.len() {
        match reader.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(WireError::Truncated {
                    expected: header.len(),
                    got: filled,
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    let len = u32::from_be_bytes(header) as usize;
    if len > max {
        return Err(WireError::Oversized { len, max });
    }
    let mut payload = vec![0u8; len];
    let mut got = 0usize;
    while got < len {
        match reader.read(&mut payload[got..]) {
            Ok(0) => return Err(WireError::Truncated { expected: len, got }),
            Ok(n) => got += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut cursor = buf.as_slice();
        assert_eq!(
            read_frame(&mut cursor, MAX_FRAME_BYTES).unwrap().unwrap(),
            b"hello"
        );
        assert_eq!(
            read_frame(&mut cursor, MAX_FRAME_BYTES).unwrap().unwrap(),
            b""
        );
        assert!(read_frame(&mut cursor, MAX_FRAME_BYTES).unwrap().is_none());
    }

    #[test]
    fn every_strict_prefix_is_truncated_or_clean_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"payload bytes").unwrap();
        for cut in 1..buf.len() {
            let err = read_frame(&buf[..cut], MAX_FRAME_BYTES)
                .map(|_| ())
                .unwrap_err();
            assert!(
                matches!(err, WireError::Truncated { .. }),
                "cut {cut}: {err}"
            );
        }
        // Zero bytes is the clean-EOF boundary, not an error.
        assert!(read_frame(&buf[..0], MAX_FRAME_BYTES).unwrap().is_none());
    }

    #[test]
    fn oversized_claim_fails_before_allocating() {
        // Header claims u32::MAX bytes with an empty body: must fail on
        // the cap check, not attempt a 4 GiB allocation.
        let header = u32::MAX.to_be_bytes();
        let err = read_frame(&header[..], MAX_FRAME_BYTES)
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(
            err,
            WireError::Oversized { len, max } if len == u32::MAX as usize && max == MAX_FRAME_BYTES
        ));
    }

    #[test]
    fn encode_rejects_oversized_payloads() {
        // A fake huge slice is not constructible cheaply; drive the cap
        // with a small max through read instead, and the encode path with
        // the real constant via the boundary case.
        assert!(encode_frame(&[0u8; 16]).is_ok());
        let frame = encode_frame(b"abc").unwrap();
        assert_eq!(&frame[..4], &3u32.to_be_bytes());
        let err = read_frame(frame.as_slice(), 2).map(|_| ()).unwrap_err();
        assert!(matches!(err, WireError::Oversized { len: 3, max: 2 }));
    }

    #[test]
    fn errors_display_and_convert() {
        let e = WireError::Truncated {
            expected: 10,
            got: 3,
        };
        assert!(e.to_string().contains("expected 10 bytes, got 3"));
        let core: Error = e.into();
        assert!(matches!(core, Error::Format(_)));
        let io: Error = WireError::Io(std::io::Error::from(ErrorKind::BrokenPipe)).into();
        assert!(matches!(io, Error::Io(_)));
        assert!(is_timeout(&WireError::Io(std::io::Error::from(
            ErrorKind::WouldBlock
        ))));
        assert!(!is_timeout(&WireError::Oversized { len: 1, max: 0 }));
    }
}
