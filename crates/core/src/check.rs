//! A small seeded property-testing harness.
//!
//! This replaces `proptest` for the workspace's randomized tests. The
//! moving parts: a [`Gen`] trait producing random values (with a
//! "shrink-lite" step that walks a failing case toward smaller inputs), a
//! [`run`] driver that executes a property over many seeded cases and
//! reports the shrunk counterexample plus its reproduction seed, and a
//! [`check!`](crate::check!) macro that turns `fn name(arg in gen, ...)`
//! blocks into `#[test]` functions.
//!
//! Design limits, on purpose: generators built with [`Gen::map_gen`] /
//! [`Gen::flat_map_gen`] do not shrink (the pre-image of the mapped value is
//! not recoverable), and shrinking is greedy with a bounded step count.
//! Failures always print the case seed, so any counterexample — shrunk or
//! not — replays exactly.
//!
//! # Example
//!
//! ```
//! rtped_core::check! {
//!     #![cases = 32]
//!     fn addition_commutes(a in -1000..1000i32, b in -1000..1000i32) {
//!         rtped_core::check_assert_eq!(a + b, b + a);
//!     }
//! }
//! # fn main() {}
//! ```

use std::fmt;
use std::ops::{Range, RangeInclusive};
use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::rng::{splitmix64, Rng, SampleUniform, SeedRng};

/// How many shrink candidates [`run`] will evaluate before giving up and
/// reporting the best counterexample found so far.
const MAX_SHRINK_STEPS: usize = 512;

/// A source of random test values with an optional shrinking step.
pub trait Gen: Clone {
    /// The values this generator produces.
    type Value: Clone + fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut SeedRng) -> Self::Value;

    /// Candidate simplifications of a failing `value`, "smallest" first.
    /// The default (no candidates) is always sound.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// A generator applying `f` to this generator's output (named to
    /// avoid colliding with `Iterator::map` on range generators).
    ///
    /// Mapped generators do not shrink.
    fn map_gen<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: Clone + fmt::Debug,
        F: Fn(Self::Value) -> U + Clone,
    {
        Map { inner: self, f }
    }

    /// A generator whose second stage depends on a first draw (e.g. draw
    /// dimensions, then draw a buffer of matching length).
    ///
    /// Flat-mapped generators do not shrink.
    fn flat_map_gen<H, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        H: Gen,
        F: Fn(Self::Value) -> H + Clone,
    {
        FlatMap { inner: self, f }
    }
}

impl<T: SampleUniform + fmt::Debug> Gen for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut SeedRng) -> T {
        rng.gen_range(self.clone())
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        shrink_toward_low(self.start, *value)
    }
}

impl<T: SampleUniform + fmt::Debug> Gen for RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut SeedRng) -> T {
        rng.gen_range(self.clone())
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        shrink_toward_low(*self.start(), *value)
    }
}

fn shrink_toward_low<T: SampleUniform>(low: T, value: T) -> Vec<T> {
    let mut out = Vec::new();
    if value != low {
        // Jump straight to the minimum first, then halve the distance.
        out.push(low);
        if let Some(mid) = T::shrink_toward(low, value) {
            if mid != low {
                out.push(mid);
            }
        }
    }
    out
}

/// See [`Gen::map_gen`].
#[derive(Clone)]
pub struct Map<G, F> {
    inner: G,
    f: F,
}

impl<G, U, F> Gen for Map<G, F>
where
    G: Gen,
    U: Clone + fmt::Debug,
    F: Fn(G::Value) -> U + Clone,
{
    type Value = U;

    fn generate(&self, rng: &mut SeedRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Gen::flat_map_gen`].
#[derive(Clone)]
pub struct FlatMap<G, F> {
    inner: G,
    f: F,
}

impl<G, H, F> Gen for FlatMap<G, F>
where
    G: Gen,
    H: Gen,
    F: Fn(G::Value) -> H + Clone,
{
    type Value = H::Value;

    fn generate(&self, rng: &mut SeedRng) -> H::Value {
        let first = self.inner.generate(rng);
        (self.f)(first).generate(rng)
    }
}

/// A generator that always yields `value` (useful inside `flat_map`).
#[must_use]
pub fn just<T: Clone + fmt::Debug>(value: T) -> Just<T> {
    Just { value }
}

/// See [`just`].
#[derive(Clone)]
pub struct Just<T> {
    value: T,
}

impl<T: Clone + fmt::Debug> Gen for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut SeedRng) -> T {
        self.value.clone()
    }
}

/// A fair coin.
#[must_use]
pub fn boolean() -> Boolean {
    Boolean
}

/// See [`boolean`].
#[derive(Clone)]
pub struct Boolean;

impl Gen for Boolean {
    type Value = bool;

    fn generate(&self, rng: &mut SeedRng) -> bool {
        rng.gen_bool(0.5)
    }

    fn shrink(&self, value: &bool) -> Vec<bool> {
        if *value {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

/// A uniform choice among explicit options (no shrinking).
#[must_use]
pub fn choice<T: Clone + fmt::Debug>(options: Vec<T>) -> Choice<T> {
    assert!(!options.is_empty(), "choice() needs at least one option");
    Choice { options }
}

/// See [`choice`].
#[derive(Clone)]
pub struct Choice<T> {
    options: Vec<T>,
}

impl<T: Clone + fmt::Debug> Gen for Choice<T> {
    type Value = T;

    fn generate(&self, rng: &mut SeedRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].clone()
    }
}

/// Lengths accepted by [`vec_of`] and [`ascii_string`]: `a..b`, `a..=b`,
/// or an exact `usize`.
pub trait LenRange {
    /// Inclusive `(min, max)` bounds.
    fn bounds(self) -> (usize, usize);
}

impl LenRange for Range<usize> {
    fn bounds(self) -> (usize, usize) {
        assert!(self.start < self.end, "empty length range");
        (self.start, self.end - 1)
    }
}

impl LenRange for RangeInclusive<usize> {
    fn bounds(self) -> (usize, usize) {
        let (min, max) = self.into_inner();
        assert!(min <= max, "empty length range");
        (min, max)
    }
}

impl LenRange for usize {
    fn bounds(self) -> (usize, usize) {
        (self, self)
    }
}

/// A vector of `elem`-generated values with length drawn from `len`.
#[must_use]
pub fn vec_of<G: Gen>(elem: G, len: impl LenRange) -> VecGen<G> {
    let (min, max) = len.bounds();
    VecGen { elem, min, max }
}

/// See [`vec_of`].
#[derive(Clone)]
pub struct VecGen<G> {
    elem: G,
    min: usize,
    max: usize,
}

impl<G: Gen> Gen for VecGen<G> {
    type Value = Vec<G::Value>;

    fn generate(&self, rng: &mut SeedRng) -> Vec<G::Value> {
        let len = rng.gen_range(self.min..=self.max);
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }

    fn shrink(&self, value: &Vec<G::Value>) -> Vec<Vec<G::Value>> {
        let mut out = Vec::new();
        let n = value.len();
        if n > self.min {
            let half = self.min.max(n / 2);
            if half < n {
                out.push(value[..half].to_vec());
            }
            out.push(value[..n - 1].to_vec());
            out.push(value[1..].to_vec());
        }
        for i in 0..n {
            if let Some(cand) = self.elem.shrink(&value[i]).into_iter().next() {
                let mut v = value.clone();
                v[i] = cand;
                out.push(v);
            }
        }
        out
    }
}

/// A printable-ASCII string (bytes `0x20..=0x7E`, which includes quotes,
/// backslashes, and braces — the characters parsers trip on) with length
/// drawn from `len`.
#[must_use]
pub fn ascii_string(len: impl LenRange) -> AsciiString {
    let (min, max) = len.bounds();
    AsciiString { min, max }
}

/// See [`ascii_string`].
#[derive(Clone)]
pub struct AsciiString {
    min: usize,
    max: usize,
}

impl Gen for AsciiString {
    type Value = String;

    fn generate(&self, rng: &mut SeedRng) -> String {
        let len = rng.gen_range(self.min..=self.max);
        (0..len)
            .map(|_| char::from(rng.gen_range(0x20u8..=0x7E)))
            .collect()
    }

    fn shrink(&self, value: &String) -> Vec<String> {
        let mut out = Vec::new();
        let n = value.len();
        if n > self.min {
            let half = self.min.max(n / 2);
            if half < n {
                out.push(value[..half].to_string());
            }
            out.push(value[..n - 1].to_string());
        }
        out
    }
}

macro_rules! impl_gen_tuple {
    ($($G:ident . $idx:tt),+) => {
        impl<$($G: Gen),+> Gen for ($($G,)+) {
            type Value = ($($G::Value,)+);

            fn generate(&self, rng: &mut SeedRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut v = value.clone();
                        v.$idx = cand;
                        out.push(v);
                    }
                )+
                out
            }
        }
    };
}

impl_gen_tuple!(A.0);
impl_gen_tuple!(A.0, B.1);
impl_gen_tuple!(A.0, B.1, C.2);
impl_gen_tuple!(A.0, B.1, C.2, D.3);
impl_gen_tuple!(A.0, B.1, C.2, D.3, E.4);
impl_gen_tuple!(A.0, B.1, C.2, D.3, E.4, F.5);
impl_gen_tuple!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
impl_gen_tuple!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);

/// How a property run samples cases.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of passing cases required.
    pub cases: u32,
    /// Base seed; the per-test stream also mixes in the test name.
    pub seed: u64,
}

impl Config {
    /// A config with `cases` cases and the default seed.
    #[must_use]
    pub fn new(cases: u32) -> Self {
        Config {
            cases,
            ..Config::default()
        }
    }

    /// Overrides the base seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 64,
            seed: 0x5EED_0FC0_FFEE,
        }
    }
}

/// Panic payload thrown by [`check_assume!`](crate::check_assume!); the
/// runner treats it as "skip this case" rather than a failure.
pub struct Discard;

enum CaseOutcome {
    Pass,
    Discard,
    Fail(String),
}

fn run_one<V>(prop: &impl Fn(&V), value: &V) -> CaseOutcome {
    match catch_unwind(AssertUnwindSafe(|| prop(value))) {
        Ok(()) => CaseOutcome::Pass,
        Err(payload) => {
            if payload.is::<Discard>() {
                CaseOutcome::Discard
            } else if let Some(s) = payload.downcast_ref::<&str>() {
                CaseOutcome::Fail((*s).to_string())
            } else if let Some(s) = payload.downcast_ref::<String>() {
                CaseOutcome::Fail(s.clone())
            } else {
                CaseOutcome::Fail("<non-string panic payload>".to_string())
            }
        }
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runs `prop` over `config.cases` generated cases; on failure, shrinks
/// greedily and panics with the minimal counterexample found and the seed
/// that reproduces it.
///
/// Properties signal failure by panicking (`assert!`,
/// [`check_assert!`](crate::check_assert!), ...) and skip
/// uninteresting cases via [`check_assume!`](crate::check_assume!).
///
/// # Panics
///
/// Panics if the property fails for some case, or if too many cases in a
/// row are discarded (the generator and the assumptions disagree).
pub fn run<G, F>(name: &str, config: &Config, gen: &G, prop: F)
where
    G: Gen,
    F: Fn(&G::Value),
{
    let mut stream = config.seed ^ fnv1a(name);
    let mut passed: u32 = 0;
    let mut discarded: u32 = 0;
    let discard_budget = config.cases.saturating_mul(16).saturating_add(100);

    while passed < config.cases {
        let case_seed = splitmix64(&mut stream);
        let mut rng = SeedRng::seed_from_u64(case_seed);
        let value = gen.generate(&mut rng);
        match run_one(&prop, &value) {
            CaseOutcome::Pass => passed += 1,
            CaseOutcome::Discard => {
                discarded += 1;
                assert!(
                    discarded <= discard_budget,
                    "property `{name}`: {discarded} cases discarded before \
                     {passed} passed — generator and assumptions disagree"
                );
            }
            CaseOutcome::Fail(first_message) => {
                let (minimal, message, steps) =
                    shrink_failure(gen, &prop, value.clone(), first_message);
                // rtped-lint: allow(unwrap-in-library, "panicking is the harness's reporting channel: a failed property must abort the #[test] that ran it")
                panic!(
                    "property `{name}` failed after {passed} passing case(s)\n\
                     | counterexample: {minimal:?}\n\
                     | original case:  {value:?} ({steps} shrink step(s))\n\
                     | replay: case seed {case_seed:#018x} (config seed {:#x})\n\
                     | cause: {message}",
                    config.seed,
                );
            }
        }
    }
}

fn shrink_failure<G: Gen, F: Fn(&G::Value)>(
    gen: &G,
    prop: &F,
    failing: G::Value,
    message: String,
) -> (G::Value, String, usize) {
    let mut best = failing;
    let mut best_message = message;
    let mut steps = 0usize;
    let mut improved = 0usize;

    'outer: while steps < MAX_SHRINK_STEPS {
        for candidate in gen.shrink(&best) {
            steps += 1;
            if let CaseOutcome::Fail(m) = run_one(prop, &candidate) {
                best = candidate;
                best_message = m;
                improved += 1;
                continue 'outer;
            }
            if steps >= MAX_SHRINK_STEPS {
                break 'outer;
            }
        }
        break;
    }
    (best, best_message, improved)
}

/// Declares seeded property tests.
///
/// Each `fn name(arg in generator, ...) { body }` item expands to a
/// `#[test]` that runs the body over generated cases. An optional leading
/// `#![cases = N]` / `#![cases = N, seed = S]` / `#![seed = S]` attribute
/// configures every test in the block.
///
/// ```
/// rtped_core::check! {
///     #![cases = 16]
///     fn reverse_is_involutive(v in rtped_core::check::vec_of(0u8..=255, 0..32)) {
///         let mut w = v.clone();
///         w.reverse();
///         w.reverse();
///         rtped_core::check_assert_eq!(v, w);
///     }
/// }
/// # fn main() {}
/// ```
#[macro_export]
macro_rules! check {
    (#![cases = $cases:expr, seed = $seed:expr] $($rest:tt)*) => {
        $crate::__check_fns! { ($crate::check::Config::new($cases).with_seed($seed)) $($rest)* }
    };
    (#![cases = $cases:expr] $($rest:tt)*) => {
        $crate::__check_fns! { ($crate::check::Config::new($cases)) $($rest)* }
    };
    (#![seed = $seed:expr] $($rest:tt)*) => {
        $crate::__check_fns! { ($crate::check::Config::default().with_seed($seed)) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__check_fns! { ($crate::check::Config::default()) $($rest)* }
    };
}

/// Implementation detail of [`check!`]: consumes one `fn` item at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __check_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $gen:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let __config = $cfg;
            let __gen = ($($gen,)+);
            $crate::check::run(stringify!($name), &__config, &__gen, |__case| {
                #[allow(unused_parens)]
                let ($($arg,)+) = ::std::clone::Clone::clone(__case);
                $body
            });
        }
        $crate::__check_fns! { ($cfg) $($rest)* }
    };
}

/// Asserts a property condition (an alias of `assert!` that reads like its
/// proptest counterpart at ported call sites).
#[macro_export]
macro_rules! check_assert {
    ($($tt:tt)*) => { ::std::assert!($($tt)*) };
}

/// Asserts equality inside a property (alias of `assert_eq!`).
#[macro_export]
macro_rules! check_assert_eq {
    ($($tt:tt)*) => { ::std::assert_eq!($($tt)*) };
}

/// Skips the current case when its precondition does not hold; skipped
/// cases do not count toward the case budget.
#[macro_export]
macro_rules! check_assume {
    ($cond:expr) => {
        if !$cond {
            ::std::panic::panic_any($crate::check::Discard);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_config() {
        let gen = (0..1000u32, vec_of(0.0..1.0f64, 0..8));
        let config = Config::default();
        let collect = || {
            let mut stream = config.seed ^ fnv1a("t");
            (0..20)
                .map(|_| {
                    let mut rng = SeedRng::seed_from_u64(splitmix64(&mut stream));
                    gen.generate(&mut rng)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    fn range_shrink_heads_toward_low() {
        let candidates = (0..1000usize).shrink(&800);
        assert_eq!(candidates, vec![0, 400]);
        assert!((0..1000usize).shrink(&0).is_empty());
        let f = (-1.0..1.0f64).shrink(&0.5);
        assert_eq!(f, vec![-1.0, -0.25]);
    }

    #[test]
    fn vec_shrink_respects_min_len_and_shrinks_elements() {
        let gen = vec_of(0..100u8, 2..=8);
        let candidates = gen.shrink(&vec![50, 60, 70, 80]);
        // Length reductions never go below the minimum of 2.
        assert!(candidates.iter().all(|c| c.len() >= 2));
        assert!(candidates.contains(&vec![50, 60]));
        assert!(candidates.contains(&vec![50, 60, 70]));
        // Element-wise shrink of the first slot.
        assert!(candidates.contains(&vec![0, 60, 70, 80]));
        assert!(gen.shrink(&vec![0, 0]).is_empty());
    }

    #[test]
    fn tuple_shrink_varies_one_component_at_a_time() {
        let gen = (0..10u8, 0..10u8);
        let candidates = gen.shrink(&(4, 6));
        assert!(candidates.contains(&(0, 6)));
        assert!(candidates.contains(&(4, 0)));
        assert!(!candidates.contains(&(0, 0)));
    }

    #[test]
    fn failing_property_reports_shrunk_counterexample_and_seed() {
        let config = Config::new(64);
        let result = catch_unwind(AssertUnwindSafe(|| {
            run("demo", &config, &(0..1000u32,), |&(v,)| {
                assert!(v < 50, "too big: {v}");
            });
        }));
        let message = match result {
            Err(payload) => payload
                .downcast_ref::<String>()
                .expect("string panic")
                .clone(),
            Ok(()) => panic!("property should have failed"),
        };
        assert!(message.contains("property `demo` failed"), "{message}");
        assert!(message.contains("case seed 0x"), "{message}");
        // Greedy halving lands in [50, 99]: any further halving passes.
        let shrunk: u32 = message
            .split("counterexample: (")
            .nth(1)
            .and_then(|rest| rest.split(',').next())
            .and_then(|n| n.trim().parse().ok())
            .expect("counterexample in message");
        assert!((50..100).contains(&shrunk), "shrunk to {shrunk}");
    }

    #[test]
    fn assume_discards_without_failing() {
        let config = Config::new(32);
        run("evens", &config, &(0..100u32,), |&(v,)| {
            crate::check_assume!(v % 2 == 0);
            assert_eq!(v % 2, 0);
        });
    }

    #[test]
    fn impossible_assumption_is_reported_not_looped_forever() {
        let config = Config::new(8);
        let result = catch_unwind(AssertUnwindSafe(|| {
            run("never", &config, &(0..10u32,), |_| {
                crate::check_assume!(false);
            });
        }));
        assert!(result.is_err());
    }

    #[test]
    fn ascii_string_is_printable_and_bounded() {
        let gen = ascii_string(0..=64);
        let mut rng = SeedRng::seed_from_u64(3);
        for _ in 0..100 {
            let s = gen.generate(&mut rng);
            assert!(s.len() <= 64);
            assert!(s.bytes().all(|b| (0x20..=0x7E).contains(&b)));
        }
    }

    #[test]
    fn flat_map_couples_dependent_draws() {
        // Draw a length, then a vector of exactly that length.
        let gen = (1..16usize).flat_map_gen(|n| vec_of(0..255u32, n).map_gen(move |v| (n, v)));
        let mut rng = SeedRng::seed_from_u64(9);
        for _ in 0..50 {
            let (n, v) = gen.generate(&mut rng);
            assert_eq!(v.len(), n);
        }
    }

    #[test]
    fn choice_and_just_and_boolean_generate_expected_values() {
        let mut rng = SeedRng::seed_from_u64(10);
        let c = choice(vec!["a", "b", "c"]);
        for _ in 0..30 {
            assert!(["a", "b", "c"].contains(&c.generate(&mut rng)));
        }
        assert_eq!(just(7u8).generate(&mut rng), 7);
        let b = boolean();
        let heads = (0..200).filter(|_| b.generate(&mut rng)).count();
        assert!((60..140).contains(&heads));
        assert_eq!(b.shrink(&true), vec![false]);
    }

    // The macro surface itself, exercised end to end.
    crate::check! {
        #![cases = 24, seed = 0xD15C]
        fn sort_is_idempotent(v in vec_of(-50..50i32, 0..20)) {
            let mut once = v.clone();
            once.sort_unstable();
            let mut twice = once.clone();
            twice.sort_unstable();
            crate::check_assert_eq!(once, twice);
        }

        fn shuffle_preserves_multiset(seed in 0u64..1024, n in 1usize..32) {
            let mut rng = SeedRng::seed_from_u64(seed);
            let mut v: Vec<usize> = (0..n).collect();
            rng.shuffle(&mut v);
            let mut sorted = v.clone();
            sorted.sort_unstable();
            crate::check_assert_eq!(sorted, (0..n).collect::<Vec<_>>());
        }
    }

    crate::check! {
        fn single_argument_form_works(x in 0..10u8) {
            crate::check_assert!(x < 10);
        }
    }
}
