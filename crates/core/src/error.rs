//! The workspace-wide error type.
//!
//! Every fallible public API across the `rtped` crates returns
//! [`Error`], replacing the per-crate ad-hoc enums (`ImageError`,
//! `ModelIoError`, `BuildDatasetError`, ...) that each reinvented the
//! same Io/Format split. Callers match on the variant when they care
//! and bubble with `?` when they don't; the `rtped` facade re-exports
//! this type so downstream code never names `rtped_core` directly.

use std::fmt;

use crate::json::JsonError;

/// Unified error for I/O, parsing, schema, and validation failures.
#[derive(Debug)]
pub enum Error {
    /// An underlying I/O failure (file missing, permission, short read).
    Io(std::io::Error),
    /// Syntactically malformed JSON, with position information.
    Json(JsonError),
    /// Well-formed input whose content violates the expected schema or
    /// file format (wrong version tag, missing field, bad magic, ...).
    Format(String),
    /// A caller-supplied argument that no amount of retrying will fix
    /// (empty scale list, zero-sized window, mismatched dimensions).
    InvalidInput(String),
}

impl Error {
    /// Builds a [`Error::Format`] from anything string-like.
    pub fn format(message: impl Into<String>) -> Self {
        Error::Format(message.into())
    }

    /// Builds a [`Error::InvalidInput`] from anything string-like.
    pub fn invalid_input(message: impl Into<String>) -> Self {
        Error::InvalidInput(message.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(e) => write!(f, "i/o error: {e}"),
            Error::Json(e) => write!(f, "malformed JSON: {e}"),
            Error::Format(msg) => write!(f, "format error: {msg}"),
            Error::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            Error::Json(e) => Some(e),
            Error::Format(_) | Error::InvalidInput(_) => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

impl From<JsonError> for Error {
    fn from(e: JsonError) -> Self {
        Error::Json(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn display_prefixes_each_variant() {
        let io = Error::from(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"));
        assert!(io.to_string().starts_with("i/o error:"));

        let json = Error::from(crate::json::Json::parse("{").unwrap_err());
        assert!(json.to_string().starts_with("malformed JSON:"));

        assert_eq!(
            Error::format("bad version").to_string(),
            "format error: bad version"
        );
        assert_eq!(
            Error::invalid_input("empty scales").to_string(),
            "invalid input: empty scales"
        );
    }

    #[test]
    fn sources_chain_for_wrapped_errors() {
        let io = Error::from(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"));
        assert!(io.source().is_some());
        assert!(Error::format("x").source().is_none());
    }

    #[test]
    fn question_mark_converts_io_and_json() {
        fn inner() -> Result<(), Error> {
            crate::json::Json::parse("not json")?;
            Ok(())
        }
        assert!(matches!(inner(), Err(Error::Json(_))));
    }
}
