//! A minimal JSON value type with a parser and serializer.
//!
//! This replaces `serde`/`serde_json` for the workspace's needs: model
//! persistence, Platt-calibration files, and experiment metadata. The
//! design is deliberately small — one [`Json`] tree type, hand-rolled
//! [`ToJson`]/[`FromJson`] conversions on the handful of persisted types,
//! and a strict parser with positioned errors.
//!
//! Policies (chosen for deterministic round-trips):
//!
//! - **Object order**: insertion order is preserved on parse and write, so
//!   `write(parse(text)) == text` byte-for-byte for text this module wrote.
//! - **Numbers**: stored as `f64`. Values that are mathematically integral
//!   (and within `i64`) serialize without a decimal point; everything else
//!   uses Rust's shortest round-trip decimal form.
//! - **NaN / infinity**: not representable in JSON; serializing them
//!   produces `null` (and [`FromJson`] impls for numeric fields reject
//!   `null`, so non-finite values fail loudly on the next load).
//! - **Depth**: nesting is capped (128 levels) so hostile input cannot
//!   overflow the stack.
//!
//! # Example
//!
//! ```
//! use rtped_core::json::Json;
//!
//! let value = Json::parse(r#"{"format": 1, "weights": [1.5, -2.0]}"#).unwrap();
//! assert_eq!(value.get("format").and_then(Json::as_u64), Some(1));
//! assert_eq!(value.to_string(), r#"{"format":1,"weights":[1.5,-2]}"#);
//! ```

use std::fmt;

use crate::error::Error;

/// Maximum nesting depth the parser accepts.
const MAX_DEPTH: usize = 128;

/// A JSON document: null, boolean, number, string, array, or object.
///
/// Objects preserve insertion order (they are association lists, not maps);
/// duplicate keys are accepted by the parser with last-one-wins lookup
/// semantics in [`Json::get`].
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, in insertion order.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Parses a JSON document, requiring that nothing but whitespace
    /// follows the first value.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] with a byte offset and 1-based line/column on
    /// malformed input.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        parser.skip_whitespace();
        let value = parser.parse_value(0)?;
        parser.skip_whitespace();
        if parser.pos != parser.bytes.len() {
            return Err(parser.error("trailing characters after JSON value"));
        }
        Ok(value)
    }

    /// Parses a JSON document from raw bytes (must be UTF-8).
    ///
    /// # Errors
    ///
    /// As [`Json::parse`], plus an error for invalid UTF-8.
    pub fn parse_bytes(bytes: &[u8]) -> Result<Json, JsonError> {
        let text = std::str::from_utf8(bytes).map_err(|e| JsonError {
            message: format!("invalid UTF-8 in JSON input: {e}"),
            offset: e.valid_up_to(),
            line: 0,
            column: 0,
        })?;
        Json::parse(text)
    }

    /// Looks up a field of an object (last occurrence wins); `None` for
    /// missing fields and non-objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite `f64`, if it is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a number with an exact non-negative
    /// integer value.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as an `i64`, if it is a number with an exact integer value.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Number(n) if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) => Some(*n as i64),
            _ => None,
        }
    }

    /// The value as a `&str`, if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `bool`, if it is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value's fields in insertion order, if it is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Pretty serialization with two-space indentation and a trailing
    /// newline, for human-edited files like experiment metadata.
    #[must_use]
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Number(n) => write_number(out, *n),
            Json::String(s) => write_escaped(out, s),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, key);
                    out.push(':');
                    value.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Object(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            other => other.write_compact(out),
        }
    }
}

/// Compact serialization (no whitespace) — the canonical on-disk form;
/// `value.to_string()` yields exactly these bytes.
impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write_compact(&mut out);
        f.write_str(&out)
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_number(out: &mut String, n: f64) {
    use fmt::Write;
    if !n.is_finite() {
        // JSON cannot represent NaN or infinity; `null` is the documented
        // policy (matching serde_json's lossy default).
        out.push_str("null");
    } else if n == 0.0 {
        out.push_str(if n.is_sign_negative() { "-0" } else { "0" });
    } else if n.fract() == 0.0 && n.abs() < 9_007_199_254_740_992.0 {
        let _ = write!(out, "{}", n as i64);
    } else {
        // Rust's `Display` for f64 is the shortest decimal that round-trips.
        let _ = write!(out, "{n}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    use fmt::Write;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A positioned JSON syntax error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
    /// 1-based line (0 when unknown).
    pub line: usize,
    /// 1-based column (0 when unknown).
    pub column: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(
                f,
                "{} at line {}, column {}",
                self.message, self.line, self.column
            )
        } else {
            write!(f, "{} at byte {}", self.message, self.offset)
        }
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> JsonError {
        let consumed = &self.bytes[..self.pos.min(self.bytes.len())];
        let line = consumed.iter().filter(|&&b| b == b'\n').count() + 1;
        let column = consumed.iter().rev().take_while(|&&b| b != b'\n').count() + 1;
        JsonError {
            message: message.to_string(),
            offset: self.pos,
            line,
            column,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", byte as char)))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.error("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.parse_literal("null", Json::Null),
            Some(b't') => self.parse_literal("true", Json::Bool(true)),
            Some(b'f') => self.parse_literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(depth),
            Some(b'{') => self.parse_object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(_) => Err(self.error("unexpected character")),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_literal(&mut self, literal: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(self.error(&format!("invalid literal (expected '{literal}')")))
        }
    }

    fn parse_number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: one zero, or a nonzero digit followed by digits.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(c) if c.is_ascii_digit() => {
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.error("invalid number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.error("expected digits after decimal point"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.error("expected digits in exponent"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        // The matched span is ASCII digits/sign/exponent by construction,
        // but route a (unreachable) failure through the parse error path
        // rather than panicking on hostile input.
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        let n: f64 = text
            .parse()
            .map_err(|_| self.error("number out of representable range"))?;
        if n.is_finite() {
            Ok(Json::Number(n))
        } else {
            Err(self.error("number overflows f64"))
        }
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let unit = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&unit) {
                                // High surrogate: require a paired \uXXXX low.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.parse_hex4()?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err(self.error("unpaired surrogate"));
                                    }
                                    let code = 0x10000
                                        + ((u32::from(unit) - 0xD800) << 10)
                                        + (u32::from(low) - 0xDC00);
                                    char::from_u32(code)
                                        .ok_or_else(|| self.error("invalid surrogate pair"))?
                                } else {
                                    return Err(self.error("unpaired surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&unit) {
                                return Err(self.error("unpaired surrogate"));
                            } else {
                                char::from_u32(u32::from(unit))
                                    .ok_or_else(|| self.error("invalid \\u escape"))?
                            };
                            out.push(c);
                            continue; // parse_hex4 already advanced past it
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(self.error("unescaped control character in string"))
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input was validated as str).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    let Some(c) = rest.chars().next() else {
                        return Err(self.error("unterminated string"));
                    };
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u16, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.error("invalid \\u escape"))?;
        let unit = u16::from_str_radix(hex, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos = end;
        Ok(unit)
    }

    fn parse_array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value(depth + 1)?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect_byte(b'{')?;
        let mut fields = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect_byte(b':')?;
            self.skip_whitespace();
            let value = self.parse_value(depth + 1)?;
            fields.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }
}

/// Conversion of a Rust value into a [`Json`] tree.
pub trait ToJson {
    /// Builds the JSON representation.
    fn to_json(&self) -> Json;
}

/// Conversion of a [`Json`] tree back into a Rust value, with explicit
/// schema errors (never panics on malformed trees).
pub trait FromJson: Sized {
    /// Reconstructs the value.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Format`] when the tree does not match the expected
    /// schema.
    fn from_json(json: &Json) -> Result<Self, Error>;
}

/// Helper for [`FromJson`] impls: fetches a required object field.
///
/// # Errors
///
/// Returns [`Error::Format`] if `json` is not an object or lacks `key`.
pub fn required_field<'j>(json: &'j Json, key: &str) -> Result<&'j Json, Error> {
    json.get(key)
        .ok_or_else(|| Error::format(format!("missing required field \"{key}\"")))
}

/// Validates the `{"format":N,"kind":"..."}` header every versioned rtped
/// document carries — model files, run reports, and wire messages all
/// share this one evolution policy. `noun` names the document family in
/// the version-mismatch message (`"model"`, `"report"`, `"message"`).
///
/// # Errors
///
/// Returns [`Error::Format`] when the header is missing, the `format`
/// field is not a non-negative integer, the version differs from
/// `version`, or the `kind` differs from `expected_kind`.
pub fn check_schema_header(
    json: &Json,
    expected_kind: &str,
    noun: &str,
    version: u64,
) -> Result<(), Error> {
    let format = required_field(json, "format")?
        .as_u64()
        .ok_or_else(|| Error::format("field \"format\" must be a non-negative integer"))?;
    if format != version {
        return Err(Error::format(format!(
            "unsupported {noun} format {format} (this build reads format {version})"
        )));
    }
    let kind = required_field(json, "kind")?
        .as_str()
        .ok_or_else(|| Error::format("field \"kind\" must be a string"))?;
    if kind != expected_kind {
        return Err(Error::format(format!(
            "expected kind \"{expected_kind}\", found \"{kind}\""
        )));
    }
    Ok(())
}

macro_rules! impl_json_float {
    ($($ty:ty),+) => {$(
        impl ToJson for $ty {
            fn to_json(&self) -> Json {
                Json::Number(f64::from(*self))
            }
        }
        impl FromJson for $ty {
            fn from_json(json: &Json) -> Result<Self, Error> {
                json.as_f64()
                    .map(|n| n as $ty)
                    .ok_or_else(|| Error::format("expected a number"))
            }
        }
    )+};
}

impl_json_float!(f32, f64);

macro_rules! impl_json_uint {
    ($($ty:ty),+) => {$(
        impl ToJson for $ty {
            fn to_json(&self) -> Json {
                Json::Number(*self as f64)
            }
        }
        impl FromJson for $ty {
            fn from_json(json: &Json) -> Result<Self, Error> {
                json.as_u64()
                    .and_then(|n| <$ty>::try_from(n).ok())
                    .ok_or_else(|| Error::format("expected a non-negative integer"))
            }
        }
    )+};
}

impl_json_uint!(u8, u16, u32, u64, usize);

impl ToJson for i64 {
    fn to_json(&self) -> Json {
        Json::Number(*self as f64)
    }
}

impl FromJson for i64 {
    fn from_json(json: &Json) -> Result<Self, Error> {
        json.as_i64()
            .ok_or_else(|| Error::format("expected an integer"))
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(json: &Json) -> Result<Self, Error> {
        json.as_bool()
            .ok_or_else(|| Error::format("expected a boolean"))
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::String(self.clone())
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::String(self.to_string())
    }
}

impl FromJson for String {
    fn from_json(json: &Json) -> Result<Self, Error> {
        json.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::format("expected a string"))
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(json: &Json) -> Result<Self, Error> {
        json.as_array()
            .ok_or_else(|| Error::format("expected an array"))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(json: &Json) -> Result<Self, Error> {
        match json {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::String(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::String(s)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Self {
        Json::Number(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Self {
        Json::Number(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Self {
        Json::Number(n as f64)
    }
}

impl From<i64> for Json {
    fn from(n: i64) -> Self {
        Json::Number(n as f64)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Self {
        Json::Bool(b)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(items: Vec<T>) -> Self {
        Json::Array(items.into_iter().map(Into::into).collect())
    }
}

/// Builds an object field list tersely: `obj([("a", 1u64.into()), ...])`.
#[must_use]
pub fn obj<const N: usize>(fields: [(&str, Json); N]) -> Json {
    Json::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(text: &str) -> String {
        Json::parse(text).unwrap().to_string()
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("-12.5e2").unwrap(), Json::Number(-1250.0));
        assert_eq!(
            Json::parse("\"hi\"").unwrap(),
            Json::String("hi".to_string())
        );
    }

    #[test]
    fn object_order_is_preserved() {
        let text = r#"{"z":1,"a":2,"m":3}"#;
        assert_eq!(roundtrip(text), text);
    }

    #[test]
    fn nested_roundtrip_is_stable() {
        let text = r#"{"a":[1,2,[3,{"b":null}]],"c":{"d":[],"e":{},"f":"g"}}"#;
        let once = roundtrip(text);
        assert_eq!(once, text);
        assert_eq!(roundtrip(&once), once);
    }

    #[test]
    fn empty_containers() {
        assert_eq!(roundtrip("[]"), "[]");
        assert_eq!(roundtrip("{}"), "{}");
        assert_eq!(roundtrip(r#"{"a":[]}"#), r#"{"a":[]}"#);
        assert_eq!(Json::Array(vec![]).to_string_pretty(), "[]\n");
    }

    #[test]
    fn integral_numbers_print_without_decimal_point() {
        assert_eq!(Json::Number(5.0).to_string(), "5");
        assert_eq!(Json::Number(-17.0).to_string(), "-17");
        assert_eq!(Json::Number(0.0).to_string(), "0");
        assert_eq!(Json::Number(-0.0).to_string(), "-0");
        assert_eq!(Json::Number(0.5).to_string(), "0.5");
    }

    #[test]
    fn float_precision_round_trips() {
        for v in [
            0.1,
            -0.018_768_454_976_861_294,
            1e-300,
            std::f64::consts::PI,
            f64::MAX,
            f64::MIN_POSITIVE,
        ] {
            let text = Json::Number(v).to_string();
            let back = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back, v, "value {v} reprinted as {text}");
        }
    }

    #[test]
    fn nan_and_infinity_serialize_as_null() {
        assert_eq!(Json::Number(f64::NAN).to_string(), "null");
        assert_eq!(Json::Number(f64::INFINITY).to_string(), "null");
        assert_eq!(Json::Number(f64::NEG_INFINITY).to_string(), "null");
        // And null does not parse back as a number: the error is loud.
        assert!(f64::from_json(&Json::parse("null").unwrap()).is_err());
    }

    #[test]
    fn string_escapes_roundtrip() {
        let original = "tab\t newline\n quote\" backslash\\ unicode \u{1F600} nul\u{0000}";
        let json = Json::String(original.to_string());
        let text = json.to_string();
        assert_eq!(Json::parse(&text).unwrap(), json);
        // Control characters must be escaped in the output.
        assert!(text.contains("\\u0000"));
        assert!(text.contains("\\t"));
    }

    #[test]
    fn surrogate_pair_escapes_decode() {
        let parsed = Json::parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(parsed.as_str(), Some("\u{1F600}"));
        assert!(Json::parse(r#""\ud83d""#).is_err(), "unpaired high");
        assert!(Json::parse(r#""\ude00""#).is_err(), "unpaired low");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "", "nul", "tru", "{", "[", "[1,", "{\"a\"}", "{\"a\":}", "[1 2]", "01", "1.", "1e",
            "+1", "\"", "\"\\x\"", "{a:1}", "[1]]", "1 2", "--1", ".5",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted malformed: {bad:?}");
        }
    }

    #[test]
    fn errors_carry_positions() {
        let err = Json::parse("{\"a\": 1,\n  \"b\": }").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.column > 1);
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn deep_nesting_is_rejected_not_overflowed() {
        let deep = "[".repeat(100_000);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn duplicate_keys_last_wins() {
        let v = Json::parse(r#"{"a":1,"a":2}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(2));
    }

    #[test]
    fn accessor_types_are_strict() {
        let v = Json::parse(r#"{"n": 1.5, "i": 3, "s": "x", "b": true}"#).unwrap();
        assert_eq!(v.get("n").and_then(Json::as_u64), None);
        assert_eq!(v.get("i").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("i").and_then(Json::as_i64), Some(3));
        assert_eq!(v.get("s").and_then(Json::as_f64), None);
        assert_eq!(v.get("b").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Null.get("a"), None);
    }

    #[test]
    fn vec_conversions_roundtrip() {
        let weights = vec![1.5f64, -2.25, 0.0];
        let json = weights.to_json();
        assert_eq!(json.to_string(), "[1.5,-2.25,0]");
        let back = Vec::<f64>::from_json(&json).unwrap();
        assert_eq!(back, weights);
        assert!(Vec::<f64>::from_json(&Json::parse("[1,\"x\"]").unwrap()).is_err());
    }

    #[test]
    fn pretty_printing_is_parseable_and_indented() {
        let v = obj([
            ("window", vec![Json::from(64u64), Json::from(128u64)].into()),
            ("nested", obj([("a", 1u64.into())])),
        ]);
        let pretty = v.to_string_pretty();
        assert!(pretty.contains("\n  \"window\""));
        assert_eq!(Json::parse(&pretty).unwrap(), v);
    }

    #[test]
    fn parse_bytes_rejects_invalid_utf8() {
        assert!(Json::parse_bytes(b"\"\xff\xfe\"").is_err());
        assert_eq!(Json::parse_bytes(b"[1,2]").unwrap().to_string(), "[1,2]");
    }

    #[test]
    fn whitespace_tolerant_parsing() {
        let text = " \t\r\n { \"a\" : [ 1 , 2 ] , \"b\" : null } \n";
        assert_eq!(roundtrip(text), r#"{"a":[1,2],"b":null}"#);
    }

    #[test]
    fn schema_header_accepts_matching_format_and_kind() {
        let v = obj([("format", 1u64.into()), ("kind", "run_report".into())]);
        assert!(check_schema_header(&v, "run_report", "report", 1).is_ok());
    }

    #[test]
    fn schema_header_rejections_carry_typed_messages() {
        let missing = obj([("kind", "x".into())]);
        let err = check_schema_header(&missing, "x", "report", 1).unwrap_err();
        assert!(err
            .to_string()
            .contains("missing required field \"format\""));

        let non_int = obj([("format", "1".into()), ("kind", "x".into())]);
        let err = check_schema_header(&non_int, "x", "report", 1).unwrap_err();
        assert!(err
            .to_string()
            .contains("field \"format\" must be a non-negative integer"));

        let future = obj([("format", 99u64.into()), ("kind", "x".into())]);
        let err = check_schema_header(&future, "x", "report", 1).unwrap_err();
        assert_eq!(
            err.to_string(),
            "format error: unsupported report format 99 (this build reads format 1)"
        );

        let wrong_kind = obj([("format", 1u64.into()), ("kind", "other".into())]);
        let err = check_schema_header(&wrong_kind, "x", "report", 1).unwrap_err();
        assert!(err
            .to_string()
            .contains("expected kind \"x\", found \"other\""));
    }
}
