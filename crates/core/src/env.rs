//! Typed, warn-once environment-variable parsing.
//!
//! The runtime exposes a handful of operational knobs through environment
//! variables (`RTPED_THREADS`, `RTPED_DEADLINE_MS`, `RTPED_ECC`, ...). A
//! mistyped value must never be *silently* ignored — a deployment that
//! sets `RTPED_DEADLINE_MS=15ms` and quietly runs with the default budget
//! is exactly the misconfiguration a safety argument has to exclude. This
//! module gives every knob the same contract:
//!
//! 1. [`typed`] parses the variable into a [`EnvValue`]: unset, valid, or
//!    invalid **with the raw text preserved**;
//! 2. the call site decides the fallback and calls [`warn_once`] on the
//!    invalid arm, which prints one stderr line naming the variable, the
//!    rejected value, and the fallback in force — once per variable per
//!    process, so a per-frame lookup cannot flood the log.
//!
//! Parsing is strict `FromStr` over the trimmed text; validation beyond
//! syntax (positivity, ranges) stays at the call site, which routes
//! rejects through the same [`warn_once`] path.

use std::collections::BTreeSet;
use std::str::FromStr;
use std::sync::Mutex;

/// One environment variable, read and parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnvValue<T> {
    /// The variable is not set (or not valid Unicode).
    Unset,
    /// The variable parsed.
    Valid {
        /// The parsed value.
        value: T,
        /// The raw text it came from.
        raw: String,
    },
    /// The variable is set but does not parse as `T`.
    Invalid {
        /// The rejected raw text.
        raw: String,
    },
}

impl<T> EnvValue<T> {
    /// The parsed value, if any.
    pub fn value(self) -> Option<T> {
        match self {
            EnvValue::Valid { value, .. } => Some(value),
            EnvValue::Unset | EnvValue::Invalid { .. } => None,
        }
    }
}

/// Reads `name` verbatim, `None` when unset or not valid Unicode.
///
/// This is the sanctioned raw read — the only place outside [`typed`]
/// that touches `std::env::var` (`rtped-lint` enforces the boundary).
/// Use it for string-valued knobs with no parse step and for tests that
/// save/restore an ambient variable; everything with a syntax goes
/// through [`typed`] + [`warn_once`] so misconfigurations stay loud.
#[must_use]
pub fn raw(name: &str) -> Option<String> {
    std::env::var(name).ok()
}

/// Reads `name` and parses its trimmed text as `T`.
#[must_use]
pub fn typed<T: FromStr>(name: &str) -> EnvValue<T> {
    match std::env::var(name) {
        Err(_) => EnvValue::Unset,
        Ok(raw) => match raw.trim().parse::<T>() {
            Ok(value) => EnvValue::Valid { value, raw },
            Err(_) => EnvValue::Invalid { raw },
        },
    }
}

/// Variables already warned about in this process.
static WARNED: Mutex<BTreeSet<String>> = Mutex::new(BTreeSet::new());

/// Emits one stderr line rejecting `raw` for `name` and naming the
/// `fallback` in force. Subsequent calls for the same variable are
/// silent; returns whether this call printed.
pub fn warn_once(name: &str, raw: &str, fallback: &str) -> bool {
    let mut warned = WARNED
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if !warned.insert(name.to_string()) {
        return false;
    }
    eprintln!("warning: ignoring invalid {name}={raw:?}; falling back to {fallback}");
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unset_variable_reads_as_unset() {
        assert_eq!(
            typed::<u32>("RTPED_TEST_ENV_DEFINITELY_UNSET"),
            EnvValue::Unset
        );
    }

    #[test]
    fn valid_and_invalid_parses_are_distinguished() {
        // Exercise the parser via typed() on variables this test owns.
        std::env::set_var("RTPED_TEST_ENV_VALID", " 12 ");
        std::env::set_var("RTPED_TEST_ENV_INVALID", "12ms");
        assert_eq!(
            typed::<u32>("RTPED_TEST_ENV_VALID"),
            EnvValue::Valid {
                value: 12,
                raw: " 12 ".to_string()
            }
        );
        let invalid = typed::<u32>("RTPED_TEST_ENV_INVALID");
        assert_eq!(
            invalid,
            EnvValue::Invalid {
                raw: "12ms".to_string()
            }
        );
        assert_eq!(invalid.value(), None);
        std::env::remove_var("RTPED_TEST_ENV_VALID");
        std::env::remove_var("RTPED_TEST_ENV_INVALID");
    }

    #[test]
    fn warn_once_is_once_per_variable() {
        assert!(warn_once("RTPED_TEST_WARN_A", "bogus", "default 3"));
        assert!(!warn_once("RTPED_TEST_WARN_A", "bogus", "default 3"));
        assert!(warn_once("RTPED_TEST_WARN_B", "bogus", "default 3"));
    }
}
