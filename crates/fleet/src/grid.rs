//! The campaign grid: every cell is a fully specified runtime instance.
//!
//! A [`RunSpec`] pins everything that can influence a run — fault plan,
//! scene scenario, engine kind (family × datapath × ECC), deadline
//! budget, frame count, and seed — so executing it is a pure function.
//! Engines come from [`rtped_serve::build_engine`], the same constructor
//! the daemon uses for tenants; a campaign instance and a served tenant
//! with the same config are therefore the *same* engine, and conclusions
//! transfer.

use rtped_core::rng::SeedRng;
use rtped_core::{par, Error};
use rtped_detect::Datapath;
use rtped_hw::EccMode;
use rtped_image::GrayImage;
use rtped_runtime::{FaultPlan, RunReport};
use rtped_serve::{build_engine, FrameSpec, HW_TENANT_PREFIX};

/// Which fault plan a cell injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Clean frames, on time.
    Clean,
    /// The controller-acceptance stress mix: corruption, dropouts,
    /// truncations, delays, periodic worker kills.
    Stress,
    /// Radiation-style soft errors at 2% per frame, exercising the
    /// integrity layer's ECC/lockstep machinery.
    SoftErrors,
    /// A heavy soft-error storm (50% of frames struck, double-bit upsets
    /// included), exercising shard quarantine and bit-identical failover
    /// in the sharded engine kinds.
    ShardStorm,
}

impl FaultKind {
    /// Stable label for aggregation keys.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::Clean => "clean",
            FaultKind::Stress => "stress",
            FaultKind::SoftErrors => "soft_errors",
            FaultKind::ShardStorm => "shard_storm",
        }
    }

    /// The seeded plan this kind injects.
    #[must_use]
    pub fn plan(self, seed: u64) -> FaultPlan {
        match self {
            FaultKind::Clean => FaultPlan {
                seed,
                ..FaultPlan::none()
            },
            FaultKind::Stress => FaultPlan::stress(seed),
            FaultKind::SoftErrors => FaultPlan::soft_errors(seed, 0.02),
            FaultKind::ShardStorm => FaultPlan::soft_errors(seed, 0.5),
        }
    }
}

/// A scene scenario: frame geometry plus a pattern-seed stream, standing
/// in for qualitatively different dashcam footage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scenario {
    /// Stable label for aggregation keys.
    pub name: &'static str,
    /// Frame width in pixels.
    pub width: u32,
    /// Frame height in pixels.
    pub height: u32,
    /// Base seed the scenario's frame patterns derive from.
    pub pattern_seed: u64,
}

/// The three fleet scenarios. Geometries stay at or above the serve
/// daemon's 96×160 reference frame so the two-scale detector always has
/// room for both pyramid levels.
#[must_use]
pub fn scenarios() -> [Scenario; 3] {
    [
        Scenario {
            name: "urban",
            width: 96,
            height: 160,
            pattern_seed: 0x0B51,
        },
        Scenario {
            name: "highway",
            width: 128,
            height: 160,
            pattern_seed: 0x0B52,
        },
        Scenario {
            name: "night",
            width: 96,
            height: 192,
            pattern_seed: 0x0B53,
        },
    ]
}

/// Engine family × datapath × ECC — the axes that change *what serves
/// the frame* rather than what is thrown at it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// Software runtime, f32 golden-reference scoring.
    SoftwareF32,
    /// Software runtime, i16 fixed-point scoring.
    SoftwareI16,
    /// Integrity-instrumented accelerator model with SECDED ECC.
    IntegritySecded,
    /// Integrity-instrumented accelerator model with ECC off — the
    /// pre-integrity baseline, where soft errors land unprotected.
    IntegrityEccOff,
    /// Two-shard fleet with SECDED ECC, quarantine, and failover.
    IntegrityShard2,
    /// Four-shard fleet with SECDED ECC, quarantine, and failover.
    IntegrityShard4,
}

impl EngineKind {
    /// All engine kinds, in grid order.
    #[must_use]
    pub fn all() -> [EngineKind; 6] {
        [
            EngineKind::SoftwareF32,
            EngineKind::SoftwareI16,
            EngineKind::IntegritySecded,
            EngineKind::IntegrityEccOff,
            EngineKind::IntegrityShard2,
            EngineKind::IntegrityShard4,
        ]
    }

    /// Stable label for aggregation keys.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            EngineKind::SoftwareF32 => "software_f32",
            EngineKind::SoftwareI16 => "software_i16",
            EngineKind::IntegritySecded => "integrity_secded",
            EngineKind::IntegrityEccOff => "integrity_ecc_off",
            EngineKind::IntegrityShard2 => "integrity_shard2",
            EngineKind::IntegrityShard4 => "integrity_shard4",
        }
    }

    /// Tenant name selecting this family through
    /// [`rtped_serve::build_engine`].
    #[must_use]
    pub fn tenant_name(self) -> String {
        match self {
            EngineKind::SoftwareF32 | EngineKind::SoftwareI16 => String::from("cam-fleet"),
            EngineKind::IntegritySecded | EngineKind::IntegrityEccOff => {
                format!("{HW_TENANT_PREFIX}cam-fleet")
            }
            EngineKind::IntegrityShard2 => String::from("hw2:cam-fleet"),
            EngineKind::IntegrityShard4 => String::from("hw4:cam-fleet"),
        }
    }

    /// The scoring datapath this kind runs.
    #[must_use]
    pub fn datapath(self) -> Datapath {
        match self {
            EngineKind::SoftwareI16 => Datapath::I16,
            _ => Datapath::F32,
        }
    }

    /// The ECC mode this kind runs.
    #[must_use]
    pub fn ecc(self) -> EccMode {
        match self {
            EngineKind::IntegrityEccOff => EccMode::Off,
            _ => EccMode::Secded,
        }
    }
}

/// One fully specified campaign instance.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSpec {
    /// Fault plan kind.
    pub fault: FaultKind,
    /// Scene scenario.
    pub scenario: Scenario,
    /// Engine kind.
    pub engine: EngineKind,
    /// Per-frame deadline in milliseconds.
    pub budget_ms: f64,
    /// Frames this instance serves.
    pub frames: usize,
    /// Root seed: drives both the fault plan and the frame patterns.
    pub seed: u64,
}

impl RunSpec {
    /// Stable grid-cell label (`fault/scenario/engine/budget`), shared by
    /// every seed in the cell.
    #[must_use]
    pub fn cell_label(&self) -> String {
        format!(
            "{}/{}/{}/{}ms",
            self.fault.label(),
            self.scenario.name,
            self.engine.label(),
            self.budget_ms
        )
    }

    /// Renders this instance's frame sequence: deterministic synthetic
    /// frames whose per-frame pattern seeds come from a split of the
    /// run seed, so no two runs (or frames) share a pattern stream.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] if the scenario geometry is
    /// degenerate (it never is for the built-in scenarios).
    pub fn render_frames(&self) -> Result<Vec<GrayImage>, Error> {
        let rng = SeedRng::seed_from_u64(self.seed).split(self.scenario.pattern_seed);
        (0..self.frames)
            .map(|index| {
                use rtped_core::Rng;
                let mut stream = rng.split(index as u64);
                FrameSpec::Synthetic {
                    width: self.scenario.width,
                    height: self.scenario.height,
                    seed: stream.next_u64(),
                }
                .render()
            })
            .collect()
    }

    /// Executes the instance: builds the engine through the serve-layer
    /// constructor, serves every frame under the seeded plan, and
    /// returns the canonical run report.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] for an invalid budget or
    /// geometry.
    pub fn run(&self) -> Result<RunReport, Error> {
        let config = rtped_runtime::RuntimeConfig::builder()
            .deadline_ms(self.budget_ms)
            .datapath(self.engine.datapath())
            .ecc(self.engine.ecc())
            .build()?;
        let frames = self.render_frames()?;
        let mut engine = build_engine(&self.engine.tenant_name(), &config);
        Ok(engine.run(&frames, &self.fault.plan(self.seed)))
    }
}

/// How large a campaign to lay out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignScale {
    /// CI smoke: a handful of cells, seconds of wall clock.
    Quick,
    /// The acceptance campaign: ≥ 1000 instances over the full grid.
    Full,
}

/// Lays out the campaign grid for `scale`, in deterministic order.
///
/// Full scale: 4 faults × 3 scenarios × 6 engines × 2 budgets × 14 seeds
/// = 2016 instances of 12 frames each. Quick scale: 4 faults × 1
/// scenario × 6 engines × 1 budget × 2 seeds = 48 instances of 6 frames.
#[must_use]
pub fn campaign(scale: CampaignScale) -> Vec<RunSpec> {
    let (scenario_count, budgets, seeds, frames): (usize, &[f64], u64, usize) = match scale {
        CampaignScale::Quick => (1, &[15.0], 2, 6),
        CampaignScale::Full => (3, &[15.0, 8.0], 14, 12),
    };
    let mut specs = Vec::new();
    for fault in [
        FaultKind::Clean,
        FaultKind::Stress,
        FaultKind::SoftErrors,
        FaultKind::ShardStorm,
    ] {
        for scenario in scenarios().into_iter().take(scenario_count) {
            for engine in EngineKind::all() {
                for &budget_ms in budgets {
                    for seed in 0..seeds {
                        specs.push(RunSpec {
                            fault,
                            scenario,
                            engine,
                            budget_ms,
                            frames,
                            // Decorrelate cells: every cell gets its own
                            // seed block, every instance its own seed.
                            seed: seed
                                + 100 * scenario.pattern_seed
                                + 10_000 * (engine.label().len() as u64)
                                + 1_000_000 * (fault.label().len() as u64),
                        });
                    }
                }
            }
        }
    }
    specs
}

/// Executes `specs` across `threads` workers (ambient
/// [`par::threads`] resolution when `None`), preserving spec order in
/// the output — which is what makes downstream aggregation independent
/// of the thread count.
///
/// # Errors
///
/// Returns [`Error::Format`] if a worker panicked (wrapping the
/// [`par::MapPanic`] report) and any spec-execution error verbatim.
pub fn execute(specs: &[RunSpec], threads: Option<usize>) -> Result<Vec<RunReport>, Error> {
    let threads = threads.unwrap_or_else(par::threads);
    let results = par::try_map_with_threads(specs, threads, RunSpec::run)
        .map_err(|panic| Error::format(format!("campaign worker panicked: {panic}")))?;
    results.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_layout_is_deterministic_and_full_scale_clears_1000() {
        let quick = campaign(CampaignScale::Quick);
        assert_eq!(quick.len(), 48);
        assert_eq!(quick, campaign(CampaignScale::Quick));
        let full = campaign(CampaignScale::Full);
        assert_eq!(full.len(), 2016);
        assert!(full.len() >= 1000);
        // Every instance seed is unique: no two runs share fault and
        // frame streams.
        let mut seeds: Vec<(String, u64)> = full.iter().map(|s| (s.cell_label(), s.seed)).collect();
        seeds.sort();
        let before = seeds.len();
        seeds.dedup();
        assert_eq!(seeds.len(), before);
    }

    #[test]
    fn run_spec_execution_is_reproducible() {
        let spec = RunSpec {
            fault: FaultKind::Stress,
            scenario: scenarios()[0],
            engine: EngineKind::SoftwareI16,
            budget_ms: 15.0,
            frames: 4,
            seed: 3,
        };
        use rtped_core::ToJson;
        let a = spec.run().unwrap().to_json().to_string();
        let b = spec.run().unwrap().to_json().to_string();
        assert_eq!(a, b);
    }

    #[test]
    fn shard_kinds_reach_the_sharded_engine_and_survive_storms() {
        use rtped_core::ToJson;
        let spec = RunSpec {
            fault: FaultKind::ShardStorm,
            scenario: scenarios()[0],
            engine: EngineKind::IntegrityShard4,
            budget_ms: 15.0,
            frames: 6,
            seed: 11,
        };
        let report = spec.run().unwrap();
        let integrity = report.integrity.as_ref().expect("integrity report");
        // The storm's double-bit upsets must surface as quarantines (and
        // failovers), never as silent escapes.
        assert!(integrity.shard_quarantines > 0, "storm never quarantined");
        assert!(integrity.shard_failovers >= integrity.shard_quarantines);
        let payload = report.to_json().to_string();
        assert!(payload.contains("\"shards\""), "report lacks shard block");
    }

    #[test]
    fn engine_kinds_map_to_families() {
        assert!(EngineKind::IntegritySecded
            .tenant_name()
            .starts_with(HW_TENANT_PREFIX));
        assert!(!EngineKind::SoftwareF32
            .tenant_name()
            .starts_with(HW_TENANT_PREFIX));
        assert_eq!(EngineKind::SoftwareI16.datapath(), Datapath::I16);
        assert_eq!(EngineKind::IntegrityEccOff.ecc(), EccMode::Off);
    }
}
