//! Seeded wire-level chaos against a live `rtped-serve` daemon.
//!
//! The campaign phase proves the *engines* hold up under modeled faults;
//! this phase proves the *daemon* holds up under real ones. A seeded
//! injector drives hundreds of connections, most of them hostile —
//! garbage bytes, oversized and truncated frames, bit-flipped payloads,
//! slow-trickled writes, clients that vanish mid-stream — through a
//! retrying client built on [`rtped_core::retry`]. The invariants:
//!
//! - Every failure the client observes is **typed** (a protocol
//!   [`Response`]) or a clean close — never a hang (client sockets carry
//!   a read timeout that converts hangs into counted failures) and never
//!   a daemon panic (the daemon thread is joined and checked).
//! - After a clean drain, a **restarted** daemon replays the journal and
//!   lands in state bit-identical to an offline replica: every response
//!   recorded live, every journal-recovered pending response, and a
//!   fresh post-recovery probe frame must match the replica byte for
//!   byte. Divergences are counted and must be zero.
//!
//! The crash window (jobs journaled but never served, the exact state a
//! daemon killed mid-request leaves behind) is injected by appending job
//! lines to the journal after the drain, so recovery of in-flight work
//! is exercised deterministically on every run.
//!
//! Everything serialized into [`ChaosReport`] is either configuration,
//! derived from the seed alone, or an invariant counter that must be
//! zero — so the chaos block of `BENCH_fleet.json` is byte-identical
//! across runs even though socket interleavings are not.

use std::collections::BTreeMap;
use std::io::Write as _;
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Duration;

use rtped_core::json::{obj, Json};
use rtped_core::retry::RetryPolicy;
use rtped_core::rng::SeedRng;
use rtped_core::{par, wire, Error, FromJson, Rng, ToJson};
use rtped_runtime::RuntimeConfig;
use rtped_serve::{
    load_journal, replay_plans, FrameSpec, Journal, JournalEntry, JournaledJob, Request, Response,
    Server, ServerConfig, Tenant,
};

/// Client-side read timeout: converts a hung daemon into a counted,
/// typed failure instead of a stuck process. Liveness plumbing only.
const CLIENT_TIMEOUT: Duration = Duration::from_secs(10);

/// The wire-level fault injected into one connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireFault {
    /// A well-formed request through the retrying client (the control).
    Clean,
    /// A frame whose payload is not JSON at all.
    Garbage,
    /// A length header claiming more than the daemon's frame cap.
    Oversized,
    /// A frame cut short: header promises more bytes than ever arrive.
    Truncated,
    /// A valid request with one seeded bit flipped.
    BitFlip,
    /// A valid request whose client vanishes before reading the reply.
    ClientCrash,
    /// A valid request trickled out in delayed chunks.
    SlowWrites,
    /// A connection that opens and immediately dies.
    EarlyClose,
}

impl WireFault {
    /// All faults, in draw order.
    #[must_use]
    pub fn all() -> [WireFault; 8] {
        [
            WireFault::Clean,
            WireFault::Garbage,
            WireFault::Oversized,
            WireFault::Truncated,
            WireFault::BitFlip,
            WireFault::ClientCrash,
            WireFault::SlowWrites,
            WireFault::EarlyClose,
        ]
    }

    /// Stable label for the fault-mix table.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            WireFault::Clean => "clean",
            WireFault::Garbage => "garbage",
            WireFault::Oversized => "oversized",
            WireFault::Truncated => "truncated",
            WireFault::BitFlip => "bit_flip",
            WireFault::ClientCrash => "client_crash",
            WireFault::SlowWrites => "slow_writes",
            WireFault::EarlyClose => "early_close",
        }
    }
}

/// The fault drawn for connection `index` under `seed` — a pure
/// function, so the fault mix is known before a single socket opens.
#[must_use]
pub fn fault_for(seed: u64, index: usize) -> WireFault {
    let mut rng = SeedRng::seed_from_u64(seed).split(index as u64);
    WireFault::all()[rng.gen_range(0..WireFault::all().len())]
}

/// Chaos-phase configuration.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Connections to drive (faulted and clean together).
    pub connections: usize,
    /// Journaled-but-unserved jobs injected after the drain — the
    /// simulated crash window recovery must replay.
    pub crash_window_jobs: usize,
    /// Root seed for fault selection and payload mutation.
    pub seed: u64,
    /// Concurrent client workers.
    pub client_workers: usize,
    /// Daemon worker threads.
    pub server_workers: usize,
    /// Journal path (removed and recreated by the run).
    pub journal: PathBuf,
}

/// The deterministic record of one chaos phase. Only seed-derived counts
/// and must-be-zero invariants are serialized; racy observations (shed
/// counts, served totals) go to stdout, not the committed artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosReport {
    /// Connections driven.
    pub connections: usize,
    /// Connections that carried an injected fault (everything but
    /// `clean`).
    pub faulted_connections: usize,
    /// Fault mix by label, derived from the seed alone.
    pub fault_mix: BTreeMap<String, usize>,
    /// Crash-window jobs injected and recovered.
    pub crash_window_jobs: usize,
    /// Daemon panics observed (must be 0).
    pub daemon_panics: u64,
    /// Client reads that timed out (must be 0).
    pub client_hangs: u64,
    /// Responses that were not typed protocol messages where one was
    /// owed (must be 0).
    pub protocol_violations: u64,
    /// Clean requests that exhausted their retry budget (must be 0).
    pub retry_exhausted: u64,
    /// Byte-level mismatches between live, recovered, and replica
    /// responses (must be 0).
    pub divergences: u64,
    /// Whether the restarted daemon's state matched the offline replica
    /// bit for bit (must be true).
    pub post_recovery_identical: bool,
}

impl ChaosReport {
    /// Whether every invariant held.
    #[must_use]
    pub fn clean_bill(&self) -> bool {
        self.daemon_panics == 0
            && self.client_hangs == 0
            && self.protocol_violations == 0
            && self.retry_exhausted == 0
            && self.divergences == 0
            && self.post_recovery_identical
    }
}

impl ToJson for ChaosReport {
    fn to_json(&self) -> Json {
        let mix = Json::Object(
            self.fault_mix
                .iter()
                .map(|(k, v)| (k.clone(), Json::Number(*v as f64)))
                .collect(),
        );
        obj([
            ("connections", self.connections.into()),
            ("faulted_connections", self.faulted_connections.into()),
            ("fault_mix", mix),
            ("crash_window_jobs", self.crash_window_jobs.into()),
            ("daemon_panics", self.daemon_panics.into()),
            ("client_hangs", self.client_hangs.into()),
            ("protocol_violations", self.protocol_violations.into()),
            ("retry_exhausted", self.retry_exhausted.into()),
            ("divergences", self.divergences.into()),
            (
                "post_recovery_identical",
                Json::Bool(self.post_recovery_identical),
            ),
        ])
    }
}

/// Worker `w`'s tenant: every fourth worker exercises the integrity
/// engine, like the serve benchmark's fleet mix, and every eighth (among
/// those) the four-shard fleet variant — so chaos traffic exercises
/// shard quarantine and failover through the wire, not just the campaign
/// grid.
fn worker_tenant(worker: usize) -> String {
    if worker.is_multiple_of(8) {
        format!("hw4:cam-w{worker}")
    } else if worker.is_multiple_of(4) {
        format!("hw:cam-w{worker}")
    } else {
        format!("cam-w{worker}")
    }
}

fn detect_request(tenant: &str, job: &str, seed: u64) -> Request {
    Request::Detect {
        tenant: tenant.to_string(),
        job: job.to_string(),
        fault_seed: None,
        frame: FrameSpec::Synthetic {
            width: 96,
            height: 160,
            seed,
        },
    }
}

fn open(addr: SocketAddr) -> Result<TcpStream, Error> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(CLIENT_TIMEOUT))?;
    Ok(stream)
}

fn read_response(stream: &TcpStream) -> Result<Response, Error> {
    match wire::read_frame(stream, wire::MAX_FRAME_BYTES).map_err(Error::from)? {
        Some(bytes) => Response::from_json(&Json::parse_bytes(&bytes)?),
        None => Err(Error::format("connection closed before a response")),
    }
}

fn is_timeout(err: &Error) -> bool {
    matches!(err, Error::Io(io) if matches!(
        io.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    ))
}

/// Shared mutable state the driver workers report into.
struct Observed {
    /// Live FrameResult bytes by `(tenant, job)` — the pre-restart
    /// reference the replica must reproduce.
    recorded: Mutex<BTreeMap<(String, String), String>>,
    client_hangs: AtomicU64,
    protocol_violations: AtomicU64,
    retry_exhausted: AtomicU64,
    worker_errors: Mutex<Vec<String>>,
}

impl Observed {
    fn record(&self, response: &Response) {
        if let Response::FrameResult { tenant, job, .. } = response {
            self.recorded
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .insert(
                    (tenant.clone(), job.clone()),
                    response.to_json().to_string(),
                );
        }
    }

    fn note_failure(&self, err: &Error) {
        if is_timeout(err) {
            self.client_hangs.fetch_add(1, Ordering::Relaxed);
        } else {
            self.protocol_violations.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Drives one connection with its drawn fault. Errors bubble to the
/// worker-error list; invariant breaches land in `observed`'s counters.
fn drive_connection(
    addr: SocketAddr,
    worker: usize,
    index: usize,
    seed: u64,
    observed: &Observed,
) -> Result<(), Error> {
    let tenant = worker_tenant(worker);
    let job = format!("chaos-{index:05}");
    let mut rng = SeedRng::seed_from_u64(seed).split(index as u64);
    let fault = WireFault::all()[rng.gen_range(0..WireFault::all().len())];
    match fault {
        WireFault::Clean => {
            // The retrying client: transient transport errors retry with
            // seeded jitter accounted by a no-op sleeper (deterministic
            // campaigns never sleep wall-clock on backoff).
            let policy = RetryPolicy::immediate(3).with_jitter(seed ^ index as u64);
            let request = detect_request(&tenant, &job, index as u64);
            let outcome = policy.run_with_sleeper(
                |_| {},
                |_| {
                    let stream = open(addr)?;
                    wire::write_frame(&stream, request.to_json().to_string().as_bytes())?;
                    read_response(&stream)
                },
            );
            match outcome {
                // Shed is a valid typed refusal under load, not a fault.
                Ok(Response::FrameResult { .. }) | Ok(Response::Shed { .. }) => {
                    if let Ok(response) = &outcome {
                        observed.record(response);
                    }
                }
                Ok(_) => {
                    observed.protocol_violations.fetch_add(1, Ordering::Relaxed);
                }
                Err(err) => {
                    observed.retry_exhausted.fetch_add(1, Ordering::Relaxed);
                    observed.note_failure(&err);
                }
            }
        }
        WireFault::Garbage => {
            let stream = open(addr)?;
            wire::write_frame(&stream, b"][ not json at all }{")?;
            match read_response(&stream) {
                Ok(Response::Error { .. }) => {}
                Ok(_) => {
                    observed.protocol_violations.fetch_add(1, Ordering::Relaxed);
                }
                Err(err) => observed.note_failure(&err),
            }
        }
        WireFault::Oversized => {
            let mut stream = open(addr)?;
            let claim = (wire::MAX_FRAME_BYTES as u32).saturating_add(1);
            stream.write_all(&claim.to_be_bytes())?;
            stream.write_all(b"oversized")?;
            stream.flush()?;
            match read_response(&stream) {
                Ok(Response::Error { .. }) => {}
                Ok(_) => {
                    observed.protocol_violations.fetch_add(1, Ordering::Relaxed);
                }
                Err(err) => observed.note_failure(&err),
            }
        }
        WireFault::Truncated => {
            // Promise 96 bytes, deliver 12, vanish. No response is owed;
            // the daemon's survival is proven by the connections after
            // this one and the final clean drain.
            let mut stream = open(addr)?;
            stream.write_all(&96u32.to_be_bytes())?;
            stream.write_all(b"half a frame")?;
            stream.flush()?;
        }
        WireFault::BitFlip => {
            let stream = open(addr)?;
            let mut payload = detect_request(&tenant, &job, index as u64)
                .to_json()
                .to_string()
                .into_bytes();
            let byte = rng.gen_range(0..payload.len());
            let bit = rng.gen_range(0..8u32);
            payload[byte] ^= 1 << bit;
            wire::write_frame(&stream, &payload)?;
            // Any typed response is acceptable: the flip may yield a
            // parse error, a schema error, or (if it hit a benign byte)
            // a served frame — but never silence or a panic.
            match read_response(&stream) {
                Ok(response) => observed.record(&response),
                Err(err) => observed.note_failure(&err),
            }
        }
        WireFault::ClientCrash => {
            // Valid work, then the client dies before reading the reply
            // — the job may be admitted and journaled; recovery later
            // proves nothing was lost or diverged.
            let stream = open(addr)?;
            let request = detect_request(&tenant, &job, index as u64);
            wire::write_frame(&stream, request.to_json().to_string().as_bytes())?;
            drop(stream);
        }
        WireFault::SlowWrites => {
            let mut stream = open(addr)?;
            let payload = detect_request(&tenant, &job, index as u64)
                .to_json()
                .to_string()
                .into_bytes();
            stream.write_all(&(payload.len() as u32).to_be_bytes())?;
            for chunk in payload.chunks(payload.len().div_ceil(3).max(1)) {
                stream.write_all(chunk)?;
                stream.flush()?;
                std::thread::sleep(Duration::from_millis(2));
            }
            match read_response(&stream) {
                Ok(response @ (Response::FrameResult { .. } | Response::Shed { .. })) => {
                    observed.record(&response);
                }
                Ok(_) => {
                    observed.protocol_violations.fetch_add(1, Ordering::Relaxed);
                }
                Err(err) => observed.note_failure(&err),
            }
        }
        WireFault::EarlyClose => {
            let stream = open(addr)?;
            drop(stream);
        }
    }
    Ok(())
}

/// The crash-window jobs injected after the drain: journaled, never
/// served — exactly what a daemon killed mid-request leaves behind. Odd
/// entries land on the four-shard tenant with a fault seed, so recovery
/// replays quarantine-and-failover frames and the replica check proves
/// the failed-over output is bit-identical.
fn crash_window_entries(count: usize) -> Vec<JournaledJob> {
    (0..count)
        .map(|k| JournaledJob {
            tenant: if k % 2 == 0 {
                String::from("cam-w1")
            } else {
                String::from("hw4:cam-w0")
            },
            job: format!("crash-{k:03}"),
            fault_seed: Some(k as u64),
            frame: FrameSpec::Synthetic {
                width: 96,
                height: 160,
                seed: 7000 + k as u64,
            },
        })
        .collect()
}

/// The post-recovery probe served identically to the live daemon and
/// the replica — byte equality here is byte equality of engine state.
fn probe_job(tenant: &str) -> JournaledJob {
    JournaledJob {
        tenant: tenant.to_string(),
        job: String::from("probe-0"),
        fault_seed: Some(999),
        frame: FrameSpec::Synthetic {
            width: 96,
            height: 160,
            seed: 999,
        },
    }
}

/// Runs the full chaos phase: live injection, clean drain, crash-window
/// injection, journal recovery, and replica verification.
///
/// # Errors
///
/// Returns [`Error::Format`] when any invariant breaks (daemon panic,
/// client hang, untyped failure, recovery divergence) and I/O errors
/// from the harness itself verbatim.
pub fn run_chaos(config: &ChaosConfig) -> Result<ChaosReport, Error> {
    let _ = std::fs::remove_file(&config.journal);
    let runtime = RuntimeConfig::default();
    let observed = Observed {
        recorded: Mutex::new(BTreeMap::new()),
        client_hangs: AtomicU64::new(0),
        protocol_violations: AtomicU64::new(0),
        retry_exhausted: AtomicU64::new(0),
        worker_errors: Mutex::new(Vec::new()),
    };

    // Phase A: the live daemon under fire.
    let server = Server::bind(ServerConfig {
        workers: config.server_workers,
        journal: Some(config.journal.clone()),
        runtime: runtime.clone(),
        ..ServerConfig::default()
    })?;
    let addr = server.local_addr();
    let mut daemon_panics = 0u64;
    let served = std::thread::scope(|scope| {
        let daemon = scope.spawn(|| server.run());
        par::run_workers(config.client_workers, |worker| {
            let mut index = worker;
            while index < config.connections {
                if let Err(err) = drive_connection(addr, worker, index, config.seed, &observed) {
                    observed
                        .worker_errors
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .push(format!("connection {index}: {err}"));
                }
                index += config.client_workers.max(1);
            }
        });
        // Clean drain through the retrying client.
        let shutdown = RetryPolicy::immediate(3)
            .with_jitter(config.seed)
            .run_with_sleeper(
                |_| {},
                |_| {
                    let stream = open(addr)?;
                    wire::write_frame(&stream, Request::Shutdown.to_json().to_string().as_bytes())?;
                    read_response(&stream)
                },
            );
        if !matches!(shutdown, Ok(Response::ShutdownAck { .. })) {
            observed
                .worker_errors
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(String::from("clean shutdown did not ack"));
        }
        match daemon.join() {
            Ok(served) => served,
            Err(_) => {
                daemon_panics += 1;
                0
            }
        }
    });

    let errors = observed
        .worker_errors
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone();
    if let Some(first) = errors.first() {
        return Err(Error::format(format!(
            "chaos harness failed ({} errors; first: {first})",
            errors.len()
        )));
    }
    if daemon_panics > 0 {
        return Err(Error::format("daemon panicked during chaos"));
    }

    // Phase B: inject the crash window — journaled, never served.
    let crash_jobs = crash_window_entries(config.crash_window_jobs);
    {
        let mut journal = Journal::open(&config.journal)?;
        for job in &crash_jobs {
            journal.append(&JournalEntry::Job(job.clone()))?;
        }
    }

    // Phase C: offline replica — replay the journal through fresh
    // tenants, recording every response and final state.
    let entries = load_journal(&config.journal)?;
    let plans = replay_plans(&entries);
    let mut replica: BTreeMap<String, Tenant> = BTreeMap::new();
    let mut replica_responses: BTreeMap<(String, String), String> = BTreeMap::new();
    let mut replica_pending: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for (name, plan) in &plans {
        let mut tenant = Tenant::new(name, &runtime);
        for job in &plan.jobs {
            let response = tenant.serve_job(job);
            replica_responses.insert(
                (name.clone(), job.job.clone()),
                response.to_json().to_string(),
            );
        }
        replica_pending.insert(name.clone(), plan.pending.clone());
        replica.insert(name.clone(), tenant);
    }

    let mut divergences = 0u64;
    // Check 1: every response recorded live matches the replica.
    let recorded = observed
        .recorded
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone();
    for (key, live_bytes) in &recorded {
        match replica_responses.get(key) {
            Some(replica_bytes) if replica_bytes == live_bytes => {}
            _ => divergences += 1,
        }
    }

    // Phase D: restart the daemon over the same journal; its recovered
    // state must match the replica bit for bit.
    let server2 = Server::bind(ServerConfig {
        workers: config.server_workers,
        journal: Some(config.journal.clone()),
        runtime: runtime.clone(),
        ..ServerConfig::default()
    })?;
    let addr2 = server2.local_addr();
    // Check 2: per-tenant status (engine family, health state, frames
    // served, pending recoveries) against the replica.
    for status in server2.tenants().statuses() {
        let matches = replica.get(&status.name).is_some_and(|tenant| {
            tenant.engine.kind() == status.engine
                && tenant.engine.state().label() == status.state
                && tenant.engine.frames_served() as u64 == status.served
        });
        let pending_matches = replica_pending
            .get(&status.name)
            .is_some_and(|pending| pending.len() as u64 == status.recovered);
        if !matches || !pending_matches {
            divergences += 1;
        }
    }
    let mut recovered_crash_jobs = 0usize;
    std::thread::scope(|scope| -> Result<(), Error> {
        let daemon = scope.spawn(|| server2.run());
        let result = (|| -> Result<(), Error> {
            // Check 3: journal-recovered pending responses match the
            // replica's replayed bytes.
            for (name, pending) in &replica_pending {
                if pending.is_empty() {
                    continue;
                }
                let stream = open(addr2)?;
                let request = Request::Recover {
                    tenant: name.clone(),
                };
                wire::write_frame(&stream, request.to_json().to_string().as_bytes())?;
                match read_response(&stream)? {
                    Response::Recovered { jobs, .. } => {
                        let mut ids: Vec<&str> = jobs.iter().map(|j| j.job.as_str()).collect();
                        ids.sort_unstable();
                        let mut want: Vec<&str> = pending.iter().map(String::as_str).collect();
                        want.sort_unstable();
                        if ids != want {
                            divergences += 1;
                        }
                        for job in &jobs {
                            recovered_crash_jobs += usize::from(job.job.starts_with("crash-"));
                            let key = (name.clone(), job.job.clone());
                            match replica_responses.get(&key) {
                                Some(bytes) if *bytes == job.response.to_string() => {}
                                _ => divergences += 1,
                            }
                        }
                    }
                    _ => divergences += 1,
                }
            }
            // Check 4: a fresh probe frame served by the recovered
            // daemon matches the same probe served by the replica —
            // byte-identical post-recovery engine state.
            for name in ["cam-w1", "hw4:cam-w0"] {
                let probe = probe_job(name);
                let want = replica
                    .get_mut(name)
                    .map(|tenant| tenant.serve_job(&probe).to_json().to_string());
                let stream = open(addr2)?;
                let request = Request::Detect {
                    tenant: probe.tenant.clone(),
                    job: probe.job.clone(),
                    fault_seed: probe.fault_seed,
                    frame: probe.frame.clone(),
                };
                wire::write_frame(&stream, request.to_json().to_string().as_bytes())?;
                let got = read_response(&stream)?.to_json().to_string();
                if want.as_deref() != Some(got.as_str()) {
                    divergences += 1;
                }
            }
            Ok(())
        })();
        // Always drain daemon 2, even when a check errored out.
        let shutdown = open(addr2).and_then(|stream| {
            wire::write_frame(&stream, Request::Shutdown.to_json().to_string().as_bytes())?;
            read_response(&stream)
        });
        if !matches!(shutdown, Ok(Response::ShutdownAck { .. })) {
            divergences += 1;
        }
        if daemon.join().is_err() {
            daemon_panics += 1;
        }
        result
    })?;
    let _ = std::fs::remove_file(&config.journal);

    if recovered_crash_jobs != config.crash_window_jobs {
        divergences += 1;
    }

    let mut fault_mix: BTreeMap<String, usize> = BTreeMap::new();
    for index in 0..config.connections {
        *fault_mix
            .entry(fault_for(config.seed, index).label().to_string())
            .or_insert(0) += 1;
    }
    let faulted_connections = config.connections - fault_mix.get("clean").copied().unwrap_or(0);

    let report = ChaosReport {
        connections: config.connections,
        faulted_connections,
        fault_mix,
        crash_window_jobs: config.crash_window_jobs,
        daemon_panics,
        client_hangs: observed.client_hangs.load(Ordering::Relaxed),
        protocol_violations: observed.protocol_violations.load(Ordering::Relaxed),
        retry_exhausted: observed.retry_exhausted.load(Ordering::Relaxed),
        divergences,
        post_recovery_identical: divergences == 0,
    };
    // Racy observations are stdout-only; the serialized report stays
    // byte-identical across runs.
    println!(
        "  chaos: {} connections ({} faulted), {} frames served live, {} responses recorded",
        report.connections,
        report.faulted_connections,
        served,
        recorded.len()
    );
    if !report.clean_bill() {
        return Err(Error::format(format!(
            "chaos invariants violated: panics={} hangs={} violations={} exhausted={} divergences={}",
            report.daemon_panics,
            report.client_hangs,
            report.protocol_violations,
            report.retry_exhausted,
            report.divergences
        )));
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_draws_are_deterministic_and_cover_every_kind() {
        let mix_a: Vec<WireFault> = (0..64).map(|i| fault_for(9, i)).collect();
        let mix_b: Vec<WireFault> = (0..64).map(|i| fault_for(9, i)).collect();
        assert_eq!(mix_a, mix_b);
        for fault in WireFault::all() {
            assert!(
                mix_a.contains(&fault),
                "64 draws should cover {}",
                fault.label()
            );
        }
    }

    #[test]
    fn chaos_smoke_holds_every_invariant() {
        let journal = std::env::temp_dir().join("rtped_fleet_chaos_unit.jsonl");
        let report = run_chaos(&ChaosConfig {
            connections: 48,
            crash_window_jobs: 4,
            seed: 11,
            client_workers: 4,
            server_workers: 2,
            journal,
        })
        .unwrap();
        assert!(report.clean_bill());
        assert_eq!(report.crash_window_jobs, 4);
        assert!(report.faulted_connections > 0);
        // The serialized block is deterministic: rebuild and compare.
        assert_eq!(
            report.to_json().to_string(),
            report.clone().to_json().to_string()
        );
    }
}
