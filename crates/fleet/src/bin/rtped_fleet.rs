//! `rtped-fleet` — the deterministic fleet fault-campaign orchestrator.
//!
//! ```text
//! rtped-fleet [--quick] [--out PATH]
//! ```
//!
//! Runs both phases and writes the benchmark artifact:
//!
//! 1. **Campaign**: the full grid (≥ 1000 seeded runtime instances at
//!    full scale; a 48-instance smoke with `--quick`) executed through
//!    `rtped_core::par` and folded into a [`FleetAggregate`]. The
//!    aggregate JSON is byte-identical across runs, hosts, and
//!    `RTPED_THREADS` — ci.sh runs the quick campaign at two thread
//!    counts and diffs the artifacts.
//! 2. **Chaos**: a seeded wire-level fault injector against a live
//!    `rtped-serve` daemon, then a journal-recovery restart verified
//!    bit-for-bit against an offline replica.
//!
//! The artifact (`BENCH_fleet.json`, or `BENCH_fleet.quick.json` with
//! `--quick`) contains only deterministic fields; wall-clock timings go
//! to stdout. Exit is nonzero if any acceptance invariant fails: a
//! single silent integrity escape, a daemon panic or hang, an untyped
//! failure, or any post-recovery divergence.

use std::process::ExitCode;

use rtped_core::json::{obj, Json};
use rtped_core::timer::Stopwatch;
use rtped_core::{Error, ToJson};
use rtped_fleet::{campaign, execute, run_chaos, CampaignScale, ChaosConfig, FleetAggregate};

struct Args {
    quick: bool,
    out: Option<std::path::PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        quick: false,
        out: None,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        match flag.as_str() {
            "--quick" => args.quick = true,
            "--out" => {
                args.out = Some(
                    iter.next()
                        .ok_or_else(|| String::from("--out needs a value"))?
                        .into(),
                );
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn run(args: &Args) -> Result<(), Error> {
    let scale = if args.quick {
        CampaignScale::Quick
    } else {
        CampaignScale::Full
    };

    // Phase 1: the campaign grid.
    let specs = campaign(scale);
    println!(
        "rtped-fleet: campaign {} instances over the {} grid",
        specs.len(),
        if args.quick { "quick" } else { "full" }
    );
    let watch = Stopwatch::start();
    let reports = execute(&specs, None)?;
    let rows: Vec<_> = specs.iter().cloned().zip(reports).collect();
    let aggregate = FleetAggregate::from_runs(&rows);
    println!(
        "rtped-fleet: campaign done in {:.0} ms — p50 {:.3} ms, p99 {:.3} ms, \
         miss rate {:.4}, digest {:016x}",
        watch.elapsed_ms(),
        aggregate.p50_latency_ms,
        aggregate.p99_latency_ms,
        aggregate.miss_rate(),
        aggregate.digest
    );
    if !args.quick && aggregate.runs < 1000 {
        return Err(Error::format(format!(
            "full campaign ran {} instances, acceptance floor is 1000",
            aggregate.runs
        )));
    }
    if aggregate.integrity_escapes != 0 {
        return Err(Error::format(format!(
            "campaign observed {} silent integrity escapes; the invariant is zero",
            aggregate.integrity_escapes
        )));
    }
    if aggregate.shard_quarantines == 0 || aggregate.shard_failovers < aggregate.shard_quarantines {
        return Err(Error::format(format!(
            "shard-storm cells must exercise quarantine and failover \
             (saw {} quarantines, {} failovers)",
            aggregate.shard_quarantines, aggregate.shard_failovers
        )));
    }
    println!(
        "rtped-fleet: campaign ok ({} instances, {} integrity escapes, \
         {} shard quarantines, {} failovers)",
        aggregate.runs,
        aggregate.integrity_escapes,
        aggregate.shard_quarantines,
        aggregate.shard_failovers
    );

    // Phase 2: chaos against a live daemon. The journal path carries the
    // pid so concurrent CI jobs on one host cannot collide.
    let (connections, crash_window_jobs, client_workers, server_workers) = if args.quick {
        (64, 6, 4, 2)
    } else {
        (640, 8, 8, 4)
    };
    let journal = std::env::temp_dir().join(format!(
        "rtped_fleet_chaos_{}{}.jsonl",
        std::process::id(),
        if args.quick { "_quick" } else { "" }
    ));
    let watch = Stopwatch::start();
    let chaos = run_chaos(&ChaosConfig {
        connections,
        crash_window_jobs,
        seed: 0xFEE7,
        client_workers,
        server_workers,
        journal,
    })?;
    if !args.quick && chaos.faulted_connections < 500 {
        return Err(Error::format(format!(
            "chaos drove {} faulted connections, acceptance floor is 500",
            chaos.faulted_connections
        )));
    }
    println!(
        "rtped-fleet: chaos done in {:.0} ms — {} connections, {} faulted, \
         {} crash-window jobs recovered",
        watch.elapsed_ms(),
        chaos.connections,
        chaos.faulted_connections,
        chaos.crash_window_jobs
    );
    println!("rtped-fleet: chaos ok (0 divergences, post-recovery state identical)");

    // The artifact: deterministic fields only.
    let bench = obj([
        ("format", 1.0.into()),
        ("bench", Json::String(String::from("fleet"))),
        ("quick", Json::Bool(args.quick)),
        ("campaign", aggregate.to_json()),
        ("chaos", chaos.to_json()),
    ]);
    let path = args.out.clone().unwrap_or_else(|| {
        std::path::PathBuf::from(if args.quick {
            "BENCH_fleet.quick.json"
        } else {
            "BENCH_fleet.json"
        })
    });
    let mut text = bench.to_string_pretty();
    text.push('\n');
    std::fs::write(&path, text)?;
    println!("rtped-fleet: wrote {}", path.display());
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(err) => {
            eprintln!("rtped-fleet: {err}");
            eprintln!("usage: rtped-fleet [--quick] [--out PATH]");
            return ExitCode::FAILURE;
        }
    };
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("rtped-fleet: {err}");
            ExitCode::FAILURE
        }
    }
}
