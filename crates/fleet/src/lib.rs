//! Deterministic fleet fault-campaign orchestrator for the rtped stack.
//!
//! A deployed driver-assistance fleet is thousands of dashcam streams,
//! each an independent detection runtime, all expected to hold the
//! paper's deadline under sensor faults, soft errors, and infrastructure
//! failures. This crate exercises exactly that at campaign scale, in two
//! phases:
//!
//! 1. **Campaign** ([`grid`] + [`aggregate`]): a grid of fault plans ×
//!    scene scenarios × engine kinds × deadline budgets, each cell run
//!    over many seeds through [`rtped_core::par`]. Every instance is a
//!    real [`Engine`] (the same construction path `rtped-serve` uses for
//!    tenants) serving synthetic frames under a seeded
//!    [`rtped_runtime::FaultPlan`]; its canonical
//!    [`rtped_runtime::RunReport`] folds into a [`FleetAggregate`] —
//!    latency percentiles from the deterministic cost model,
//!    deadline-miss rates, degradation dwell histograms, fault-class
//!    counts, and the zero-integrity-escape invariant. The aggregate's
//!    canonical JSON is byte-identical across runs, hosts, and
//!    `RTPED_THREADS`, because every input to it is.
//! 2. **Chaos** ([`chaos`]): a seeded wire-level fault injector driven
//!    against a *live* `rtped-serve` daemon — garbage bytes, oversized
//!    and truncated frames, bit-flipped payloads, slow-trickled writes,
//!    mid-stream client crashes — through a retrying client built on
//!    [`rtped_core::retry`]. Every injected failure must resolve to a
//!    typed response or a journal-recovered replay; the phase then
//!    restarts the daemon from its journal and proves the recovered
//!    engine state bit-identical against an offline replica.
//!
//! The `rtped-fleet` binary runs both phases and writes the committed
//! `BENCH_fleet.json` artifact that ci.sh gates on.
//!
//! [`Engine`]: rtped_runtime::Engine
//! [`FleetAggregate`]: aggregate::FleetAggregate

pub mod aggregate;
pub mod chaos;
pub mod grid;

pub use aggregate::FleetAggregate;
pub use chaos::{run_chaos, ChaosConfig, ChaosReport};
pub use grid::{campaign, execute, CampaignScale, EngineKind, FaultKind, RunSpec, Scenario};
