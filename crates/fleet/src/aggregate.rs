//! Folding a campaign's run reports into one canonical fleet aggregate.
//!
//! Every number here is derived from the deterministic cost model and
//! the seeded fault schedules — never the wall clock — so the same
//! campaign grid folds to byte-identical JSON on any host at any
//! `RTPED_THREADS`. That byte-identity is itself an acceptance gate:
//! ci.sh runs the quick campaign twice and diffs the bytes.

use std::collections::BTreeMap;

use rtped_core::json::{obj, Json};
use rtped_core::ToJson;
use rtped_runtime::RunReport;
use rtped_serve::tenant::fnv1a;

use crate::grid::RunSpec;

/// Per-engine-kind slice of the campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineSlice {
    /// Instances run on this engine kind.
    pub runs: usize,
    /// Frames served across those instances.
    pub frames: usize,
    /// Frames over their spec's deadline budget.
    pub deadline_misses: usize,
    /// Worst modeled frame latency seen, in milliseconds.
    pub worst_latency_ms: f64,
    /// Silent integrity escapes (must stay zero).
    pub integrity_escapes: u64,
    /// Shard quarantines across this slice's runs (sharded kinds only).
    pub shard_quarantines: u64,
    /// Bands failed over to healthy shards (sharded kinds only).
    pub shard_failovers: u64,
}

/// The fleet-level aggregate of one campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetAggregate {
    /// Total campaign instances.
    pub runs: usize,
    /// Total frames served.
    pub frames: usize,
    /// Median modeled frame latency, milliseconds (nearest rank).
    pub p50_latency_ms: f64,
    /// 99th-percentile modeled frame latency, milliseconds.
    pub p99_latency_ms: f64,
    /// Frames over their spec's deadline budget.
    pub deadline_misses: usize,
    /// Frames that ended in a typed error, by error kind.
    pub frame_errors: BTreeMap<String, usize>,
    /// Injected-fault occurrences, by fault label.
    pub fault_counts: BTreeMap<String, usize>,
    /// Frames served in each health state — the fleet dwell histogram.
    pub dwell: BTreeMap<String, usize>,
    /// Instances that degraded and then recovered.
    pub recovered_runs: usize,
    /// Silent integrity escapes across the whole fleet. The acceptance
    /// invariant: this must be zero — including (especially) on the
    /// sharded engine kinds, where every quarantined band must fail over
    /// loudly rather than escape.
    pub integrity_escapes: u64,
    /// Shard quarantines across the whole fleet.
    pub shard_quarantines: u64,
    /// Shard-band failovers across the whole fleet.
    pub shard_failovers: u64,
    /// Per-engine-kind slices, keyed by engine label.
    pub engines: BTreeMap<String, EngineSlice>,
    /// FNV-1a digest over every run report's canonical JSON, in spec
    /// order — a single number that witnesses bit-identical replay.
    pub digest: u64,
}

/// Nearest-rank percentile over a sorted sample set.
#[must_use]
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

impl FleetAggregate {
    /// Folds paired `(spec, report)` rows into the fleet aggregate.
    /// Order-sensitive only in the digest, which is the point: the
    /// executor preserves spec order for any thread count, so equal
    /// campaigns produce equal digests.
    #[must_use]
    pub fn from_runs(rows: &[(RunSpec, RunReport)]) -> Self {
        let mut latencies: Vec<f64> = Vec::new();
        let mut frame_errors: BTreeMap<String, usize> = BTreeMap::new();
        let mut fault_counts: BTreeMap<String, usize> = BTreeMap::new();
        let mut dwell: BTreeMap<String, usize> = BTreeMap::new();
        let mut engines: BTreeMap<String, EngineSlice> = BTreeMap::new();
        let mut deadline_misses = 0usize;
        let mut recovered_runs = 0usize;
        let mut integrity_escapes = 0u64;
        let mut shard_quarantines = 0u64;
        let mut shard_failovers = 0u64;
        let mut frames = 0usize;
        let mut digest = 0xcbf2_9ce4_8422_2325u64;
        for (spec, report) in rows {
            frames += report.frames.len();
            latencies.extend(report.latencies_ms());
            let misses = report.deadline_miss_count(spec.budget_ms);
            deadline_misses += misses;
            let escapes = report.integrity_escapes();
            integrity_escapes += escapes;
            let (quarantines, failovers) = report
                .integrity
                .as_ref()
                .map_or((0, 0), |i| (i.shard_quarantines, i.shard_failovers));
            shard_quarantines += quarantines;
            shard_failovers += failovers;
            if report.degraded_and_recovered() {
                recovered_runs += 1;
            }
            for frame in &report.frames {
                for fault in &frame.faults {
                    // Frame records label faults with their parameters
                    // (`bit_flips(12)`); the fleet histogram wants the
                    // class, not every parameter value.
                    let class = match fault.find('(') {
                        Some(pos) => &fault[..pos],
                        None => fault.as_str(),
                    };
                    *fault_counts.entry(class.to_string()).or_insert(0) += 1;
                }
            }
            for (state, count) in report.dwell() {
                *dwell.entry(state).or_insert(0) += count;
            }
            for frame in &report.frames {
                if let rtped_runtime::FrameOutcome::Error(err) = &frame.outcome {
                    *frame_errors.entry(err.kind().to_string()).or_insert(0) += 1;
                }
            }
            let slice = engines
                .entry(spec.engine.label().to_string())
                .or_insert(EngineSlice {
                    runs: 0,
                    frames: 0,
                    deadline_misses: 0,
                    worst_latency_ms: 0.0,
                    integrity_escapes: 0,
                    shard_quarantines: 0,
                    shard_failovers: 0,
                });
            slice.runs += 1;
            slice.frames += report.frames.len();
            slice.deadline_misses += misses;
            slice.worst_latency_ms = slice.worst_latency_ms.max(report.worst_latency_ms());
            slice.integrity_escapes += escapes;
            slice.shard_quarantines += quarantines;
            slice.shard_failovers += failovers;
            // Chain per-report digests: hash the canonical bytes, then
            // fold the hash into the running FNV state.
            let report_hash = fnv1a(report.to_json().to_string().as_bytes());
            digest ^= report_hash;
            digest = digest.wrapping_mul(0x0000_0100_0000_01b3);
        }
        latencies.sort_by(f64::total_cmp);
        FleetAggregate {
            runs: rows.len(),
            frames,
            p50_latency_ms: percentile(&latencies, 50.0),
            p99_latency_ms: percentile(&latencies, 99.0),
            deadline_misses,
            frame_errors,
            fault_counts,
            dwell,
            recovered_runs,
            integrity_escapes,
            shard_quarantines,
            shard_failovers,
            engines,
            digest,
        }
    }

    /// Deadline misses as a fraction of served frames.
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        if self.frames > 0 {
            self.deadline_misses as f64 / self.frames as f64
        } else {
            0.0
        }
    }
}

fn counts_to_json(counts: &BTreeMap<String, usize>) -> Json {
    Json::Object(
        counts
            .iter()
            .map(|(k, v)| (k.clone(), Json::Number(*v as f64)))
            .collect(),
    )
}

impl ToJson for FleetAggregate {
    fn to_json(&self) -> Json {
        let engines = Json::Object(
            self.engines
                .iter()
                .map(|(label, s)| {
                    (
                        label.clone(),
                        obj([
                            ("runs", s.runs.into()),
                            ("frames", s.frames.into()),
                            ("deadline_misses", s.deadline_misses.into()),
                            ("worst_latency_ms", s.worst_latency_ms.into()),
                            ("integrity_escapes", s.integrity_escapes.into()),
                            ("shard_quarantines", s.shard_quarantines.into()),
                            ("shard_failovers", s.shard_failovers.into()),
                        ]),
                    )
                })
                .collect(),
        );
        obj([
            ("runs", self.runs.into()),
            ("frames", self.frames.into()),
            ("p50_latency_ms", self.p50_latency_ms.into()),
            ("p99_latency_ms", self.p99_latency_ms.into()),
            ("deadline_misses", self.deadline_misses.into()),
            ("deadline_miss_rate", self.miss_rate().into()),
            ("frame_errors", counts_to_json(&self.frame_errors)),
            ("fault_counts", counts_to_json(&self.fault_counts)),
            ("dwell", counts_to_json(&self.dwell)),
            ("recovered_runs", self.recovered_runs.into()),
            ("integrity_escapes", self.integrity_escapes.into()),
            ("shard_quarantines", self.shard_quarantines.into()),
            ("shard_failovers", self.shard_failovers.into()),
            ("engines", engines),
            // u64 digests exceed f64-exact range; serialize as hex text.
            ("digest", Json::String(format!("{:016x}", self.digest))),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{campaign, CampaignScale};

    #[test]
    fn percentile_is_nearest_rank() {
        let samples = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&samples, 50.0), 2.0);
        assert_eq!(percentile(&samples, 99.0), 4.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn aggregate_of_tiny_campaign_is_byte_identical_across_folds() {
        let specs: Vec<_> = campaign(CampaignScale::Quick).into_iter().take(4).collect();
        let fold = || {
            let reports = crate::grid::execute(&specs, Some(2)).unwrap();
            let rows: Vec<_> = specs.iter().cloned().zip(reports).collect();
            FleetAggregate::from_runs(&rows).to_json().to_string()
        };
        let a = fold();
        assert_eq!(a, fold());
        assert!(a.contains("\"integrity_escapes\""));
    }

    #[test]
    fn sharded_kinds_exercise_failover_with_zero_escapes() {
        // Every quick-campaign cell pairing the shard storm with a
        // sharded engine: quarantines must fire and nothing may escape.
        let specs: Vec<_> = campaign(CampaignScale::Quick)
            .into_iter()
            .filter(|s| {
                s.fault == crate::grid::FaultKind::ShardStorm
                    && s.engine.label().starts_with("integrity_shard")
            })
            .collect();
        assert!(!specs.is_empty(), "quick grid lost its shard-storm cells");
        let reports = crate::grid::execute(&specs, Some(2)).unwrap();
        let rows: Vec<_> = specs.iter().cloned().zip(reports).collect();
        let aggregate = FleetAggregate::from_runs(&rows);
        assert!(aggregate.shard_quarantines > 0, "storm never quarantined");
        // Every quarantine fails its band over, and cooldown frames keep
        // reassigning the quarantined shard's bands without a new
        // quarantine event — so failovers dominate.
        assert!(aggregate.shard_failovers >= aggregate.shard_quarantines);
        for (label, slice) in &aggregate.engines {
            assert_eq!(slice.integrity_escapes, 0, "{label} let faults escape");
        }
    }
}
