//! The fleet acceptance invariant: campaign aggregates are a pure
//! function of the grid — byte-identical across thread counts (and
//! therefore across hosts, which differ from CI only in how many
//! workers `RTPED_THREADS` resolves to).

use rtped_core::ToJson;
use rtped_fleet::{campaign, CampaignScale, FleetAggregate};

#[test]
fn quick_campaign_aggregate_is_byte_identical_across_thread_counts() {
    let specs = campaign(CampaignScale::Quick);
    let fold = |threads: usize| {
        let reports = rtped_fleet::execute(&specs, Some(threads)).unwrap();
        let rows: Vec<_> = specs.iter().cloned().zip(reports).collect();
        let aggregate = FleetAggregate::from_runs(&rows);
        assert_eq!(
            aggregate.integrity_escapes, 0,
            "campaign must never observe a silent integrity escape"
        );
        aggregate.to_json().to_string_pretty()
    };
    let serial = fold(1);
    assert_eq!(serial, fold(4), "1-thread vs 4-thread aggregates differ");
    assert_eq!(serial, fold(3), "1-thread vs 3-thread aggregates differ");
    // The stress cells actually exercised the degradation machinery:
    // the aggregate counts injected faults and recovered instances.
    assert!(serial.contains("\"fault_counts\""));
    assert!(serial.contains("\"digest\""));
}
